package core

import (
	"testing"

	"interopdb/internal/fixture"
	"interopdb/internal/object"
	"interopdb/internal/tm"
)

func fig1View(t testing.TB, opt fixture.Options) *GlobalView {
	c := fig1Conformed(t, opt)
	v, err := Merge(c)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	return v
}

// globalByTitle finds the global object with the given title.
func globalByTitle(t testing.TB, v *GlobalView, title string) *GObj {
	t.Helper()
	for _, g := range v.Objects {
		if ttl, ok := g.Get("title"); ok && ttl.Equal(object.Str(title)) {
			return g
		}
	}
	t.Fatalf("no global object titled %q", title)
	return nil
}

// TestMergeEntityResolution: the VLDB proceedings exists in both
// databases with the same ISBN and must merge into one global object.
func TestMergeEntityResolution(t *testing.T) {
	v := fig1View(t, fixture.Options{})
	g := globalByTitle(t, v, "Proceedings of the 22nd VLDB Conference")
	if !g.Merged() {
		t.Fatal("vldb96 should be merged")
	}
	if len(g.Parts[LocalSide]) != 1 || len(g.Parts[RemoteSide]) != 1 {
		t.Errorf("parts: %d local, %d remote", len(g.Parts[LocalSide]), len(g.Parts[RemoteSide]))
	}
	// Unmatched objects stay single-source.
	if globalByTitle(t, v, "Proceedings of CAiSE").Merged() {
		t.Error("caise96 exists only remotely")
	}
	if globalByTitle(t, v, "Journal of the ACM").Merged() {
		t.Error("jacm exists only locally")
	}
	// Total: locals (6 publications + 4 virtual publishers) + remotes
	// (3 publishers + 4 items) minus merges (1 book + 3 publishers) = 13.
	if len(v.Objects) != 13 {
		t.Errorf("global objects = %d, want 13", len(v.Objects))
	}
}

// TestMergeDecisionFunctions checks §2.3 value fusion on the merged VLDB
// object: trust picks the authoritative price, avg fuses ratings, union
// fuses editors/authors.
func TestMergeDecisionFunctions(t *testing.T) {
	v := fig1View(t, fixture.Options{})
	g := globalByTitle(t, v, "Proceedings of the 22nd VLDB Conference")
	// libprice: trust(CSLibrary) → local ourprice 75 (not remote 78).
	if got, _ := g.Get("libprice"); !got.Equal(object.Real(75)) {
		t.Errorf("libprice = %v, want 75 (trust CSLibrary)", got)
	}
	// shopprice: trust(Bookseller) → remote 80.
	if got, _ := g.Get("shopprice"); !got.Equal(object.Real(80)) {
		t.Errorf("shopprice = %v, want 80 (trust Bookseller)", got)
	}
	// rating: avg(local 4×2, remote 8) = 8.
	if got, _ := g.Get("rating"); !got.Equal(object.Int(8)) {
		t.Errorf("rating = %v, want 8", got)
	}
	// editors ∪ authors = {Buchmann, Vijayaraman}.
	if got, _ := g.Get("authors"); !got.Equal(object.NewSet(object.Str("Buchmann"), object.Str("Vijayaraman"))) {
		t.Errorf("authors = %v", got)
	}
	// ref? is single-source.
	if got, _ := g.Get("ref?"); !got.Equal(object.Bool(true)) {
		t.Errorf("ref? = %v", got)
	}
}

// TestMergeVirtualPublisherUnification: the virtual publishers created
// from local values merge with the bookseller's publisher objects via the
// implied equality rule; Addison-Wesley stays local-only.
func TestMergeVirtualPublisherUnification(t *testing.T) {
	v := fig1View(t, fixture.Options{})
	merged, localOnly := 0, 0
	for _, g := range v.Extent("VirtPublisher") {
		if g.Merged() {
			merged++
		} else {
			localOnly++
		}
	}
	if merged != 3 || localOnly != 1 {
		t.Errorf("virtual publishers: %d merged, %d local-only; want 3/1", merged, localOnly)
	}
	// A merged publisher carries the remote location attribute too.
	for _, g := range v.Extent("Publisher") {
		if name, _ := g.Get("name"); name.Equal(object.Str("IEEE")) {
			if loc, ok := g.Get("location"); !ok || !loc.Equal(object.Str("New York")) {
				t.Errorf("merged IEEE location = %v", loc)
			}
		}
	}
	// ext(Publisher) ⊆ ext(VirtPublisher) shows up as a derived isa edge.
	found := false
	for _, e := range v.ISA {
		if e.Sub == "Publisher" && e.Super == "VirtPublisher" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected Publisher isa VirtPublisher; edges: %v", v.ISA)
	}
}

// TestMergeSimClassification: r3 classifies refereed proceedings under
// RefereedPubl (and its superclasses); r4 sends the workshop notes to
// NonRefereedPubl; r5 classifies 'Proceed'-titled local publications
// under the bookseller's Proceedings.
func TestMergeSimClassification(t *testing.T) {
	v := fig1View(t, fixture.Options{})
	caise := globalByTitle(t, v, "Proceedings of CAiSE")
	for _, want := range []string{"Proceedings", "Item", "RefereedPubl", "ScientificPubl", "Publication"} {
		if !caise.Classes[want] {
			t.Errorf("caise96 should be in %s; has %v", want, caise.Classes)
		}
	}
	wkshp := globalByTitle(t, v, "Workshop Notes on Interoperation")
	if !wkshp.Classes["NonRefereedPubl"] || wkshp.Classes["RefereedPubl"] {
		t.Errorf("workshop classes: %v", wkshp.Classes)
	}
	// sigmod96 is local-only but titled "Proceedings of SIGMOD" → r5.
	sigmod := globalByTitle(t, v, "Proceedings of SIGMOD")
	if !sigmod.Classes["Proceedings"] || !sigmod.Classes["Item"] {
		t.Errorf("sigmod classes: %v", sigmod.Classes)
	}
	// The refereed journal is not similar to any bookseller class.
	jacm := globalByTitle(t, v, "Journal of the ACM")
	if jacm.Classes["Proceedings"] {
		t.Errorf("jacm must not be a Proceedings: %v", jacm.Classes)
	}
	// The monograph stays out of the library's classification.
	tp := globalByTitle(t, v, "Transaction Processing")
	if tp.Classes["Publication"] || !tp.Classes["Monograph"] {
		t.Errorf("monograph classes: %v", tp.Classes)
	}
}

// TestE10RefereedProceedings reproduces Figure 2 / §2.3: because some but
// not all Proceedings are RefereedPubl (and vice versa), the virtual
// intersection subclass — the paper's RefereedProceedings — emerges, a
// subclass of both.
func TestE10RefereedProceedings(t *testing.T) {
	v := fig1View(t, fixture.Options{})
	if len(v.VirtualSubclasses) == 0 {
		t.Fatal("expected a virtual intersection subclass")
	}
	var vs *VirtualSubclass
	for i := range v.VirtualSubclasses {
		if v.VirtualSubclasses[i].LocalClass == "RefereedPubl" && v.VirtualSubclasses[i].RemoteClass == "Proceedings" {
			vs = &v.VirtualSubclasses[i]
		}
	}
	if vs == nil {
		t.Fatalf("no RefereedPubl∩Proceedings subclass: %+v", v.VirtualSubclasses)
	}
	// Members: vldb96 (merged), caise96 (imported refereed), sigmod96
	// (refereed + 'Proceed'-titled) — but not jacm (not a proceedings)
	// and not wkshp1 (not refereed).
	members := map[string]bool{}
	for _, id := range vs.MemberIDs {
		g := v.Objects[id-1]
		ttl, _ := g.Get("title")
		members[ttl.String()] = true
	}
	for _, want := range []string{"'Proceedings of the 22nd VLDB Conference'", "'Proceedings of CAiSE'", "'Proceedings of SIGMOD'"} {
		if !members[want] {
			t.Errorf("intersection class missing %s; has %v", want, members)
		}
	}
	if len(vs.MemberIDs) != 3 {
		t.Errorf("intersection size = %d, want 3", len(vs.MemberIDs))
	}
	// It is a subclass of both parents in the derived lattice.
	subOf := map[string]bool{}
	for _, e := range v.ISA {
		if e.Sub == vs.Name {
			subOf[e.Super] = true
		}
	}
	if !subOf["RefereedPubl"] || !subOf["Proceedings"] {
		t.Errorf("virtual subclass supers: %v", subOf)
	}
}

// TestMergeLatticeEdges spot-checks derived containment edges.
func TestMergeLatticeEdges(t *testing.T) {
	v := fig1View(t, fixture.Options{})
	has := func(sub, super string) bool {
		for _, e := range v.ISA {
			if e.Sub == sub && e.Super == super {
				return true
			}
		}
		return false
	}
	for _, e := range [][2]string{
		{"RefereedPubl", "ScientificPubl"},
		{"RefereedPubl", "Publication"},
		{"Proceedings", "Item"},
		{"Monograph", "Item"},
	} {
		if !has(e[0], e[1]) {
			t.Errorf("missing derived edge %s isa %s", e[0], e[1])
		}
	}
	if has("Item", "Publication") {
		t.Error("Item must not be contained in Publication (the monograph is no Publication)")
	}
}

// TestMergePersonnel: the introduction's employee 101 is registered in
// both departments; company policy averages the tariffs.
func TestMergePersonnel(t *testing.T) {
	db1, db2 := fixture.PersonnelStores()
	spec := MustCompile(tm.Personnel1(), tm.Personnel2(), tm.PersonnelIntegration())
	c, err := Conform(spec, db1, db2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Merge(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Objects) != 3 {
		t.Fatalf("global employees = %d, want 3", len(v.Objects))
	}
	// Class collision: global classes are database-qualified.
	if v.Extent("DB1.Employee") == nil || v.Extent("DB2.Employee") == nil {
		t.Fatalf("qualified global classes missing: %v", v.ClassNames)
	}
	var both *GObj
	for _, g := range v.Objects {
		if g.Merged() {
			both = g
		}
	}
	if both == nil {
		t.Fatal("employee 101 should be merged")
	}
	if trav, _ := both.Get("trav_reimb"); !trav.Equal(object.Int(22)) {
		t.Errorf("trav_reimb = %v, want avg(20,24)=22", trav)
	}
	if sal, _ := both.Get("salary"); !sal.Equal(object.Real(1500)) {
		t.Errorf("salary = %v, want avg(1400,1600)=1500", sal)
	}
}

// TestMergeDeterminism: equal seeds give identical views; the conflict-
// ignoring function is the only source of non-determinism.
func TestMergeDeterminism(t *testing.T) {
	render := func(seed int64) string {
		local, remote := fixture.Figure1Stores(fixture.Options{})
		s := fig1Spec(t)
		s.Seed = seed
		c, err := Conform(s, local, remote)
		if err != nil {
			t.Fatal(err)
		}
		v, err := Merge(c)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, g := range v.Objects {
			out += g.String() + "\n"
		}
		return out
	}
	if render(1) != render(1) {
		t.Error("same seed must give identical merges")
	}
}
