package core

import (
	"testing"

	"interopdb/internal/fixture"
	"interopdb/internal/object"
	"interopdb/internal/tm"
)

// TestApplyInsert covers the incremental view-growth path ShipInsert
// uses: classification along the origin chain, extent growth, reference
// registration, and the error case.
func TestApplyInsert(t *testing.T) {
	local, remote := fixture.Figure1Stores(fixture.Options{})
	res, err := Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := res.View
	beforeProc := len(v.Extent("Proceedings"))
	beforeItem := len(v.Extent("Item"))
	beforeObjs := len(v.Objects)

	attrs := map[string]object.Value{
		"title": object.Str("Applied"), "isbn": object.Str("applied-1"),
		"shopprice": object.Real(10), "libprice": object.Real(8),
		"ref?": object.Bool(true), "rating": object.Int(8),
	}
	src := object.Ref{DB: "Bookseller", OID: 9999}
	g, err := v.ApplyInsert("Proceedings", attrs, src)
	if err != nil {
		t.Fatal(err)
	}
	if g.ID != beforeObjs+1 {
		t.Errorf("ID = %d, want %d", g.ID, beforeObjs+1)
	}
	// Classified along the origin chain: Proceedings and its super Item.
	if len(v.Extent("Proceedings")) != beforeProc+1 {
		t.Errorf("Proceedings extent = %d, want %d", len(v.Extent("Proceedings")), beforeProc+1)
	}
	if len(v.Extent("Item")) != beforeItem+1 {
		t.Errorf("Item extent = %d, want %d", len(v.Extent("Item")), beforeItem+1)
	}
	if !g.Classes["Proceedings"] || !g.Classes["Item"] {
		t.Errorf("classes = %v, want Proceedings+Item", g.Classes)
	}
	// Both the global identity and the component ref resolve to it.
	if got, ok := v.Deref(g.Identity()); !ok || got != g {
		t.Error("global identity does not deref to the applied object")
	}
	if got, ok := v.Deref(src); !ok || got != g {
		t.Error("component ref does not deref to the applied object")
	}
	// Attrs are copied, not aliased.
	attrs["title"] = object.Str("mutated")
	if got, _ := g.Get("title"); !got.Equal(object.Str("Applied")) {
		t.Errorf("attrs aliased: %v", got)
	}

	if _, err := v.ApplyInsert("NoSuchClass", attrs, src); err == nil {
		t.Error("unknown class should error")
	}
}
