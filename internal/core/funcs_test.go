package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"interopdb/internal/object"
	"interopdb/internal/tm"
)

func mustDF(t *testing.T, name, arg string) DecisionFunc {
	t.Helper()
	spec := tm.ConvSpec{Name: name, StrArg: arg}
	df, err := CompileDecision(spec, "CSLibrary", "Bookseller")
	if err != nil {
		t.Fatalf("CompileDecision(%s): %v", name, err)
	}
	return df
}

func TestDecisionKinds(t *testing.T) {
	cases := []struct {
		name, arg string
		want      DecisionKind
	}{
		{"any", "", ConflictIgnoring},
		{"trust", "CSLibrary", ConflictAvoiding},
		{"trust", "Bookseller", ConflictAvoiding},
		{"max", "", ConflictSettling},
		{"min", "", ConflictSettling},
		{"avg", "", ConflictEliminating},
		{"union", "", ConflictEliminating},
	}
	for _, c := range cases {
		df := mustDF(t, c.name, c.arg)
		if df.Kind() != c.want {
			t.Errorf("%s kind = %v, want %v", c.name, df.Kind(), c.want)
		}
	}
	if _, err := CompileDecision(tm.ConvSpec{Name: "nosuch"}, "A", "B"); err == nil {
		t.Error("unknown decision function should fail")
	}
	if _, err := CompileDecision(tm.ConvSpec{Name: "trust", StrArg: "Other"}, "A", "B"); err == nil {
		t.Error("trust of unknown database should fail")
	}
}

func TestDecisionIdentityLaw(t *testing.T) {
	// The paper requires df(a,a) = a for every decision function.
	vals := []object.Value{object.Int(10), object.Real(2.5), object.Str("x"),
		object.NewSet(object.Str("a"), object.Str("b"))}
	rng := rand.New(rand.NewSource(7))
	for _, name := range []string{"any", "max", "min", "avg", "union"} {
		df := mustDF(t, name, "")
		for _, v := range vals {
			if name == "avg" && v.Kind() == object.KindString {
				continue
			}
			if name == "union" && v.Kind() != object.KindSet {
				continue
			}
			got := df.Combine(v, v, rng)
			if !got.Equal(v) {
				t.Errorf("%s(%v,%v) = %v, violates df(a,a)=a", name, v, v, got)
			}
		}
	}
	for _, arg := range []string{"CSLibrary", "Bookseller"} {
		df := mustDF(t, "trust", arg)
		if got := df.Combine(object.Int(3), object.Int(3), rng); !got.Equal(object.Int(3)) {
			t.Errorf("trust identity law: %v", got)
		}
	}
}

func TestDecisionCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := mustDF(t, "avg", "").Combine(object.Int(10), object.Int(24), rng); !got.Equal(object.Int(17)) {
		t.Errorf("avg(10,24) = %v", got)
	}
	if got := mustDF(t, "avg", "").Combine(object.Int(10), object.Int(11), rng); !got.Equal(object.Real(10.5)) {
		t.Errorf("avg(10,11) = %v", got)
	}
	if got := mustDF(t, "max", "").Combine(object.Int(4), object.Int(9), rng); !got.Equal(object.Int(9)) {
		t.Errorf("max = %v", got)
	}
	if got := mustDF(t, "min", "").Combine(object.Int(4), object.Int(9), rng); !got.Equal(object.Int(4)) {
		t.Errorf("min = %v", got)
	}
	u := mustDF(t, "union", "").Combine(
		object.NewSet(object.Str("a")), object.NewSet(object.Str("b")), rng)
	if u.(object.Set).Len() != 2 {
		t.Errorf("union = %v", u)
	}
	// trust picks its side.
	if got := mustDF(t, "trust", "CSLibrary").Combine(object.Int(1), object.Int(2), rng); !got.Equal(object.Int(1)) {
		t.Errorf("trust(local) = %v", got)
	}
	if got := mustDF(t, "trust", "Bookseller").Combine(object.Int(1), object.Int(2), rng); !got.Equal(object.Int(2)) {
		t.Errorf("trust(remote) = %v", got)
	}
	// any picks one of the two.
	got := mustDF(t, "any", "").Combine(object.Int(1), object.Int(2), rng)
	if !got.Equal(object.Int(1)) && !got.Equal(object.Int(2)) {
		t.Errorf("any = %v", got)
	}
	// Null handling: the present side wins.
	for _, name := range []string{"any", "max", "min", "avg", "union"} {
		df := mustDF(t, name, "")
		if got := df.Combine(object.Null{}, object.Int(5), rng); !got.Equal(object.Int(5)) {
			t.Errorf("%s(null,5) = %v", name, got)
		}
		if got := df.Combine(object.Int(5), object.Null{}, rng); !got.Equal(object.Int(5)) {
			t.Errorf("%s(5,null) = %v", name, got)
		}
	}
}

func TestDecisionCombineValsAndBounds(t *testing.T) {
	avg := mustDF(t, "avg", "")
	if v, ok := avg.CombineVals(object.Int(10), object.Int(14)); !ok || !v.Equal(object.Int(12)) {
		t.Errorf("avg.CombineVals = %v,%v", v, ok)
	}
	if lo, ok := avg.CombineLower(4, 6); !ok || lo != 5 {
		t.Errorf("avg.CombineLower(4,6) = %v,%v", lo, ok)
	}
	mx := mustDF(t, "max", "")
	if lo, ok := mx.CombineLower(4, 6); !ok || lo != 6 {
		t.Errorf("max.CombineLower = %v,%v", lo, ok)
	}
	if hi, ok := mx.CombineUpper(4, 6); !ok || hi != 6 {
		t.Errorf("max.CombineUpper = %v,%v", hi, ok)
	}
	mn := mustDF(t, "min", "")
	if lo, ok := mn.CombineLower(4, 6); !ok || lo != 4 {
		t.Errorf("min.CombineLower = %v,%v", lo, ok)
	}
	// Conflict-avoiding and -ignoring functions derive nothing
	// (condition (1) of §5.2.1).
	for _, df := range []DecisionFunc{mustDF(t, "any", ""), mustDF(t, "trust", "CSLibrary")} {
		if _, ok := df.CombineVals(object.Int(1), object.Int(2)); ok {
			t.Errorf("%s.CombineVals should not combine", df.Name())
		}
		if _, ok := df.CombineLower(1, 2); ok {
			t.Errorf("%s.CombineLower should not combine", df.Name())
		}
	}
	un := mustDF(t, "union", "")
	if v, ok := un.CombineVals(object.NewSet(object.Str("a")), object.NewSet(object.Str("b"))); !ok || v.(object.Set).Len() != 2 {
		t.Errorf("union.CombineVals = %v,%v", v, ok)
	}
	if _, ok := un.CombineVals(object.Int(1), object.Int(2)); ok {
		t.Error("union of scalars should not combine")
	}
	if _, ok := un.CombineLower(1, 2); ok {
		t.Error("union has no interval transformer")
	}
}

func TestQuickMinMaxBoundsSound(t *testing.T) {
	// Soundness of the settling transformers: if v≥a and v'≥b then
	// max(v,v') ≥ max(a,b) and min(v,v') ≥ min(a,b).
	mx := mustDF(t, "max", "")
	mn := mustDF(t, "min", "")
	f := func(a, b, dv, dw uint8) bool {
		av, bv := float64(a), float64(b)
		v, w := av+float64(dv), bv+float64(dw) // v≥a, w≥b
		vmax, _ := mx.CombineVals(object.Real(v), object.Real(w))
		vmin, _ := mn.CombineVals(object.Real(v), object.Real(w))
		lomax, _ := mx.CombineLower(av, bv)
		lomin, _ := mn.CombineLower(av, bv)
		fmax, _ := object.AsFloat(vmax)
		fmin, _ := object.AsFloat(vmin)
		return fmax >= lomax && fmin >= lomin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAvgBoundsSound(t *testing.T) {
	avg := mustDF(t, "avg", "")
	f := func(a, b, dv, dw uint8) bool {
		av, bv := float64(a), float64(b)
		v, w := av+float64(dv), bv+float64(dw)
		lo, _ := avg.CombineLower(av, bv)
		return (v+w)/2 >= lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConversionFuncs(t *testing.T) {
	id, err := CompileConversion(tm.ConvSpec{Name: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := id.Apply(object.Str("x")); !v.Equal(object.Str("x")) {
		t.Error("id")
	}
	if id.Monotone() != 1 {
		t.Error("id monotone")
	}

	mul, err := CompileConversion(tm.ConvSpec{Name: "multiply", NumArgs: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := mul.Apply(object.Int(3)); !v.Equal(object.Int(6)) {
		t.Errorf("multiply(2)(3) = %v", v)
	}
	if v, _ := mul.Apply(object.Real(2.5)); !v.Equal(object.Real(5)) {
		t.Errorf("multiply(2)(2.5) = %v", v)
	}
	if mul.Monotone() != 1 {
		t.Error("multiply(2) should be increasing")
	}
	// Range type conversion: 1..5 ×2 → 2..10.
	rt := mul.ApplyType(object.RangeType{Lo: 1, Hi: 5})
	if r, ok := rt.(object.RangeType); !ok || r.Lo != 2 || r.Hi != 10 {
		t.Errorf("multiply(2) range type = %v", rt)
	}
	// Sets convert elementwise.
	sv, _ := mul.Apply(object.NewSet(object.Int(1), object.Int(2)))
	if !sv.Equal(object.NewSet(object.Int(2), object.Int(4))) {
		t.Errorf("multiply over set = %v", sv)
	}
	if _, err := mul.Apply(object.Str("x")); err == nil {
		t.Error("multiply of string should fail")
	}
	if v, _ := mul.Apply(object.Null{}); v.Kind() != object.KindNull {
		t.Error("null passes through conversions")
	}

	neg, err := CompileConversion(tm.ConvSpec{Name: "linear", NumArgs: []float64{-1, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if neg.Monotone() != -1 {
		t.Error("linear(-1,10) should be decreasing")
	}
	if v, _ := neg.Apply(object.Int(3)); !v.Equal(object.Int(7)) {
		t.Errorf("linear(-1,10)(3) = %v", v)
	}
	// Decreasing linear flips range endpoints.
	rt = neg.ApplyType(object.RangeType{Lo: 1, Hi: 5})
	if r, ok := rt.(object.RangeType); !ok || r.Lo != 5 || r.Hi != 9 {
		t.Errorf("linear(-1,10) range = %v", rt)
	}

	add, err := CompileConversion(tm.ConvSpec{Name: "add", NumArgs: []float64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := add.Apply(object.Int(1)); !v.Equal(object.Int(6)) {
		t.Errorf("add(5)(1) = %v", v)
	}

	bad := []tm.ConvSpec{
		{Name: "nosuch"},
		{Name: "multiply"},
		{Name: "multiply", NumArgs: []float64{0}},
		{Name: "add"},
		{Name: "linear", NumArgs: []float64{0, 1}},
		{Name: "linear", NumArgs: []float64{1}},
	}
	for _, b := range bad {
		if _, err := CompileConversion(b); err == nil {
			t.Errorf("CompileConversion(%v) should fail", b)
		}
	}
}

func TestDecisionKindString(t *testing.T) {
	if ConflictIgnoring.String() != "conflict ignoring" ||
		ConflictAvoiding.String() != "conflict avoiding" ||
		ConflictSettling.String() != "conflict settling" ||
		ConflictEliminating.String() != "conflict eliminating" {
		t.Error("kind strings")
	}
}
