// Package core implements the paper's contribution: instance-based
// database interoperation driven by integrity constraints. It compiles
// integration specifications (object comparison rules, property
// equivalence assertions, constraint status marks) against two component
// databases, runs the conformation and merging phases, derives the
// integrated constraint set, detects conflicts between local constraints
// and the integration specification, and proposes repairs.
package core

import (
	"fmt"
	"math/rand"

	"interopdb/internal/object"
	"interopdb/internal/tm"
)

// DecisionKind is the paper's four-way classification of decision
// functions (§5.1.2), which determines property subjectivity.
type DecisionKind int

// The classification. Ignoring → both properties objective; Avoiding →
// the trusted one objective, the other subjective; Settling and
// Eliminating → both subjective.
const (
	ConflictIgnoring DecisionKind = iota
	ConflictAvoiding
	ConflictSettling
	ConflictEliminating
)

// String renders the kind as in the paper.
func (k DecisionKind) String() string {
	switch k {
	case ConflictIgnoring:
		return "conflict ignoring"
	case ConflictAvoiding:
		return "conflict avoiding"
	case ConflictSettling:
		return "conflict settling"
	case ConflictEliminating:
		return "conflict eliminating"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DecisionFunc determines a global property value from a conformed local
// and remote value, and (for constraint derivation) combines restrictions.
// The required identity law df(a,a)=a holds for every implementation.
type DecisionFunc interface {
	Name() string
	Kind() DecisionKind
	// Combine fuses two present values; rng drives the non-determinism of
	// conflict-ignoring functions.
	Combine(local, remote object.Value, rng *rand.Rand) object.Value
	// CombineVals lifts the function to restriction values: given the
	// knowledge v∈{a} locally and v'∈{b} remotely it returns the global
	// value df(a,b), or false when the function cannot combine them
	// (e.g. any/trust, whose output doesn't depend on both inputs).
	CombineVals(a, b object.Value) (object.Value, bool)
	// CombineLower/CombineUpper lift the function to interval bounds:
	// from v≥a ∧ v'≥b conclude df(v,v') ≥ CombineLower(a,b); likewise
	// for upper bounds. false when no sound bound exists.
	CombineLower(a, b float64) (float64, bool)
	CombineUpper(a, b float64) (float64, bool)
}

// anyFunc is the conflict-ignoring decision function: non-deterministic
// choice. Both properties stay objective, which is exactly what makes
// implicit conflicts possible (§5.2.1).
type anyFunc struct{}

func (anyFunc) Name() string       { return "any" }
func (anyFunc) Kind() DecisionKind { return ConflictIgnoring }
func (anyFunc) Combine(l, r object.Value, rng *rand.Rand) object.Value {
	if l == nil || l.Kind() == object.KindNull {
		return r
	}
	if r == nil || r.Kind() == object.KindNull {
		return l
	}
	if rng != nil && rng.Intn(2) == 1 {
		return r
	}
	return l
}
func (anyFunc) CombineVals(a, b object.Value) (object.Value, bool) { return nil, false }
func (anyFunc) CombineLower(a, b float64) (float64, bool)          { return 0, false }
func (anyFunc) CombineUpper(a, b float64) (float64, bool)          { return 0, false }

// trustFunc is the conflict-avoiding decision function: one database is
// the authoritative source.
type trustFunc struct {
	db         string
	trustLocal bool
}

func (f trustFunc) Name() string     { return "trust(" + f.db + ")" }
func (trustFunc) Kind() DecisionKind { return ConflictAvoiding }
func (f trustFunc) Combine(l, r object.Value, _ *rand.Rand) object.Value {
	pick, other := r, l
	if f.trustLocal {
		pick, other = l, r
	}
	if pick == nil || pick.Kind() == object.KindNull {
		return other
	}
	return pick
}
func (trustFunc) CombineVals(a, b object.Value) (object.Value, bool) { return nil, false }
func (trustFunc) CombineLower(a, b float64) (float64, bool)          { return 0, false }
func (trustFunc) CombineUpper(a, b float64) (float64, bool)          { return 0, false }

// TrustsLocal reports whether a conflict-avoiding function trusts the
// local database (used by subjectivity assignment).
func TrustsLocal(df DecisionFunc) (bool, bool) {
	t, ok := df.(trustFunc)
	if !ok {
		return false, false
	}
	return t.trustLocal, true
}

// minMaxFunc is the conflict-settling pair min/max.
type minMaxFunc struct{ max bool }

func (f minMaxFunc) Name() string {
	if f.max {
		return "max"
	}
	return "min"
}
func (minMaxFunc) Kind() DecisionKind { return ConflictSettling }
func (f minMaxFunc) Combine(l, r object.Value, _ *rand.Rand) object.Value {
	if l == nil || l.Kind() == object.KindNull {
		return r
	}
	if r == nil || r.Kind() == object.KindNull {
		return l
	}
	c, ok := object.Compare(l, r)
	if !ok {
		return l
	}
	if (f.max && c >= 0) || (!f.max && c <= 0) {
		return l
	}
	return r
}
func (f minMaxFunc) CombineVals(a, b object.Value) (object.Value, bool) {
	c, ok := object.Compare(a, b)
	if !ok {
		return nil, false
	}
	if (f.max && c >= 0) || (!f.max && c <= 0) {
		return a, true
	}
	return b, true
}
func (f minMaxFunc) CombineLower(a, b float64) (float64, bool) {
	if f.max {
		return maxF(a, b), true
	}
	return minF(a, b), true
}
func (f minMaxFunc) CombineUpper(a, b float64) (float64, bool) {
	if f.max {
		return maxF(a, b), true
	}
	return minF(a, b), true
}

// avgFunc is the conflict-eliminating averaging function of the paper's
// travel-reimbursement policy.
type avgFunc struct{}

func (avgFunc) Name() string       { return "avg" }
func (avgFunc) Kind() DecisionKind { return ConflictEliminating }
func (avgFunc) Combine(l, r object.Value, _ *rand.Rand) object.Value {
	if l == nil || l.Kind() == object.KindNull {
		return r
	}
	if r == nil || r.Kind() == object.KindNull {
		return l
	}
	lf, lok := object.AsFloat(l)
	rf, rok := object.AsFloat(r)
	if !lok || !rok {
		return l
	}
	m := (lf + rf) / 2
	if l.Kind() == object.KindInt && r.Kind() == object.KindInt && m == float64(int64(m)) {
		return object.Int(int64(m))
	}
	return object.Real(m)
}
func (f avgFunc) CombineVals(a, b object.Value) (object.Value, bool) {
	if !object.IsNumeric(a) || !object.IsNumeric(b) {
		return nil, false
	}
	return f.Combine(a, b, nil), true
}
func (avgFunc) CombineLower(a, b float64) (float64, bool) { return (a + b) / 2, true }
func (avgFunc) CombineUpper(a, b float64) (float64, bool) { return (a + b) / 2, true }

// unionFunc is the conflict-eliminating union for set-valued properties
// (editors ∪ authors).
type unionFunc struct{}

func (unionFunc) Name() string       { return "union" }
func (unionFunc) Kind() DecisionKind { return ConflictEliminating }
func (unionFunc) Combine(l, r object.Value, _ *rand.Rand) object.Value {
	ls, lok := l.(object.Set)
	rs, rok := r.(object.Set)
	switch {
	case lok && rok:
		return ls.Union(rs)
	case lok:
		return ls
	case rok:
		return rs
	default:
		if l != nil && l.Kind() != object.KindNull {
			return l
		}
		return r
	}
}
func (f unionFunc) CombineVals(a, b object.Value) (object.Value, bool) {
	as, aok := a.(object.Set)
	bs, bok := b.(object.Set)
	if !aok || !bok {
		return nil, false
	}
	return as.Union(bs), true
}
func (unionFunc) CombineLower(a, b float64) (float64, bool) { return 0, false }
func (unionFunc) CombineUpper(a, b float64) (float64, bool) { return 0, false }

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// CompileDecision resolves a decision function specification. localDB and
// remoteDB resolve trust(...) targets.
func CompileDecision(spec tm.ConvSpec, localDB, remoteDB string) (DecisionFunc, error) {
	switch spec.Name {
	case "any":
		return anyFunc{}, nil
	case "trust":
		switch spec.StrArg {
		case localDB:
			return trustFunc{db: spec.StrArg, trustLocal: true}, nil
		case remoteDB:
			return trustFunc{db: spec.StrArg, trustLocal: false}, nil
		default:
			return nil, fmt.Errorf("trust(%s): not one of the component databases %s, %s", spec.StrArg, localDB, remoteDB)
		}
	case "max":
		return minMaxFunc{max: true}, nil
	case "min":
		return minMaxFunc{max: false}, nil
	case "avg":
		return avgFunc{}, nil
	case "union":
		return unionFunc{}, nil
	default:
		return nil, fmt.Errorf("unknown decision function %q", spec.Name)
	}
}

// ConvFunc is a conversion function mapping a property's domain to the
// common (conformed) domain. Monotone conversions support rewriting of
// constraint literals (§4's domain conversion).
type ConvFunc interface {
	Name() string
	// Apply converts a value; sets convert elementwise.
	Apply(object.Value) (object.Value, error)
	// ApplyType converts the property's type.
	ApplyType(object.Type) object.Type
	// Monotone reports +1 (strictly increasing), -1 (strictly
	// decreasing) or 0 (not monotone / unknown); comparisons rewritten
	// through a decreasing conversion flip their operator.
	Monotone() int
}

// idFunc is the identity conversion.
type idFunc struct{}

func (idFunc) Name() string                               { return "id" }
func (idFunc) Apply(v object.Value) (object.Value, error) { return v, nil }
func (idFunc) ApplyType(t object.Type) object.Type        { return t }
func (idFunc) Monotone() int                              { return 1 }

// linearFunc is x ↦ a·x + b over numerics (multiply(k) is linear(k,0),
// add(k) is linear(1,k)).
type linearFunc struct {
	name string
	a, b float64
}

func (f linearFunc) Name() string { return f.name }

func (f linearFunc) Apply(v object.Value) (object.Value, error) {
	switch v := v.(type) {
	case object.Set:
		elems := make([]object.Value, 0, v.Len())
		for _, e := range v.Elems() {
			c, err := f.Apply(e)
			if err != nil {
				return nil, err
			}
			elems = append(elems, c)
		}
		return object.NewSet(elems...), nil
	case object.Null:
		return v, nil
	default:
		x, ok := object.AsFloat(v)
		if !ok {
			return nil, fmt.Errorf("%s: non-numeric value %s", f.name, v)
		}
		y := f.a*x + f.b
		if v.Kind() == object.KindInt && y == float64(int64(y)) {
			return object.Int(int64(y)), nil
		}
		return object.Real(y), nil
	}
}

func (f linearFunc) ApplyType(t object.Type) object.Type {
	switch t := t.(type) {
	case object.RangeType:
		lo := f.a*float64(t.Lo) + f.b
		hi := f.a*float64(t.Hi) + f.b
		if f.a < 0 {
			lo, hi = hi, lo
		}
		if lo == float64(int64(lo)) && hi == float64(int64(hi)) {
			return object.RangeType{Lo: int64(lo), Hi: int64(hi)}
		}
		return object.TReal
	case object.SetType:
		return object.SetType{Elem: f.ApplyType(t.Elem)}
	default:
		return t
	}
}

func (f linearFunc) Monotone() int {
	switch {
	case f.a > 0:
		return 1
	case f.a < 0:
		return -1
	default:
		return 0
	}
}

// CompileConversion resolves a conversion function specification.
func CompileConversion(spec tm.ConvSpec) (ConvFunc, error) {
	switch spec.Name {
	case "id":
		return idFunc{}, nil
	case "multiply":
		if len(spec.NumArgs) != 1 || spec.NumArgs[0] == 0 {
			return nil, fmt.Errorf("multiply needs one non-zero argument")
		}
		return linearFunc{name: spec.String(), a: spec.NumArgs[0]}, nil
	case "add":
		if len(spec.NumArgs) != 1 {
			return nil, fmt.Errorf("add needs one argument")
		}
		return linearFunc{name: spec.String(), a: 1, b: spec.NumArgs[0]}, nil
	case "linear":
		if len(spec.NumArgs) != 2 || spec.NumArgs[0] == 0 {
			return nil, fmt.Errorf("linear needs two arguments with a non-zero slope")
		}
		return linearFunc{name: spec.String(), a: spec.NumArgs[0], b: spec.NumArgs[1]}, nil
	default:
		return nil, fmt.Errorf("unknown conversion function %q", spec.Name)
	}
}
