package core

import (
	"strings"
	"testing"

	"interopdb/internal/fixture"
	"interopdb/internal/store"
	"interopdb/internal/tm"
)

// TestAutomatedRepairLoop drives the paper's envisioned design tool
// (conclusion, Figure 3) fully programmatically: integrate, read the
// strict-similarity conflicts, apply the engine's own suggestions through
// the spec-rewriting API, and verify the re-run is conflict-free with the
// previously withheld objective constraints restored.
func TestAutomatedRepairLoop(t *testing.T) {
	lib, bs := tm.Figure1Library(), tm.Figure1Bookseller()
	spec := tm.Figure1Integration()

	run := func(is *tm.IntegrationSpec) *Result {
		local, remote := fixture.Figure1Stores(fixture.Options{})
		res, err := Integrate(lib, bs, is, local, remote, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := run(spec)
	if len(conflictsOfKind(res.Derivation, ConflictStrictSim)) == 0 {
		t.Fatal("the original specification should carry strict-sim conflicts (r4, r5)")
	}

	// Apply suggestions: strengthen-rule where the suggested rule text
	// type-checks against the source class (r4), approximate-similarity
	// fallback otherwise (r5, whose target constraints mention attributes
	// the source class does not have).
	cur := spec
	for iter := 0; iter < 5; iter++ {
		res = run(cur)
		cs := conflictsOfKind(res.Derivation, ConflictStrictSim)
		if len(cs) == 0 {
			break
		}
		c := cs[0]
		ruleName := strings.TrimPrefix(c.Where, "rule ")
		applied := false
		for _, s := range c.Suggestions {
			if s.Kind != SuggestStrengthenRule || s.NewRuleSrc == "" {
				continue
			}
			next, err := cur.ReplaceRule(ruleName, s.NewRuleSrc)
			if err != nil {
				continue
			}
			if _, err := Compile(lib, bs, next); err != nil {
				continue // suggestion references attributes the source lacks
			}
			cur = next
			applied = true
			break
		}
		if !applied {
			// Fall back to turning the rule into approximate similarity.
			var r *tm.Rule
			for i := range cur.Rules {
				if cur.Rules[i].Name == ruleName {
					r = &cur.Rules[i]
				}
			}
			if r == nil {
				t.Fatalf("conflict names unknown rule %s", ruleName)
			}
			approx := *r
			approx.Kind = tm.RuleSimApprox
			approx.Virtual = r.Target + "Like"
			next, err := cur.ReplaceRule(ruleName, approx.Print())
			if err != nil {
				t.Fatalf("approx rewrite failed: %v", err)
			}
			cur = next
		}
	}

	final := run(cur)
	if cs := conflictsOfKind(final.Derivation, ConflictStrictSim); len(cs) != 0 {
		t.Fatalf("repair loop did not converge: %v", cs)
	}
	// The withheld objective constraint is restored.
	found := false
	for _, gc := range final.Derivation.Global {
		if gc.Expr.String() == "publisher.name = 'IEEE' implies ref? = true" && gc.Scope == ScopeAll {
			found = true
		}
	}
	if !found {
		t.Errorf("Proceedings.oc1 should be restored after repair; have:\n%s", globalDump(final.Derivation))
	}
	// And the headline derivations survived the repairs.
	if hasGlobal(final.Derivation, "publisher.name = 'ACM' implies rating >= 5") == nil {
		t.Error("E6 derivation lost during repair")
	}
}

// TestRepairBySubjectiveMark covers the remaining §5.2.1 option for
// equality conflicts: re-marking a constraint subjective dissolves the
// explicit conflict.
func TestRepairBySubjectiveMark(t *testing.T) {
	localSpec := tm.MustParseDatabase(`
Database L
Class C
  attributes
    k : string
    flag : bool
  object constraints
    oc1: flag = true
end C
`)
	remoteSpec := tm.MustParseDatabase(`
Database R
Class D
  attributes
    k : string
    flag : bool
  object constraints
    oc1: flag = false
end D
`)
	ispec := tm.MustParseIntegration(`
integration L imports R
rule r1: Eq(A:C, B:D) <= A.k = B.k
propeq(C.k, D.k, id, id, any)
`)
	run := func(is *tm.IntegrationSpec) *Result {
		res, err := Integrate(localSpec, remoteSpec, is,
			store.New(localSpec.Schema, nil), store.New(remoteSpec.Schema, nil), 1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(ispec)
	if len(conflictsOfKind(res.Derivation, ConflictExplicit)) == 0 {
		t.Fatal("expected an explicit conflict")
	}
	// Apply the mark-subjective option via the spec API.
	repaired := ispec.SetMark("D", "oc1", false)
	res = run(repaired)
	if len(conflictsOfKind(res.Derivation, ConflictExplicit)) != 0 {
		t.Errorf("marking D.oc1 subjective should dissolve the conflict: %v", res.Derivation.Conflicts)
	}
}
