package core

import (
	"fmt"
	"sort"
	"strings"

	"interopdb/internal/store"
	"interopdb/internal/tm"
)

// Result bundles the artifacts of a full integration run — the stages of
// the paper's Figure 3: compiled specification (with subjectivity
// assignment), conformed schemas/objects/constraints, merged global view,
// and the derived global constraint set with detected conflicts.
type Result struct {
	Spec       *Spec
	Conformed  *Conformed
	View       *GlobalView
	Derivation *Derivation
}

// Integrate runs the full pipeline over two populated component stores
// with default options (full parallelism, memoized reasoning). seed
// drives the non-determinism of conflict-ignoring decision functions
// (pass 1 for reproducible runs).
func Integrate(localSpec, remoteSpec *tm.DatabaseSpec, ispec *tm.IntegrationSpec,
	local, remote *store.Store, seed int64) (*Result, error) {
	return IntegrateOptions(localSpec, remoteSpec, ispec, local, remote, seed, Options{})
}

// IntegrateOptions runs the full pipeline — compile → conform → merge →
// derive — under explicit execution options. Whatever the Parallelism,
// the Result (including the rendered Report) is byte-identical: the
// parallel stages merge their outputs in the sequential order, and the
// only seeded randomness (conflict-ignoring value fusion) lives in the
// sequential merge phase.
func IntegrateOptions(localSpec, remoteSpec *tm.DatabaseSpec, ispec *tm.IntegrationSpec,
	local, remote *store.Store, seed int64, opts Options) (*Result, error) {
	spec, err := Compile(localSpec, remoteSpec, ispec)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	spec.Seed = seed
	conf, err := ConformOptions(spec, local, remote, opts)
	if err != nil {
		return nil, fmt.Errorf("conform: %w", err)
	}
	view, err := Merge(conf)
	if err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	return &Result{
		Spec:       spec,
		Conformed:  conf,
		View:       view,
		Derivation: DeriveOptions(view, opts),
	}, nil
}

// Report renders a human-readable account of the run, stage by stage.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Integration: %s imports %s ===\n",
		r.Spec.Local.Schema.Name, r.Spec.Remote.Schema.Name)

	if len(r.Spec.Issues) > 0 {
		b.WriteString("\n-- Specification issues (consistency law §5.1.3) --\n")
		for _, i := range r.Spec.Issues {
			fmt.Fprintf(&b, "  %s\n", i)
		}
	}

	b.WriteString("\n-- Property subjectivity (§5.1.2) --\n")
	for _, pe := range r.Spec.PropEqs {
		fmt.Fprintf(&b, "  %s.%s ~ %s.%s via %s: local %s, remote %s\n",
			pe.Raw.LocalClass, pe.Raw.LocalAttr, pe.Raw.RemoteClass, pe.Raw.RemoteAttr,
			pe.DF.Name(), statusWord(pe.LocalSubjective), statusWord(pe.RemoteSubjective))
	}

	b.WriteString("\n-- Conformed constraints (§4) --\n")
	for _, c := range r.Conformed.Cons {
		fmt.Fprintf(&b, "  %s\n", c)
	}

	b.WriteString("\n-- Global classes and lattice (§2.3) --\n")
	names := append([]string{}, r.View.ClassNames...)
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %s: %d objects\n", n, len(r.View.Extent(n)))
	}
	for _, e := range r.View.ISA {
		fmt.Fprintf(&b, "  %s isa %s\n", e.Sub, e.Super)
	}
	for _, vs := range r.View.VirtualSubclasses {
		fmt.Fprintf(&b, "  virtual subclass %s = %s ∩ %s (%d objects)\n",
			vs.Name, vs.LocalClass, vs.RemoteClass, len(vs.MemberIDs))
	}
	for _, as := range r.View.ApproxSupers {
		fmt.Fprintf(&b, "  virtual superclass %s ⊇ %s ∪ %s (%d objects)\n",
			as.Name, as.LocalClass, as.RemoteClass, len(as.MemberIDs))
	}

	b.WriteString("\n-- Global constraints (§5.2) --\n")
	for _, gc := range r.Derivation.Global {
		fmt.Fprintf(&b, "  %s\n", gc)
	}

	if len(r.Derivation.Conflicts) > 0 {
		b.WriteString("\n-- Conflicts --\n")
		for _, c := range r.Derivation.Conflicts {
			fmt.Fprintf(&b, "  %s\n", c)
			for _, s := range c.Suggestions {
				fmt.Fprintf(&b, "    option[%s]: %s\n", s.Kind, s.Text)
				if s.NewRuleSrc != "" {
					fmt.Fprintf(&b, "      %s\n", s.NewRuleSrc)
				}
			}
		}
	}
	if len(r.Derivation.Notes) > 0 {
		b.WriteString("\n-- Notes --\n")
		for _, n := range r.Derivation.Notes {
			fmt.Fprintf(&b, "  %s\n", n)
		}
	}
	return b.String()
}

func statusWord(subjective bool) string {
	if subjective {
		return "subjective"
	}
	return "objective"
}
