package core

import (
	"fmt"
	"sort"
	"strings"

	"interopdb/internal/expr"
	"interopdb/internal/object"
	"interopdb/internal/schema"
	"interopdb/internal/store"
	"interopdb/internal/tm"
)

// CObj is a conformed object: a component object brought into the common
// semantical context (attributes renamed and converted, object-value
// conflicts settled), or a virtual object created from values.
type CObj struct {
	Src     object.Ref // provenance; for virtual objects a synthetic ref
	Side    Side
	Class   string
	Attrs   map[string]object.Value
	Virtual bool
}

// Get implements expr.Object.
func (o *CObj) Get(attr string) (object.Value, bool) {
	v, ok := o.Attrs[attr]
	return v, ok
}

// Identity implements expr.Identifiable.
func (o *CObj) Identity() object.Ref { return o.Src }

// String renders the object for reports.
func (o *CObj) String() string {
	keys := make([]string, 0, len(o.Attrs))
	for k := range o.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + o.Attrs[k].String()
	}
	return fmt.Sprintf("%s[%s](%s)", o.Class, o.Src, strings.Join(parts, ","))
}

// CCon is a conformed constraint: the original constraint re-expressed in
// conformed terms (§4), carrying its objectivity status.
type CCon struct {
	Key     ConKey
	Kind    schema.ConstraintKind
	Side    Side
	Class   string // conformed owning class ("" for database constraints)
	Expr    expr.Node
	Status  Status
	Derived bool   // produced by §3 intraobject-condition derivation
	Note    string // conformation notes (imperfect conversion etc.)
	// Imperfect marks constraints whose conversion could not be carried
	// through exactly; they are excluded from derivation and entailment.
	Imperfect bool
	// Hidden marks constraints hidden by object-to-value conformation
	// (§4 subtask 1: hiding objects hides the constraints that involve
	// properties not included in the complex values).
	Hidden bool
}

// String renders the constraint.
func (c CCon) String() string {
	tag := c.Status.String()
	if c.Derived {
		tag += ",derived"
	}
	if c.Hidden {
		tag += ",hidden"
	}
	where := c.Class
	if where == "" {
		where = "(database)"
	}
	return fmt.Sprintf("%s on %s [%s]: %s", c.Key, where, tag, c.Expr)
}

// Conformed is the output of the conformation phase.
type Conformed struct {
	Spec *Spec
	// Conformed schemas per side (virtual classes added, attributes
	// renamed and retyped).
	LocalSchema, RemoteSchema *schema.Database
	// Conformed objects by side and most-specific conformed class.
	objs  map[Side]map[string][]*CObj
	byRef map[object.Ref]*CObj
	// Cons holds every conformed constraint of both sides.
	Cons []CCon
	// ImpliedEq are equality rules introduced by descriptivity
	// conformation (virtual objects ↔ remote objects).
	ImpliedEq []*EqRule
	// VirtualClasses names classes created during conformation, per side.
	VirtualClasses map[Side][]string
	// Hidden marks classes removed from a side's view by object-to-value
	// conformation; their extents are empty and their constraints hidden.
	Hidden map[Side]map[string]bool
	// Types maps conformed attribute paths to types, for the reasoner.
	Types map[string]object.Type
	// Consts merges both databases' named constants.
	Consts  map[string]object.Value
	virtSeq object.OID
	// Fed, when non-nil, marks this conformed world as the combined
	// state of an N-member federation: SchemaOf and MemberName index
	// members through it instead of the two-sided Local/Remote fields.
	// Pairwise pipeline runs leave it nil.
	Fed *FedInfo
}

// FedInfo describes the member layout of a federated (N-member)
// conformed world: one entry per Side value ever assigned. Detached
// members keep their slot (Side values are never reused) but are marked
// inactive. The schema recorded for a member is the conformed schema of
// the pair integration that attached it — a base member keeps the
// vocabulary of its first integration.
type FedInfo struct {
	// Names holds each member's database name, indexed by Side.
	Names []string
	// Schemas holds each member's conformed schema, indexed by Side.
	Schemas []*schema.Database
	// Specs holds each member's parsed database specification.
	Specs []*tm.DatabaseSpec
	// Active marks which slots belong to currently attached members.
	Active []bool
}

// SideOf resolves a member name to its Side slot (active members only).
func (f *FedInfo) SideOf(name string) (Side, bool) {
	for i, n := range f.Names {
		if f.Active[i] && n == name {
			return Side(i), true
		}
	}
	return 0, false
}

// SchemaOf returns the conformed schema of a side. In a federated world
// every attached member has its own Side slot; in a pairwise run the
// two sides are the local and remote schemas.
func (c *Conformed) SchemaOf(side Side) *schema.Database {
	if c.Fed != nil && int(side) < len(c.Fed.Schemas) {
		return c.Fed.Schemas[side]
	}
	if side == LocalSide {
		return c.LocalSchema
	}
	return c.RemoteSchema
}

// MemberName returns the database name of a side's member.
func (c *Conformed) MemberName(side Side) string {
	if c.Fed != nil && int(side) < len(c.Fed.Names) {
		return c.Fed.Names[side]
	}
	return c.Spec.DB(side).Schema.Name
}

// Objects returns the conformed direct instances of a class on a side.
func (c *Conformed) Objects(side Side, class string) []*CObj {
	return c.objs[side][class]
}

// Extent returns the conformed extension of a class (direct + subclass
// instances).
func (c *Conformed) Extent(side Side, class string) []*CObj {
	db := c.SchemaOf(side)
	var out []*CObj
	for _, cn := range append([]string{class}, db.Subclasses(class)...) {
		out = append(out, c.objs[side][cn]...)
	}
	return out
}

// AllObjects returns every conformed object of a side.
func (c *Conformed) AllObjects(side Side) []*CObj {
	var out []*CObj
	db := c.SchemaOf(side)
	for _, cls := range db.ClassNames() {
		out = append(out, c.objs[side][cls]...)
	}
	return out
}

// Deref resolves a reference to its conformed object.
func (c *Conformed) Deref(r object.Ref) (expr.Object, bool) {
	o, ok := c.byRef[r]
	return o, ok
}

// Env builds an evaluation environment over the conformed world with self
// bound to the given object.
func (c *Conformed) Env(self *CObj) *expr.Env {
	env := &expr.Env{
		Consts: c.Consts,
		Deref:  func(r object.Ref) (expr.Object, bool) { return c.Deref(r) },
	}
	if self != nil {
		attrs := map[string]bool{}
		for _, a := range c.SchemaOf(self.Side).AllAttrs(self.Class) {
			attrs[a.Name] = true
		}
		env.Vars = map[string]expr.Object{"self": self}
		env.SelfAttrs = attrs
		side := self.Side
		env.Ext = func(class string) []expr.Object { return c.extObjects(side, class) }
	}
	return env
}

func (c *Conformed) extObjects(side Side, class string) []expr.Object {
	ext := c.Extent(side, class)
	out := make([]expr.Object, len(ext))
	for i, o := range ext {
		out[i] = o
	}
	return out
}

// ConsOn returns the conformed constraints of the given kind attached to
// the class chain of the given class on a side (object constraints
// inherit; class constraints do not).
func (c *Conformed) ConsOn(side Side, class string, kind schema.ConstraintKind) []CCon {
	db := c.SchemaOf(side)
	var out []CCon
	classes := []string{class}
	if kind == schema.ObjectConstraint {
		classes = db.Supers(class)
	}
	for _, con := range c.Cons {
		if con.Side != side || con.Kind != kind || con.Hidden {
			continue
		}
		for _, cn := range classes {
			if con.Class == cn {
				out = append(out, con)
				break
			}
		}
	}
	return out
}

// Conform runs the conformation phase with default options.
func Conform(spec *Spec, local, remote *store.Store) (*Conformed, error) {
	return ConformOptions(spec, local, remote, Options{})
}

// ConformOptions runs the conformation phase of §4: object-value
// conflicts are settled by objectifying described values into virtual
// classes, equivalent properties are renamed and converted into the
// common domain, and every constraint is re-expressed in conformed
// terms. Constraint conformation — the rewrite-heavy stage — fans out
// across the worker pool; everything it reads (schemas, spec, hidden
// sets) is frozen by the earlier sequential stages, and each rewritten
// constraint lands in its own output slot, keeping Cons order stable.
func ConformOptions(spec *Spec, local, remote *store.Store, opts Options) (*Conformed, error) {
	if local.Name() != spec.Local.Schema.Name || remote.Name() != spec.Remote.Schema.Name {
		return nil, fmt.Errorf("stores %s, %s do not match spec databases %s, %s",
			local.Name(), remote.Name(), spec.Local.Schema.Name, spec.Remote.Schema.Name)
	}
	c := &Conformed{
		Spec:           spec,
		LocalSchema:    spec.Local.Schema.Clone(),
		RemoteSchema:   spec.Remote.Schema.Clone(),
		objs:           map[Side]map[string][]*CObj{LocalSide: {}, RemoteSide: {}},
		byRef:          map[object.Ref]*CObj{},
		VirtualClasses: map[Side][]string{},
		Hidden:         map[Side]map[string]bool{LocalSide: {}, RemoteSide: {}},
		Types:          map[string]object.Type{},
		Consts:         map[string]object.Value{},
		virtSeq:        1,
	}
	for k, v := range spec.Local.Consts {
		c.Consts[k] = v
	}
	for k, v := range spec.Remote.Consts {
		c.Consts[k] = v
	}

	// Descriptivity analysis first: which value attributes become object
	// references (the paper's object view of object-value conflicts).
	desc := map[Side]map[string]map[string]*DescRule{LocalSide: {}, RemoteSide: {}}
	for _, dr := range spec.DescRules {
		byClass := desc[dr.ValueSide]
		if byClass[dr.ValueClass] == nil {
			byClass[dr.ValueClass] = map[string]*DescRule{}
		}
		for _, a := range dr.ValueAttrs {
			byClass[dr.ValueClass][a] = dr
		}
	}

	if err := c.conformSchema(LocalSide, desc[LocalSide]); err != nil {
		return nil, err
	}
	if err := c.conformSchema(RemoteSide, desc[RemoteSide]); err != nil {
		return nil, err
	}
	c.applyValueViews()
	if err := c.conformObjects(LocalSide, local, desc[LocalSide]); err != nil {
		return nil, err
	}
	if err := c.conformObjects(RemoteSide, remote, desc[RemoteSide]); err != nil {
		return nil, err
	}
	c.conformConstraints(LocalSide, desc[LocalSide], opts.workers())
	c.conformConstraints(RemoteSide, desc[RemoteSide], opts.workers())
	c.collectTypes()
	return c, nil
}

// virtClassName names the virtual class objectifying values that describe
// objects of the given class (VirtPublisher in the paper's example).
func virtClassName(objectClass string) string { return "Virt" + objectClass }

// conformedAttrName resolves the conformed name and conversion of an
// attribute on a side (identity when no propeq covers it).
func (c *Conformed) conformedAttrName(side Side, class, attr string) (string, ConvFunc) {
	pe, ok := c.Spec.PropEqFor(side, class, attr)
	if !ok {
		return attr, idFunc{}
	}
	if side == LocalSide {
		return pe.Conformed, pe.CF
	}
	return pe.Conformed, pe.CFRemote
}

// conformSchema applies attribute renames/retypes and creates virtual
// classes on one side's cloned schema.
func (c *Conformed) conformSchema(side Side, desc map[string]map[string]*DescRule) error {
	db := c.SchemaOf(side)
	// Virtual classes for descriptivity (objectify direction only; value
	// views are applied in applyValueViews).
	for class, attrs := range desc {
		for _, dr := range attrs {
			if dr.ValueView {
				continue
			}
			vc := virtClassName(dr.ObjectClass)
			if _, ok := db.Class(vc); ok {
				continue
			}
			// The virtual class carries one attribute per described value
			// attribute, under its conformed name.
			nc := &schema.Class{Name: vc, Virtual: true}
			for _, a := range dr.ValueAttrs {
				orig, _, ok := c.Spec.DB(side).Schema.ResolveAttr(class, a)
				if !ok {
					return fmt.Errorf("descriptivity: no attribute %s.%s", class, a)
				}
				name, conv := c.conformedAttrName(side, class, a)
				nc.Attrs = append(nc.Attrs, schema.Attribute{
					Name: name, Type: conv.ApplyType(orig.Type.(object.Type)),
				})
			}
			if err := db.AddClass(nc); err != nil {
				return err
			}
			c.VirtualClasses[side] = append(c.VirtualClasses[side], vc)
			// Implied equality rule between the virtual class and the
			// described object class on the other side.
			cond := c.rewriteDescCond(side, class, dr)
			impl := &EqRule{
				Raw: tm.Rule{Name: dr.Raw.Name + "$virt", Kind: tm.RuleEq, Src: dr.Raw.Src},
			}
			if side == LocalSide {
				impl.LocalVar, impl.LocalClass = dr.ValueVar, vc
				impl.RemoteVar, impl.RemoteClass = dr.ObjectVar, dr.ObjectClass
			} else {
				impl.LocalVar, impl.LocalClass = dr.ObjectVar, dr.ObjectClass
				impl.RemoteVar, impl.RemoteClass = dr.ValueVar, vc
			}
			impl.Inter = splitConjuncts(cond)
			c.ImpliedEq = append(c.ImpliedEq, impl)
		}
	}
	// Attribute renames and retypes per propeq; objectified attributes
	// become references to the virtual class instead, value-view
	// described attributes keep their declared name and type.
	for _, cls := range db.Classes() {
		if cls.Virtual {
			continue
		}
		for i, a := range cls.Attrs {
			if byClass, ok := desc[clsOwning(c.Spec.DB(side).Schema, cls.Name, a.Name)]; ok {
				if dr, ok := byClass[a.Name]; ok {
					if !dr.ValueView {
						cls.Attrs[i].Type = object.ClassType{Class: virtClassName(dr.ObjectClass)}
					}
					continue
				}
			}
			name, conv := c.conformedAttrName(side, cls.Name, a.Name)
			cls.Attrs[i].Name = name
			cls.Attrs[i].Type = conv.ApplyType(a.Type.(object.Type))
		}
	}
	return nil
}

// applyValueViews hides the object classes of value-view descriptivity
// rules: reference attributes pointing at them become tuple-typed, and
// the classes' extents and constraints are suppressed (§4 subtask 1).
func (c *Conformed) applyValueViews() {
	for _, dr := range c.Spec.DescRules {
		if !dr.ValueView {
			continue
		}
		objSide := dr.ValueSide.Other()
		c.Hidden[objSide][dr.ObjectClass] = true
		db := c.SchemaOf(objSide)
		origDB := c.Spec.DB(objSide).Schema
		fields := map[string]object.Type{}
		for _, a := range origDB.AllAttrs(dr.ObjectClass) {
			name, conv := c.conformedAttrName(objSide, dr.ObjectClass, a.Name)
			fields[name] = conv.ApplyType(a.Type.(object.Type))
		}
		tt := object.TupleType{Fields: fields}
		for _, cls := range db.Classes() {
			for i, a := range cls.Attrs {
				if ct, ok := a.Type.(object.ClassType); ok && ct.Class == dr.ObjectClass {
					cls.Attrs[i].Type = tt
				}
			}
		}
	}
}

// clsOwning returns the class that declares the attribute (for desc map
// lookups keyed by the declaring class).
func clsOwning(db *schema.Database, class, attr string) string {
	if _, owner, ok := db.ResolveAttr(class, attr); ok {
		return owner
	}
	return class
}

// rewriteDescCond rewrites a descriptivity condition so that the value
// variable reads the virtual object's conformed attributes:
// O.publisher = R.name becomes O.name = R.name.
func (c *Conformed) rewriteDescCond(side Side, class string, dr *DescRule) expr.Node {
	attrSet := map[string]string{}
	for _, a := range dr.ValueAttrs {
		name, _ := c.conformedAttrName(side, class, a)
		attrSet[a] = name
	}
	return expr.Rewrite(dr.Cond, func(n expr.Node) expr.Node {
		p, ok := n.(expr.Path)
		if !ok {
			return nil
		}
		root, ok := p.Recv.(expr.Ident)
		if !ok || root.Name != dr.ValueVar {
			return nil
		}
		if nn, ok := attrSet[p.Attr]; ok {
			return expr.Path{Recv: p.Recv, Attr: nn}
		}
		return nil
	})
}

// conformObjects converts one side's store contents into conformed
// objects, creating virtual objects for described values.
func (c *Conformed) conformObjects(side Side, st *store.Store, desc map[string]map[string]*DescRule) error {
	origDB := c.Spec.DB(side).Schema
	// Virtual object dedup per virtual class: canonical key → ref.
	virt := map[string]map[string]object.Ref{}

	for _, clsName := range origDB.ClassNames() {
		if c.Hidden[side][clsName] {
			continue // value-view: the class's objects exist only as values
		}
		for _, o := range st.DirectExtent(clsName) {
			co := &CObj{
				Src:   object.Ref{DB: st.Name(), OID: o.OID()},
				Side:  side,
				Class: clsName,
				Attrs: map[string]object.Value{},
			}
			for _, a := range origDB.AllAttrs(clsName) {
				v, ok := o.Get(a.Name)
				if !ok {
					continue
				}
				owner := clsOwning(origDB, clsName, a.Name)
				if byClass, ok := desc[owner]; ok {
					if dr, ok := byClass[a.Name]; ok {
						if dr.ValueView {
							co.Attrs[a.Name] = v // value stays a value
							continue
						}
						ref, err := c.virtualFor(side, clsName, dr, o, virt)
						if err != nil {
							return err
						}
						co.Attrs[a.Name] = ref
						continue
					}
				}
				// References to hidden classes inline as tuple values.
				if ct, ok := a.Type.(object.ClassType); ok && c.Hidden[side][ct.Class] {
					tup, err := c.hideRef(side, st, ct.Class, v)
					if err != nil {
						return fmt.Errorf("conforming %s.%s of %s: %w", clsName, a.Name, co.Src, err)
					}
					co.Attrs[a.Name] = tup
					continue
				}
				name, conv := c.conformedAttrName(side, clsName, a.Name)
				cv, err := conv.Apply(v)
				if err != nil {
					return fmt.Errorf("conforming %s.%s of %s: %w", clsName, a.Name, co.Src, err)
				}
				co.Attrs[name] = cv
			}
			c.objs[side][clsName] = append(c.objs[side][clsName], co)
			c.byRef[co.Src] = co
		}
	}
	return nil
}

// hideRef converts a reference to a hidden class into the complex value
// describing the referenced object (conformed field names and values).
func (c *Conformed) hideRef(side Side, st *store.Store, class string, v object.Value) (object.Value, error) {
	ref, ok := v.(object.Ref)
	if !ok {
		if v.Kind() == object.KindNull {
			return v, nil
		}
		return nil, fmt.Errorf("expected a reference to %s, got %s", class, v)
	}
	target, ok := st.Get(ref.OID)
	if !ok {
		return object.Null{}, nil
	}
	origDB := c.Spec.DB(side).Schema
	fields := map[string]object.Value{}
	for _, a := range origDB.AllAttrs(class) {
		fv, ok := target.Get(a.Name)
		if !ok {
			continue
		}
		name, conv := c.conformedAttrName(side, class, a.Name)
		cv, err := conv.Apply(fv)
		if err != nil {
			return nil, err
		}
		fields[name] = cv
	}
	return object.NewTuple(fields), nil
}

// virtualFor returns (creating on first use) the virtual object for the
// described value tuple of the given object.
func (c *Conformed) virtualFor(side Side, class string, dr *DescRule, o *store.Obj, virt map[string]map[string]object.Ref) (object.Ref, error) {
	vc := virtClassName(dr.ObjectClass)
	if virt[vc] == nil {
		virt[vc] = map[string]object.Ref{}
	}
	attrs := map[string]object.Value{}
	var keyParts []string
	for _, a := range dr.ValueAttrs {
		v, ok := o.Get(a)
		if !ok {
			v = object.Null{}
		}
		name, conv := c.conformedAttrName(side, class, a)
		cv, err := conv.Apply(v)
		if err != nil {
			return object.Ref{}, err
		}
		attrs[name] = cv
		keyParts = append(keyParts, fmt.Sprintf("%016x", object.Hash(cv)))
	}
	key := strings.Join(keyParts, "|")
	if ref, ok := virt[vc][key]; ok {
		return ref, nil
	}
	ref := object.Ref{DB: "virt:" + vc, OID: c.virtSeq}
	c.virtSeq++
	vo := &CObj{Src: ref, Side: side, Class: vc, Attrs: attrs, Virtual: true}
	c.objs[side][vc] = append(c.objs[side][vc], vo)
	c.byRef[ref] = vo
	virt[vc][key] = ref
	return ref, nil
}

// conformConstraints re-expresses every constraint of a side in conformed
// terms: re-allocation to virtual classes, attribute substitution, domain
// conversion of literals, and aggregate-over renames (§4 subtasks 1–4).
// Each constraint's rewrite is independent and reads only state frozen
// before this stage, so the rewrites fan out across the worker pool; the
// results land in per-index slots and append in declaration order.
func (c *Conformed) conformConstraints(side Side, desc map[string]map[string]*DescRule, workers int) {
	db := c.Spec.DB(side).Schema
	var jobs []func() CCon
	for _, cls := range db.Classes() {
		for _, k := range cls.Constraints {
			jobs = append(jobs, func() CCon { return c.conformClassCon(side, desc, cls.Name, k) })
		}
	}
	for _, k := range db.DBCons {
		jobs = append(jobs, func() CCon { return c.conformDBCon(side, desc, k) })
	}
	out := make([]CCon, len(jobs))
	parallelFor(len(jobs), workers, func(i int) { out[i] = jobs[i]() })
	c.Cons = append(c.Cons, out...)
}

// conformClassCon rewrites one class-attached constraint.
func (c *Conformed) conformClassCon(side Side, desc map[string]map[string]*DescRule, clsName string, k schema.Constraint) CCon {
	db := c.Spec.DB(side).Schema
	key := ConKey{db.Name, clsName, k.Name}
	status := c.Spec.Status[key]
	node := k.Expr.(expr.Node)

	// §4 subtask 1, hiding direction: constraints of a class that
	// was cast into values are hidden with it.
	if c.Hidden[side][clsName] {
		return CCon{
			Key: key, Kind: k.Kind, Side: side, Class: clsName,
			Expr: node, Status: status, Hidden: true,
			Note: "hidden: " + clsName + " was cast into values (value view)",
		}
	}

	// Re-allocation (§4 subtask 1): a constraint touching only
	// described value attributes moves to the virtual class.
	if byClass, ok := desc[clsName]; ok && len(byClass) > 0 {
		// Consider only genuine attributes of the class: named
		// constants (KNOWNPUBLISHERS) are not attributes.
		var used []string
		for a := range expr.AttrsUsed(node) {
			if _, _, ok := db.ResolveAttr(clsName, a); ok {
				used = append(used, a)
			}
		}
		allDesc := len(used) > 0
		var dr *DescRule
		for _, a := range used {
			d, ok := byClass[a]
			if !ok {
				allDesc = false
				break
			}
			dr = d
		}
		if allDesc && dr != nil && !dr.ValueView {
			vc := virtClassName(dr.ObjectClass)
			rewritten := c.renameAttrsOnly(side, clsName, node)
			return CCon{
				Key: key, Kind: k.Kind, Side: side, Class: vc,
				Expr: rewritten, Status: status,
				Note: fmt.Sprintf("re-allocated from %s to virtual class %s", clsName, vc),
			}
		}
	}
	cf := &conformer{c: c, side: side, class: clsName, desc: desc}
	rewritten := cf.node(node)
	return CCon{
		Key: key, Kind: k.Kind, Side: side, Class: clsName,
		Expr: rewritten, Status: status,
		Imperfect: cf.imperfect, Note: strings.Join(cf.notes, "; "),
	}
}

// conformDBCon rewrites one database constraint.
func (c *Conformed) conformDBCon(side Side, desc map[string]map[string]*DescRule, k schema.Constraint) CCon {
	db := c.Spec.DB(side).Schema
	key := ConKey{db.Name, "", k.Name}
	node := k.Expr.(expr.Node)
	// A database constraint quantifying over a hidden class is hidden
	// with it (its extension no longer exists in the conformed view).
	if cls, ok := c.quantifiesHidden(side, node); ok {
		return CCon{
			Key: key, Kind: schema.DatabaseConstraint, Side: side, Class: "",
			Expr: node, Status: c.Spec.Status[key], Hidden: true,
			Note: "hidden: quantifies over " + cls + " which was cast into values (value view)",
		}
	}
	cf := &conformer{c: c, side: side, class: "", desc: desc}
	rewritten := cf.node(node)
	return CCon{
		Key: key, Kind: schema.DatabaseConstraint, Side: side, Class: "",
		Expr: rewritten, Status: c.Spec.Status[key],
		Imperfect: cf.imperfect, Note: strings.Join(cf.notes, "; "),
	}
}

// quantifiesHidden reports whether a formula binds a variable over a
// hidden class on the given side.
func (c *Conformed) quantifiesHidden(side Side, n expr.Node) (string, bool) {
	found := ""
	expr.Walk(n, func(x expr.Node) bool {
		if q, ok := x.(expr.Quant); ok {
			for _, b := range q.Binders {
				if c.Hidden[side][b.Class] {
					found = b.Class
					return false
				}
			}
		}
		return true
	})
	return found, found != ""
}

// renameAttrsOnly substitutes conformed attribute names without domain
// conversion — used when moving constraints onto virtual classes whose
// attribute values were already converted.
func (c *Conformed) renameAttrsOnly(side Side, class string, n expr.Node) expr.Node {
	return expr.Rewrite(n, func(x expr.Node) expr.Node {
		if id, ok := x.(expr.Ident); ok {
			if _, _, ok := c.Spec.DB(side).Schema.ResolveAttr(class, id.Name); ok {
				name, _ := c.conformedAttrName(side, class, id.Name)
				if name != id.Name {
					return expr.Ident{Name: name}
				}
			}
		}
		return nil
	})
}

// collectTypes builds the path → conformed type map for the reasoner.
// When both sides declare the same conformed attribute with different
// range bounds, the bounds are widened to their union so that no type
// assumption is unsound for either side's values.
func (c *Conformed) collectTypes() {
	put := func(path string, t object.Type) {
		have, ok := c.Types[path]
		if !ok {
			c.Types[path] = t
			return
		}
		hr, hok := have.(object.RangeType)
		tr, tok := t.(object.RangeType)
		switch {
		case hok && tok:
			if tr.Lo < hr.Lo {
				hr.Lo = tr.Lo
			}
			if tr.Hi > hr.Hi {
				hr.Hi = tr.Hi
			}
			c.Types[path] = hr
		case have.EqualType(t):
			// identical, keep
		default:
			// Conflicting declarations: drop the entry rather than risk
			// an unsound bound.
			delete(c.Types, path)
		}
	}
	add := func(db *schema.Database) {
		for _, cls := range db.Classes() {
			for _, a := range db.AllAttrs(cls.Name) {
				t := a.Type.(object.Type)
				put(a.Name, t)
				if ct, ok := t.(object.ClassType); ok {
					if target, ok := db.Class(ct.Class); ok {
						for _, ta := range db.AllAttrs(target.Name) {
							put(a.Name+"."+ta.Name, ta.Type.(object.Type))
						}
					}
				}
			}
		}
	}
	add(c.LocalSchema)
	add(c.RemoteSchema)
}
