package core

import (
	"fmt"
	"testing"

	"interopdb/internal/fixture"
	"interopdb/internal/store"
	"interopdb/internal/tm"
	"interopdb/internal/workload"
)

// diffCase is one workload for the sequential-vs-parallel differential.
type diffCase struct {
	name  string
	build func() (*tm.DatabaseSpec, *tm.DatabaseSpec, *tm.IntegrationSpec, *store.Store, *store.Store)
}

func diffCases() []diffCase {
	return []diffCase{
		{"figure1", func() (*tm.DatabaseSpec, *tm.DatabaseSpec, *tm.IntegrationSpec, *store.Store, *store.Store) {
			l, r := fixture.Figure1Stores(fixture.Options{})
			return tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(), l, r
		}},
		{"figure1-price-conflict", func() (*tm.DatabaseSpec, *tm.DatabaseSpec, *tm.IntegrationSpec, *store.Store, *store.Store) {
			l, r := fixture.Figure1Stores(fixture.Options{PriceConflict: true})
			return tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(), l, r
		}},
		{"figure1-repaired", func() (*tm.DatabaseSpec, *tm.DatabaseSpec, *tm.IntegrationSpec, *store.Store, *store.Store) {
			l, r := fixture.Figure1Stores(fixture.Options{})
			return tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), l, r
		}},
		{"figure1-scaled-fixture", func() (*tm.DatabaseSpec, *tm.DatabaseSpec, *tm.IntegrationSpec, *store.Store, *store.Store) {
			l, r := fixture.Figure1Stores(fixture.Options{Scale: 12})
			return tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(), l, r
		}},
		{"personnel", func() (*tm.DatabaseSpec, *tm.DatabaseSpec, *tm.IntegrationSpec, *store.Store, *store.Store) {
			l, r := fixture.PersonnelStores()
			return tm.Personnel1(), tm.Personnel2(), tm.PersonnelIntegration(), l, r
		}},
		{"bibliographic-workload", func() (*tm.DatabaseSpec, *tm.DatabaseSpec, *tm.IntegrationSpec, *store.Store, *store.Store) {
			p := workload.DefaultParams()
			p.LocalBooks, p.RemoteBooks = 250, 250
			p.Overlap = 0.5
			l, r := workload.Bibliographic(p)
			return tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(), l, r
		}},
	}
}

// TestParallelIntegrateDifferential is the determinism proof demanded
// by the pipeline contract: for every workload, Result.Report() under
// any parallelism (and with or without the entailment cache) must be
// byte-identical to the fully sequential, uncached run.
func TestParallelIntegrateDifferential(t *testing.T) {
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			ls, rs, is, l, r := func() (*tm.DatabaseSpec, *tm.DatabaseSpec, *tm.IntegrationSpec, *store.Store, *store.Store) {
				return tc.build()
			}()
			ref, err := IntegrateOptions(ls, rs, is, l, r, 1, Options{Parallelism: 1, NoMemo: true})
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Report()
			if want == "" {
				t.Fatal("empty reference report")
			}
			for _, opt := range []Options{
				{Parallelism: 1},
				{Parallelism: 2},
				{Parallelism: 8},
				{Parallelism: 0}, // GOMAXPROCS
				{Parallelism: 8, NoMemo: true},
			} {
				// Fresh stores per run: Integrate must not depend on
				// prior runs' state.
				ls2, rs2, is2, l2, r2 := tc.build()
				res, err := IntegrateOptions(ls2, rs2, is2, l2, r2, 1, opt)
				if err != nil {
					t.Fatalf("%+v: %v", opt, err)
				}
				if got := res.Report(); got != want {
					t.Errorf("options %+v: report diverged from sequential run\nfirst divergence: %s",
						opt, firstDiff(want, got))
				}
			}
		})
	}
}

func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("byte %d: ...%q vs ...%q", i, a[lo:min(i+40, len(a))], b[lo:min(i+40, len(b))])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// TestParallelDerivationEquivalence checks the structured outputs (not
// just the rendered report): global constraints, conflicts and notes
// must match the sequential run element-by-element.
func TestParallelDerivationEquivalence(t *testing.T) {
	l, r := fixture.Figure1Stores(fixture.Options{PriceConflict: true})
	seq, err := IntegrateOptions(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(), l, r, 1,
		Options{Parallelism: 1, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	l2, r2 := fixture.Figure1Stores(fixture.Options{PriceConflict: true})
	par, err := IntegrateOptions(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(), l2, r2, 1,
		Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := len(seq.Derivation.Global), len(par.Derivation.Global); a != b {
		t.Fatalf("global count: seq %d, par %d", a, b)
	}
	for i := range seq.Derivation.Global {
		if seq.Derivation.Global[i].String() != par.Derivation.Global[i].String() {
			t.Errorf("global[%d]: %s vs %s", i, seq.Derivation.Global[i], par.Derivation.Global[i])
		}
	}
	if a, b := len(seq.Derivation.Conflicts), len(par.Derivation.Conflicts); a != b {
		t.Fatalf("conflict count: seq %d, par %d", a, b)
	}
	for i := range seq.Derivation.Conflicts {
		if seq.Derivation.Conflicts[i].String() != par.Derivation.Conflicts[i].String() {
			t.Errorf("conflict[%d]: %s vs %s", i, seq.Derivation.Conflicts[i], par.Derivation.Conflicts[i])
		}
	}
	if a, b := fmt.Sprint(seq.Derivation.Notes), fmt.Sprint(par.Derivation.Notes); a != b {
		t.Errorf("notes diverged:\nseq: %s\npar: %s", a, b)
	}
}

// TestCacheStatsPopulated checks the memo layer actually engages on the
// pipeline's own query stream. Two sibling local classes pair with the
// same remote class, so both class-pair integrations ask the identical
// explicit-conflict and implicit-conflict queries — the second pair
// must be answered from cache.
func TestCacheStatsPopulated(t *testing.T) {
	localSpec := tm.MustParseDatabase(`
Database L
Class P
  attributes
    k : string
    x : int
  object constraints
    ocx: x >= 2
end P
Class C1 isa P
  attributes
    a1 : int
end C1
Class C2 isa P
  attributes
    a2 : int
end C2
`)
	remoteSpec := tm.MustParseDatabase(`
Database R
Class D
  attributes
    k : string
    x : int
  object constraints
    ocd: x <= 50
end D
`)
	ispec := tm.MustParseIntegration(`
integration L imports R
rule r1: Eq(A:C1, B:D) <= A.k = B.k
rule r2: Eq(A:C2, B:D) <= A.k = B.k
propeq(P.k, D.k, id, id, any)
propeq(P.x, D.x, id, id, any)
`)
	ls := store.New(localSpec.Schema, nil)
	rs := store.New(remoteSpec.Schema, nil)
	res, err := Integrate(localSpec, remoteSpec, ispec, ls, rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Derivation.CacheStats()
	if st.Misses == 0 {
		t.Fatalf("pipeline issued no reasoning queries: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("second class pair repeated no queries: %+v", st)
	}
}

// TestOptionsWorkers pins the worker-count resolution.
func TestOptionsWorkers(t *testing.T) {
	if (Options{Parallelism: 3}).workers() != 3 {
		t.Fatal("explicit parallelism not honored")
	}
	if (Options{}).workers() < 1 {
		t.Fatal("default parallelism must be at least 1")
	}
	if (Options{Parallelism: -1}).workers() < 1 {
		t.Fatal("negative parallelism must fall back to default")
	}
}

// TestParallelFor exercises the pool helper directly.
func TestParallelFor(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		n := 100
		out := make([]int, n)
		parallelFor(n, workers, func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
	// Zero units must not hang or panic.
	parallelFor(0, 4, func(int) { t.Fatal("called for n=0") })
}
