package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"interopdb/internal/expr"
	"interopdb/internal/object"
)

// GObj is a global (integrated) object: the merge of an equivalence class
// of conformed objects, with property values determined by the decision
// functions.
type GObj struct {
	ID    int
	Parts map[Side][]*CObj
	Attrs map[string]object.Value
	// Classes holds the global class names the object belongs to.
	Classes map[string]bool
}

// Get implements expr.Object.
func (g *GObj) Get(attr string) (object.Value, bool) {
	v, ok := g.Attrs[attr]
	return v, ok
}

// Identity implements expr.Identifiable.
func (g *GObj) Identity() object.Ref {
	return object.Ref{DB: "global", OID: object.OID(g.ID)}
}

// Merged reports whether the object has constituents in at least two
// member databases (the two sides of a pairwise integration, any pair of
// members in a federated view).
func (g *GObj) Merged() bool {
	sides := 0
	for _, ms := range g.Parts {
		if len(ms) > 0 {
			sides++
		}
	}
	return sides >= 2
}

// String renders the object.
func (g *GObj) String() string {
	var classes []string
	for c := range g.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	keys := make([]string, 0, len(g.Attrs))
	for k := range g.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + g.Attrs[k].String()
	}
	return fmt.Sprintf("g%d{%s}(%s)", g.ID, strings.Join(classes, ","), strings.Join(parts, ","))
}

// ISAEdge is a derived subclass relationship in the global lattice.
type ISAEdge struct{ Sub, Super string }

// VirtualSubclass records an emergent intersection class (the paper's
// RefereedProceedings): objects similar to both a local and a remote
// class, where neither extension contains the other.
type VirtualSubclass struct {
	Name        string
	LocalClass  string
	RemoteClass string
	MemberIDs   []int
}

// ApproxSuper records the virtual common superclass created by an
// approximate-similarity rule.
type ApproxSuper struct {
	Name        string
	LocalClass  string // the Sim target side's class C
	RemoteClass string // the source class C'
	MemberIDs   []int
}

// GlobalView is the result of the merging phase: the integrated object
// set with its emergent classification.
type GlobalView struct {
	Conformed *Conformed
	Objects   []*GObj
	// classExt maps global class names to member objects.
	classExt map[string][]*GObj
	// Names of all global classes in deterministic order.
	ClassNames []string
	// Origin of plain global classes: side + conformed class.
	Origin map[string]struct {
		Side  Side
		Class string
	}
	ISA               []ISAEdge
	VirtualSubclasses []VirtualSubclass
	ApproxSupers      []ApproxSuper
	byRef             map[object.Ref]*GObj
	// nextID allocates global object IDs (lazily initialised past the
	// merge-time maximum; never reused after a delete).
	nextID int
	// simCondCache memoizes conformSimConds per rule for reclassification.
	simCondCache map[*SimRule][]expr.Node
	// fedNames, when non-nil (federated views), pins the global name of
	// every (member side, conformed class) pair. Names are assigned when
	// a member attaches and frozen for its lifetime, so membership
	// changes can never rename a class that queries, plans or indexes
	// already reference.
	fedNames map[Side]map[string]string
}

// sides lists the Side values of the view's members: the attach-ordered
// member slots of a federated view (detached slots included — their
// Parts are empty, so iterating them is a no-op), the fixed local/remote
// pair otherwise.
func (v *GlobalView) sides() []Side {
	if f := v.Conformed.Fed; f != nil {
		out := make([]Side, len(f.Schemas))
		for i := range out {
			out[i] = Side(i)
		}
		return out
	}
	return []Side{LocalSide, RemoteSide}
}

// Extent returns the members of a global class.
func (v *GlobalView) Extent(class string) []*GObj { return v.classExt[class] }

// GlobalName returns the global name of a conformed class: the plain name
// when unambiguous, otherwise qualified with the database name. In a
// federated view the frozen per-member name table decides first — names
// assigned at attach time survive later membership changes unchanged —
// and the ambiguity fallback counts every active member's schema.
func (v *GlobalView) GlobalName(side Side, class string) string {
	if v.fedNames != nil {
		if n, ok := v.fedNames[side][class]; ok {
			return n
		}
	}
	if f := v.Conformed.Fed; f != nil {
		declared := 0
		for i, db := range f.Schemas {
			if !f.Active[i] {
				continue
			}
			if _, ok := db.Class(class); ok {
				declared++
			}
		}
		if declared > 1 && int(side) < len(f.Names) {
			return f.Names[side] + "." + class
		}
		return class
	}
	_, inL := v.Conformed.LocalSchema.Class(class)
	_, inR := v.Conformed.RemoteSchema.Class(class)
	if inL && inR {
		return v.Conformed.Spec.DB(side).Schema.Name + "." + class
	}
	return class
}

// Deref resolves global and constituent references to global objects.
func (v *GlobalView) Deref(r object.Ref) (expr.Object, bool) {
	o, ok := v.byRef[r]
	return o, ok
}

// Env builds an evaluation environment over the global view.
func (v *GlobalView) Env(self *GObj) *expr.Env {
	env := &expr.Env{
		Consts: v.Conformed.Consts,
		Ext: func(class string) []expr.Object {
			ext := v.Extent(class)
			out := make([]expr.Object, len(ext))
			for i, o := range ext {
				out[i] = o
			}
			return out
		},
		Deref: func(r object.Ref) (expr.Object, bool) { return v.Deref(r) },
	}
	if self != nil {
		attrs := map[string]bool{}
		for a := range self.Attrs {
			attrs[a] = true
		}
		// Attributes declared on any class the object belongs to are
		// known (possibly null): a locally-kept publication classified
		// under Proceedings via a Sim rule has no ref? value, and
		// predicates over it must see null, not an unknown identifier.
		for cls := range self.Classes {
			org, ok := v.Origin[cls]
			if !ok {
				continue
			}
			for _, a := range v.Conformed.SchemaOf(org.Side).AllAttrs(org.Class) {
				attrs[a.Name] = true
			}
		}
		env.Vars = map[string]expr.Object{"self": self}
		env.SelfAttrs = attrs
	}
	return env
}

// DeclaresAttr reports whether any class of the object declares the
// attribute — the same resolution Env's SelfAttrs uses, so callers can
// predict whether an identifier evaluates to Null for an object missing
// it (declared), to a same-named constant, or to an unknown-identifier
// error (undeclared). The extent-index planner uses it to decline
// attributes whose per-row resolution is not simply the stored value.
func (v *GlobalView) DeclaresAttr(g *GObj, attr string) bool {
	for cls := range g.Classes {
		org, ok := v.Origin[cls]
		if !ok {
			continue
		}
		for _, a := range v.Conformed.SchemaOf(org.Side).AllAttrs(org.Class) {
			if a.Name == attr {
				return true
			}
		}
	}
	return false
}

// ApplyInsert registers an object newly shipped to a component database in
// the integrated view, so the serving path (queries, key-uniqueness
// validation) reflects it without re-running integration. The object is
// classified along its origin class's inheritance chain; Sim-rule
// classification, entity resolution against the other side, and PropEq
// value conversion are not re-run — attrs are stored as given and must
// already be in the conformed (global) domain, the same domain
// ValidateInsert evaluates; a full re-integration remains the way to
// pick those up. src is the component-store reference the insert
// received, registered for Deref.
func (v *GlobalView) ApplyInsert(class string, attrs map[string]object.Value, src object.Ref) (*GObj, error) {
	org, ok := v.Origin[class]
	if !ok {
		return nil, fmt.Errorf("no origin class for global class %s", class)
	}
	cp := make(map[string]object.Value, len(attrs))
	mp := make(map[string]object.Value, len(attrs))
	for k, val := range attrs {
		cp[k] = val
		mp[k] = val
	}
	g := &GObj{
		ID:      v.nextObjectID(),
		Parts:   map[Side][]*CObj{},
		Attrs:   cp,
		Classes: map[string]bool{},
	}
	// The constituent gets its own attribute map: sharing cp would let a
	// later in-place constituent write (ApplyUpdate fans values out to
	// the parts) mutate the global object's map behind a frozen
	// snapshot's back.
	g.Parts[org.Side] = append(g.Parts[org.Side], &CObj{
		Src: src, Side: org.Side, Class: org.Class, Attrs: mp,
	})
	for _, cn := range v.Conformed.SchemaOf(org.Side).Supers(org.Class) {
		v.addToClass(g, org.Side, cn)
	}
	v.Objects = append(v.Objects, g)
	v.byRef[g.Identity()] = g
	v.byRef[src] = g
	return g, nil
}

// Merge runs the merging phase: entity resolution over the equality rules
// (explicit and descriptivity-implied), value fusion through decision
// functions, Sim-rule classification, and derivation of the global class
// lattice from the merged extensions.
func Merge(c *Conformed) (*GlobalView, error) {
	v := &GlobalView{
		Conformed: c,
		classExt:  map[string][]*GObj{},
		Origin: map[string]struct {
			Side  Side
			Class string
		}{},
		byRef: map[object.Ref]*GObj{},
	}
	rng := rand.New(rand.NewSource(c.Spec.Seed))

	// --- Entity resolution ---------------------------------------------
	parent := map[*CObj]*CObj{}
	var find func(o *CObj) *CObj
	find = func(o *CObj) *CObj {
		p, ok := parent[o]
		if !ok || p == o {
			parent[o] = o
			return o
		}
		r := find(p)
		parent[o] = r
		return r
	}
	union := func(a, b *CObj) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	rules := append([]*EqRule{}, c.Spec.EqRules...)
	rules = append(rules, c.ImpliedEq...)
	for _, r := range rules {
		if err := v.resolveRule(r, union); err != nil {
			return nil, err
		}
	}

	// --- Global object construction ------------------------------------
	groups := map[*CObj][]*CObj{}
	var order []*CObj
	collect := func(objs []*CObj) {
		for _, o := range objs {
			root := find(o)
			if _, seen := groups[root]; !seen {
				order = append(order, root)
			}
			groups[root] = append(groups[root], o)
		}
	}
	collect(c.AllObjects(LocalSide))
	collect(c.AllObjects(RemoteSide))

	for i, root := range order {
		g := &GObj{
			ID:      i + 1,
			Parts:   map[Side][]*CObj{},
			Attrs:   map[string]object.Value{},
			Classes: map[string]bool{},
		}
		for _, m := range groups[root] {
			g.Parts[m.Side] = append(g.Parts[m.Side], m)
		}
		v.fuse(g, rng)
		v.Objects = append(v.Objects, g)
		v.byRef[g.Identity()] = g
		for _, ms := range g.Parts {
			for _, m := range ms {
				v.byRef[m.Src] = g
			}
		}
	}

	// --- Classification --------------------------------------------------
	v.classifyConstituents()
	if err := v.classifySim(); err != nil {
		return nil, err
	}
	v.buildLattice()
	return v, nil
}

// resolveRule finds matching (local, remote) pairs for one equality rule
// and unions them. A hash join on the first equi-join conjunct avoids the
// quadratic pair scan when possible.
func (v *GlobalView) resolveRule(r *EqRule, union func(a, b *CObj)) error {
	c := v.Conformed
	locals := c.Extent(LocalSide, r.LocalClass)
	remotes := c.Extent(RemoteSide, r.RemoteClass)
	if len(locals) == 0 || len(remotes) == 0 {
		return nil
	}
	conds := v.conformRuleConds(r)

	pairEnv := func(lo, ro *CObj) *expr.Env {
		return &expr.Env{
			Vars:   map[string]expr.Object{r.LocalVar: lo, r.RemoteVar: ro},
			Consts: c.Consts,
			Deref:  func(x object.Ref) (expr.Object, bool) { return c.Deref(x) },
		}
	}
	match := func(lo, ro *CObj) (bool, error) {
		env := pairEnv(lo, ro)
		for _, cond := range conds {
			ok, err := env.EvalBool(cond)
			if err != nil {
				return false, fmt.Errorf("rule %s: %w", r.Raw.Name, err)
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}

	la, ra, hasEqui := equiJoinAttrs(conds, r.LocalVar, r.RemoteVar)
	if hasEqui && !c.Spec.DisableHashJoin {
		idx := map[uint64][]*CObj{}
		for _, ro := range remotes {
			if val, ok := ro.Get(ra); ok && val.Kind() != object.KindNull {
				h := object.Hash(val)
				idx[h] = append(idx[h], ro)
			}
		}
		for _, lo := range locals {
			val, ok := lo.Get(la)
			if !ok || val.Kind() == object.KindNull {
				continue
			}
			for _, ro := range idx[object.Hash(val)] {
				ok, err := match(lo, ro)
				if err != nil {
					return err
				}
				if ok {
					union(lo, ro)
				}
			}
		}
		return nil
	}
	for _, lo := range locals {
		for _, ro := range remotes {
			ok, err := match(lo, ro)
			if err != nil {
				return err
			}
			if ok {
				union(lo, ro)
			}
		}
	}
	return nil
}

// conformRuleConds rewrites the rule's conjuncts so attribute references
// use conformed names (the rule was written against the original
// schemas). Descriptivity-implied rules are already conformed.
func (v *GlobalView) conformRuleConds(r *EqRule) []expr.Node {
	c := v.Conformed
	if strings.HasSuffix(r.Raw.Name, "$virt") {
		return append(append([]expr.Node{}, r.Inter...), append(r.IntraLocal, r.IntraRemote...)...)
	}
	varSide := map[string]struct {
		side  Side
		class string
	}{
		r.LocalVar:  {LocalSide, r.LocalClass},
		r.RemoteVar: {RemoteSide, r.RemoteClass},
	}
	rw := func(n expr.Node) expr.Node {
		return expr.Rewrite(n, func(x expr.Node) expr.Node {
			p, ok := x.(expr.Path)
			if !ok {
				return nil
			}
			root, ok := p.Recv.(expr.Ident)
			if !ok {
				return nil
			}
			vs, ok := varSide[root.Name]
			if !ok {
				return nil
			}
			name, _ := c.conformedAttrName(vs.side, vs.class, p.Attr)
			if name != p.Attr {
				return expr.Path{Recv: p.Recv, Attr: name}
			}
			return nil
		})
	}
	var out []expr.Node
	for _, n := range r.Inter {
		out = append(out, rw(n))
	}
	for _, n := range r.IntraLocal {
		out = append(out, rw(n))
	}
	for _, n := range r.IntraRemote {
		out = append(out, rw(n))
	}
	return out
}

// equiJoinAttrs extracts the first conjunct of shape lv.a = rv.b.
func equiJoinAttrs(conds []expr.Node, lv, rv string) (string, string, bool) {
	for _, cond := range conds {
		b, ok := cond.(expr.Binary)
		if !ok || b.Op != expr.OpEq {
			continue
		}
		lp, lok := b.L.(expr.Path)
		rp, rok := b.R.(expr.Path)
		if !lok || !rok {
			continue
		}
		lroot, lok := lp.Recv.(expr.Ident)
		rroot, rok := rp.Recv.(expr.Ident)
		if !lok || !rok {
			continue
		}
		switch {
		case lroot.Name == lv && rroot.Name == rv:
			return lp.Attr, rp.Attr, true
		case lroot.Name == rv && rroot.Name == lv:
			return rp.Attr, lp.Attr, true
		}
	}
	return "", "", false
}

// fuse computes the global attribute values of a group through the
// decision functions (§2.3: "the value of global properties is determined
// from the conformed local and remote ones, using a decision function
// where applicable").
func (v *GlobalView) fuse(g *GObj, rng *rand.Rand) {
	names := map[string]bool{}
	for _, ms := range g.Parts {
		for _, m := range ms {
			for a := range m.Attrs {
				names[a] = true
			}
		}
	}
	ordered := make([]string, 0, len(names))
	for a := range names {
		ordered = append(ordered, a)
	}
	sort.Strings(ordered)

	firstVal := func(side Side, attr string) (object.Value, *CObj) {
		for _, m := range g.Parts[side] {
			if val, ok := m.Attrs[attr]; ok && val.Kind() != object.KindNull {
				return val, m
			}
		}
		return nil, nil
	}
	for _, a := range ordered {
		lv, lm := firstVal(LocalSide, a)
		rv, _ := firstVal(RemoteSide, a)
		switch {
		case lv != nil && rv != nil:
			if pe := v.propEqByConformed(a, lm); pe != nil {
				g.Attrs[a] = pe.DF.Combine(lv, rv, rng)
			} else {
				// No declared equivalence: same-named attributes without a
				// propeq behave like conflict-ignoring (documented).
				g.Attrs[a] = anyFunc{}.Combine(lv, rv, rng)
			}
		case lv != nil:
			g.Attrs[a] = lv
		case rv != nil:
			g.Attrs[a] = rv
		}
	}
}

// propEqByConformed finds the property equivalence whose conformed name
// matches and whose local class covers the given constituent.
func (v *GlobalView) propEqByConformed(name string, localPart *CObj) *PropEq {
	for _, pe := range v.Conformed.Spec.PropEqs {
		if pe.Conformed != name {
			continue
		}
		if localPart == nil {
			return pe
		}
		db := v.Conformed.Spec.Local.Schema
		if localPart.Virtual || db.IsA(localPart.Class, pe.Raw.LocalClass) || db.IsA(pe.Raw.LocalClass, localPart.Class) {
			return pe
		}
	}
	return nil
}

// classifyConstituents adds each global object to the global classes of
// its constituents' conformed class chains.
func (v *GlobalView) classifyConstituents() {
	for _, g := range v.Objects {
		// Fixed side order keeps class registration (and therefore the
		// derived lattice's edge order) deterministic.
		for _, side := range []Side{LocalSide, RemoteSide} {
			db := v.Conformed.SchemaOf(side)
			for _, m := range g.Parts[side] {
				for _, cn := range db.Supers(m.Class) {
					v.addToClass(g, side, cn)
				}
			}
		}
	}
}

func (v *GlobalView) addToClass(g *GObj, side Side, class string) {
	name := v.GlobalName(side, class)
	if g.Classes[name] {
		return
	}
	g.Classes[name] = true
	if _, seen := v.Origin[name]; !seen {
		v.Origin[name] = struct {
			Side  Side
			Class string
		}{side, class}
		v.ClassNames = append(v.ClassNames, name)
	}
	v.classExt[name] = append(v.classExt[name], g)
}

// classifySim applies the similarity rules: source-side objects whose
// intraobject condition holds join the target class (strict) or the
// virtual common superclass (approximate).
func (v *GlobalView) classifySim() error {
	c := v.Conformed
	for _, r := range c.Spec.SimRules {
		targetSide := r.SrcSide.Other()
		conds := v.conformSimConds(r)
		var approxMembers []int
		for _, o := range c.Extent(r.SrcSide, r.SrcClass) {
			g, ok := v.byRef[o.Src]
			if !ok {
				continue
			}
			env := &expr.Env{
				Vars:   map[string]expr.Object{r.SrcVar: o},
				Consts: c.Consts,
				Deref:  func(x object.Ref) (expr.Object, bool) { return c.Deref(x) },
			}
			match := true
			for _, cond := range conds {
				ok, err := env.EvalBool(cond)
				if err != nil {
					return fmt.Errorf("rule %s: %w", r.Raw.Name, err)
				}
				if !ok {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			if r.Approximate() {
				approxMembers = append(approxMembers, g.ID)
				v.addVirtualMember(g, r.Virtual)
			} else {
				for _, cn := range c.SchemaOf(targetSide).Supers(r.Target) {
					v.addToClass(g, targetSide, cn)
				}
			}
		}
		if r.Approximate() {
			// ext(Cv) ⊇ ext(C): the target class's extension is included.
			for _, g := range v.Extent(v.GlobalName(targetSide, r.Target)) {
				v.addVirtualMember(g, r.Virtual)
				approxMembers = append(approxMembers, g.ID)
			}
			v.ApproxSupers = append(v.ApproxSupers, ApproxSuper{
				Name:        r.Virtual,
				LocalClass:  r.Target,
				RemoteClass: r.SrcClass,
				MemberIDs:   dedupInts(approxMembers),
			})
		}
	}
	return nil
}

func (v *GlobalView) addVirtualMember(g *GObj, class string) {
	if g.Classes[class] {
		return
	}
	g.Classes[class] = true
	// Register the class name on its FIRST member only (keyed on the
	// extent map: virtual classes never get an Origin entry, so keying
	// on Origin — as this once did — appended the name again for every
	// member, duplicating it in ClassNames, the report and the lattice
	// loops).
	if _, seen := v.classExt[class]; !seen {
		if _, hasOrigin := v.Origin[class]; !hasOrigin {
			v.ClassNames = append(v.ClassNames, class)
		}
	}
	v.classExt[class] = append(v.classExt[class], g)
}

// conformSimConds rewrites a Sim rule's intraobject conjuncts into
// conformed terms with the full §4 machinery: attribute renames, literal
// domain conversion (a local-scale rating threshold doubles), and
// descriptivity rewiring (O.publisher reads O.publisher.name).
func (v *GlobalView) conformSimConds(r *SimRule) []expr.Node {
	c := v.Conformed
	desc := map[string]map[string]*DescRule{}
	for _, dr := range c.Spec.DescRules {
		if dr.ValueSide != r.SrcSide {
			continue
		}
		if desc[dr.ValueClass] == nil {
			desc[dr.ValueClass] = map[string]*DescRule{}
		}
		for _, a := range dr.ValueAttrs {
			desc[dr.ValueClass][a] = dr
		}
	}
	out := make([]expr.Node, len(r.Intra))
	for i, n := range r.Intra {
		cf := &conformer{
			c: c, side: r.SrcSide, class: "", desc: desc,
			varClasses: map[string]string{r.SrcVar: r.SrcClass},
		}
		out[i] = cf.node(n)
	}
	return out
}

// buildLattice derives subclass edges from extension containment and
// creates virtual intersection subclasses for Sim-related class pairs
// with partial overlap (the paper's RefereedProceedings).
func (v *GlobalView) buildLattice() {
	ext := func(name string) map[int]bool {
		out := map[int]bool{}
		for _, g := range v.classExt[name] {
			out[g.ID] = true
		}
		return out
	}
	exts := map[string]map[int]bool{}
	for _, name := range v.ClassNames {
		exts[name] = ext(name)
	}
	subset := func(a, b map[int]bool) bool {
		if len(a) == 0 || len(a) > len(b) {
			return false
		}
		for id := range a {
			if !b[id] {
				return false
			}
		}
		return true
	}
	for _, a := range v.ClassNames {
		for _, b := range v.ClassNames {
			if a == b {
				continue
			}
			if subset(exts[a], exts[b]) {
				v.ISA = append(v.ISA, ISAEdge{Sub: a, Super: b})
			}
		}
	}
	// Virtual intersection subclasses for Sim-related pairs.
	for _, r := range v.Conformed.Spec.SimRules {
		if r.Approximate() {
			continue
		}
		srcName := v.GlobalName(r.SrcSide, r.SrcClass)
		tgtName := v.GlobalName(r.SrcSide.Other(), r.Target)
		se, te := exts[srcName], exts[tgtName]
		var inter []int
		for id := range se {
			if te[id] {
				inter = append(inter, id)
			}
		}
		if len(inter) == 0 || subset(se, te) || subset(te, se) {
			continue
		}
		sort.Ints(inter)
		name := tgtName + "_" + strings.ReplaceAll(srcName, ".", "_")
		dup := false
		for _, vs := range v.VirtualSubclasses {
			if vs.Name == name {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		vs := VirtualSubclass{Name: name, LocalClass: tgtName, RemoteClass: srcName, MemberIDs: inter}
		v.VirtualSubclasses = append(v.VirtualSubclasses, vs)
		for _, id := range inter {
			v.addVirtualMember(v.Objects[id-1], name)
		}
		v.ISA = append(v.ISA,
			ISAEdge{Sub: name, Super: srcName},
			ISAEdge{Sub: name, Super: tgtName},
		)
	}
}

func dedupInts(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	for i, x := range in {
		if i == 0 || x != in[i-1] {
			out = append(out, x)
		}
	}
	return out
}
