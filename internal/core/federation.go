package core

import (
	"fmt"
	"sort"
	"strings"

	"interopdb/internal/expr"
	"interopdb/internal/logic"
	"interopdb/internal/object"
	"interopdb/internal/schema"
	"interopdb/internal/tm"
)

// N-way federation (DESIGN.md §9): the pairwise pipeline stays the unit
// of integration — every non-seed member is attached by ONE pair
// integration against an existing member — and this file folds pair
// results into a single live combined state incrementally:
//
//   - AttachPair grafts a freshly integrated pair onto the combined
//     view: constituents of already-known store objects join their
//     existing global object (copy-on-write, so snapshot readers keep
//     the frozen pre-attach image), unknown objects become new global
//     objects, class memberships and the new member's classes are
//     unioned under frozen global names, and the pair's derived
//     constraints merge into the combined Derivation tagged with their
//     pair provenance.
//   - DetachMember reverses exactly one pair: the member's constituents,
//     attribute contributions and classes are stripped, its pair's
//     constraints are retracted by provenance (a constraint survives iff
//     a remaining pair also derived it), and affected merged objects are
//     reclassified against the remaining rules.
//
// Everything here mutates the combined Result in place and must run
// under the view engine's Rebind (write lock + constraint-cache lock);
// the solver-heavy pair integration itself runs before, outside any
// lock. No solver queries are issued during a graft or a detach — the
// incremental cost of a membership change is the new pair's own
// derivation, nothing else (pinned by the federation tests via
// logic.CacheStats / view.CacheStats.SolverQueries).

// PairContrib is the retained record of one pair integration inside a
// federation, with class names already remapped to the combined view's
// frozen vocabulary. The combined Derivation is a deterministic merge of
// the contributions in attach order, so retraction (detach) rebuilds it
// from the surviving contributions without consulting the solver.
type PairContrib struct {
	// Tag identifies the pair by its attached member's database name
	// (each non-seed member is attached by exactly one pair).
	Tag string
	// Base is the existing member the pair integrated against.
	Base string
	// Globals holds the pair's derived global constraints (fed names).
	Globals []GlobalConstraint
	// Conflicts and Notes are the pair derivation's findings.
	Conflicts []Conflict
	Notes     []string
	// DerivedOnSim maps the pair's rule names to their §3 derived
	// constraints (namespaced "Tag/rule" in the merged Derivation).
	DerivedOnSim map[string][]expr.Node
	// ConformedCons renders the pair's conformed constraints (§4), for
	// the federated report.
	ConformedCons []string
	// Consts and Types are the pair's conformed constants and attribute
	// typing, re-merged (first pair wins on collisions) when membership
	// changes.
	Consts map[string]object.Value
	Types  map[string]object.Type

	// simRules are the fed-side rule clones this pair registered in the
	// combined Spec (removed verbatim on detach).
	simRules []*SimRule
	// newClasses are class names this graft registered in the combined
	// view (the attached member's classes plus base classes it first
	// populated); removed on detach when their extents empty.
	newClasses []string
	// virtualNames are intersection-subclass and approximate-superclass
	// names this pair contributed.
	virtualNames []string
	// addedAttrs records, per combined object ID, the attribute names
	// this graft added (absent before). Detach removes them and
	// re-derives any that remaining constituents still carry.
	addedAttrs map[int][]string
	// addedParts records base-side constituents this graft introduced
	// for objects the base store held but the combined view had not yet
	// seen through this pair's base.
	addedParts map[int][]object.Ref
	// confRefs lists the constituent references this graft registered in
	// the combined Conformed's deref table (so rule conditions that
	// navigate references resolve the member's objects); removed on
	// detach.
	confRefs []object.Ref
	// newConsts marks whether the pair added constant names (forces
	// whole-view republication: any plan could reference them).
	newConsts bool
}

// FedState is the integration-state half of a federation: the combined
// Result evolved in place across membership changes, the per-pair
// contributions, and the shared reasoning memo. The serving half (store
// registry, query engine) lives in the top-level interopdb.Federation;
// FedState's mutating methods must be called under view.Engine.Rebind.
type FedState struct {
	// Res is the combined integration result. It starts as the first
	// pair's result verbatim (so a two-member federation is
	// byte-identical to Integrate) and is evolved in place from the
	// third member on.
	Res *Result
	// SeedName is the seed member's database name. The seed can never
	// detach (it anchors the combined state), whichever header
	// orientation the founding integration spec used.
	SeedName string
	// Opts are the pipeline options every pair integration runs under.
	Opts Options
	// Memo is the shared verdict cache (see logic.Memo).
	Memo *logic.Memo
	// Contribs are the per-pair contributions in attach order;
	// Contribs[0] is the founding pair.
	Contribs []*PairContrib
}

// NewFedState wraps the founding pair's integration result. res must be
// a fresh pairwise Result (the federation owns it from here on);
// seedName names the member attached first.
func NewFedState(res *Result, seedName string, opts Options, memo *logic.Memo) *FedState {
	return &FedState{Res: res, SeedName: seedName, Opts: opts, Memo: memo}
}

// ensureFed converts the combined state to federated resolution: member
// slots for the founding pair, frozen global names for every conformed
// class, and the founding pair's contribution record. Idempotent; a
// two-member federation that never attaches a third member never enters
// fed mode, keeping its Result byte-identical to the pairwise pipeline.
func (f *FedState) ensureFed() {
	c := f.Res.Conformed
	if c.Fed != nil {
		return
	}
	v := f.Res.View
	fed := &FedInfo{
		Names:   []string{c.Spec.Local.Schema.Name, c.Spec.Remote.Schema.Name},
		Schemas: []*schema.Database{c.LocalSchema, c.RemoteSchema},
		Specs:   []*tm.DatabaseSpec{c.Spec.Local, c.Spec.Remote},
		Active:  []bool{true, true},
	}
	names := map[Side]map[string]string{}
	for _, side := range []Side{LocalSide, RemoteSide} {
		m := map[string]string{}
		for _, cls := range c.SchemaOf(side).Classes() {
			m[cls.Name] = v.GlobalName(side, cls.Name)
		}
		names[side] = m
	}
	c.Fed = fed
	v.fedNames = names

	// The founding pair's contribution: its derivation outputs verbatim
	// (class names are already the combined names). The tag is the
	// founding pair's NON-seed member, whichever header slot it used —
	// tags identify detachable members, and the seed never detaches.
	tag, base := c.Spec.Remote.Schema.Name, c.Spec.Local.Schema.Name
	if tag == f.SeedName {
		tag, base = base, tag
	}
	contrib := &PairContrib{
		Tag:          tag,
		Base:         base,
		Globals:      append([]GlobalConstraint{}, f.Res.Derivation.Global...),
		Conflicts:    append([]Conflict{}, f.Res.Derivation.Conflicts...),
		Notes:        append([]string{}, f.Res.Derivation.Notes...),
		DerivedOnSim: f.Res.Derivation.DerivedOnSim,
		Consts:       c.Consts,
		Types:        c.Types,
		simRules:     append([]*SimRule{}, c.Spec.SimRules...),
	}
	for _, con := range c.Cons {
		contrib.ConformedCons = append(contrib.ConformedCons, con.String())
	}
	for _, vs := range v.VirtualSubclasses {
		contrib.virtualNames = append(contrib.virtualNames, vs.Name)
	}
	for _, as := range v.ApproxSupers {
		contrib.virtualNames = append(contrib.virtualNames, as.Name)
	}
	f.Contribs = append(f.Contribs, contrib)
}

// AttachPair grafts a pair integration (pairRes, integrating newMember
// against existing member base) onto the combined state. It returns the
// global classes whose serving state changed — new classes, classes of
// touched objects, classes whose constraint set changed — so the engine
// republishes only those; every other class keeps its snapshot, indexes
// and cached plans. Must run under view.Engine.Rebind.
func (f *FedState) AttachPair(pairRes *Result, newMember, base string) (changed []string, err error) {
	f.ensureFed()
	c := f.Res.Conformed
	v := f.Res.View
	fed := c.Fed
	pc := pairRes.Conformed

	baseSide, ok := fed.SideOf(base)
	if !ok {
		return nil, fmt.Errorf("attach %s: base member %s is not part of the federation", newMember, base)
	}
	if _, dup := fed.SideOf(newMember); dup {
		return nil, fmt.Errorf("attach %s: member already attached", newMember)
	}
	if len(pc.Spec.DescRules) > 0 {
		// Descriptivity conformation objectifies values into virtual
		// constituents whose synthetic references are pair-scoped; they
		// cannot be grafted onto an existing combined view soundly.
		return nil, fmt.Errorf("attach %s: integration specs with descriptivity rules are only supported for the founding pair", newMember)
	}

	var pairNewSide Side
	switch newMember {
	case pc.Spec.Local.Schema.Name:
		pairNewSide = LocalSide
	case pc.Spec.Remote.Schema.Name:
		pairNewSide = RemoteSide
	default:
		return nil, fmt.Errorf("attach %s: pair result does not involve the member", newMember)
	}
	pairBaseSide := pairNewSide.Other()
	if pc.Spec.DB(pairBaseSide).Schema.Name != base {
		return nil, fmt.Errorf("attach %s: pair result pairs it with %s, not base %s",
			newMember, pc.Spec.DB(pairBaseSide).Schema.Name, base)
	}

	newSide := Side(len(fed.Names))
	fedSideOf := func(ps Side) Side {
		if ps == pairNewSide {
			return newSide
		}
		return baseSide
	}

	contrib := &PairContrib{
		Tag:          newMember,
		Base:         base,
		DerivedOnSim: pairRes.Derivation.DerivedOnSim,
		Consts:       pc.Consts,
		Types:        pc.Types,
		addedAttrs:   map[int][]string{},
		addedParts:   map[int][]object.Ref{},
	}
	for _, con := range pc.Cons {
		contrib.ConformedCons = append(contrib.ConformedCons, con.String())
	}

	// --- Class-name mapping: pair-global names → frozen fed names -----
	taken := map[string]bool{}
	for _, n := range v.ClassNames {
		taken[n] = true
	}
	rename := map[string]string{}
	for _, cls := range pc.SchemaOf(pairBaseSide).Classes() {
		fedN, ok := v.fedNames[baseSide][cls.Name]
		if !ok {
			fedN = v.GlobalName(baseSide, cls.Name)
			v.fedNames[baseSide][cls.Name] = fedN
		}
		rename[pairRes.View.GlobalName(pairBaseSide, cls.Name)] = fedN
	}
	newNames := map[string]string{}
	for _, cls := range pc.SchemaOf(pairNewSide).Classes() {
		pgn := pairRes.View.GlobalName(pairNewSide, cls.Name)
		cand := pgn
		if taken[cand] {
			cand = newMember + "." + cls.Name
		}
		if taken[cand] {
			return nil, fmt.Errorf("attach %s: cannot assign a global name for class %s", newMember, cls.Name)
		}
		rename[pgn] = cand
		newNames[cls.Name] = cand
		taken[cand] = true
	}
	// Name assignment validated: only now extend the membership tables
	// (an error above must leave the federation exactly as it was).
	fed.Names = append(fed.Names, newMember)
	fed.Schemas = append(fed.Schemas, pc.SchemaOf(pairNewSide))
	fed.Specs = append(fed.Specs, pc.Spec.DB(pairNewSide))
	fed.Active = append(fed.Active, true)
	v.fedNames[newSide] = newNames
	for _, vs := range pairRes.View.VirtualSubclasses {
		name := rename[vs.LocalClass] + "_" + strings.ReplaceAll(rename[vs.RemoteClass], ".", "_")
		if taken[name] {
			name = newMember + "." + name
		}
		rename[vs.Name] = name
		taken[name] = true
	}
	for _, as := range pairRes.View.ApproxSupers {
		name := as.Name
		if taken[name] {
			name = newMember + "." + name
		}
		rename[as.Name] = name
		taken[name] = true
	}
	mapName := func(n string) string {
		if fn, ok := rename[n]; ok {
			return fn
		}
		return n
	}

	// --- Object graft -------------------------------------------------
	pairToFed := map[int]*GObj{}
	cloned := map[int]*GObj{}
	fresh := map[int]bool{}
	var touched []*GObj
	cloneCObj := func(m *CObj, side Side) *CObj {
		attrs := make(map[string]object.Value, len(m.Attrs))
		for k, val := range m.Attrs {
			attrs[k] = val
		}
		cm := &CObj{Src: m.Src, Side: side, Class: m.Class, Attrs: attrs, Virtual: m.Virtual}
		// Register the clone in the combined Conformed's deref table, so
		// rule conditions that navigate references (simRuleHolds during
		// reclassification) resolve the member's objects. The CLONE is
		// registered — not the pair's original — because ApplyUpdate fans
		// new values to the clones in GObj.Parts, and the conformed view
		// must see them.
		if !cm.Virtual {
			if _, exists := c.byRef[cm.Src]; !exists {
				c.byRef[cm.Src] = cm
				contrib.confRefs = append(contrib.confRefs, cm.Src)
			}
		}
		return cm
	}
	for _, pg := range pairRes.View.Objects {
		var host *GObj
		for _, ps := range []Side{LocalSide, RemoteSide} {
			for _, m := range pg.Parts[ps] {
				if m.Virtual {
					continue
				}
				if g, ok := v.byRef[m.Src]; ok && (host == nil || g.ID < host.ID) {
					host = g
				}
			}
		}
		if host == nil {
			g := &GObj{
				ID:      v.nextObjectID(),
				Parts:   map[Side][]*CObj{},
				Attrs:   make(map[string]object.Value, len(pg.Attrs)),
				Classes: map[string]bool{},
			}
			for k, val := range pg.Attrs {
				g.Attrs[k] = val
			}
			for _, ps := range []Side{LocalSide, RemoteSide} {
				fs := fedSideOf(ps)
				for _, m := range pg.Parts[ps] {
					cm := cloneCObj(m, fs)
					g.Parts[fs] = append(g.Parts[fs], cm)
					if !cm.Virtual {
						v.byRef[cm.Src] = g
					}
					if fs == baseSide {
						// A base store object the combined view had not
						// seen before this pair surfaced it; recorded so
						// detach returns the view to its pre-attach
						// object set exactly.
						contrib.addedParts[g.ID] = append(contrib.addedParts[g.ID], m.Src)
					}
				}
			}
			v.Objects = append(v.Objects, g)
			v.byRef[g.Identity()] = g
			pairToFed[pg.ID] = g
			fresh[g.ID] = true
			continue
		}
		g, isCloned := cloned[host.ID]
		if !isCloned {
			g = v.DetachForUpdate(host)
			cloned[host.ID] = g
			touched = append(touched, g)
		}
		pairToFed[pg.ID] = g
		for _, m := range pg.Parts[pairNewSide] {
			cm := cloneCObj(m, newSide)
			g.Parts[newSide] = append(g.Parts[newSide], cm)
			if !cm.Virtual {
				v.byRef[cm.Src] = g
			}
		}
		for _, m := range pg.Parts[pairBaseSide] {
			if m.Virtual {
				continue
			}
			if _, known := v.byRef[m.Src]; known {
				continue
			}
			cm := cloneCObj(m, baseSide)
			g.Parts[baseSide] = append(g.Parts[baseSide], cm)
			v.byRef[m.Src] = g
			contrib.addedParts[g.ID] = append(contrib.addedParts[g.ID], m.Src)
		}
		attrNames := make([]string, 0, len(pg.Attrs))
		for a := range pg.Attrs {
			attrNames = append(attrNames, a)
		}
		sort.Strings(attrNames)
		for _, a := range attrNames {
			if _, have := g.Attrs[a]; !have {
				g.Attrs[a] = pg.Attrs[a]
				contrib.addedAttrs[g.ID] = append(contrib.addedAttrs[g.ID], a)
			}
		}
	}

	// --- Class membership union --------------------------------------
	for _, pcn := range pairRes.View.ClassNames {
		fedN := mapName(pcn)
		org, hasOrg := pairRes.View.Origin[pcn]
		if _, exists := v.Origin[fedN]; !exists && hasOrg {
			v.Origin[fedN] = struct {
				Side  Side
				Class string
			}{fedSideOf(org.Side), org.Class}
			if v.classExt[fedN] == nil {
				v.ClassNames = append(v.ClassNames, fedN)
				v.classExt[fedN] = []*GObj{}
			}
			contrib.newClasses = append(contrib.newClasses, fedN)
		}
		for _, pm := range pairRes.View.Extent(pcn) {
			g := pairToFed[pm.ID]
			if g == nil || g.Classes[fedN] {
				continue
			}
			g.Classes[fedN] = true
			if _, seen := v.classExt[fedN]; !seen && v.Origin[fedN].Class == "" {
				// Virtual class not yet registered.
				v.ClassNames = append(v.ClassNames, fedN)
			}
			v.classExt[fedN] = append(v.classExt[fedN], g)
		}
	}

	// --- Virtual structures ------------------------------------------
	mapIDs := func(ids []int) []int {
		out := make([]int, 0, len(ids))
		for _, id := range ids {
			if g := pairToFed[id]; g != nil {
				out = append(out, g.ID)
			}
		}
		sort.Ints(out)
		return out
	}
	for _, vs := range pairRes.View.VirtualSubclasses {
		nvs := VirtualSubclass{
			Name:        rename[vs.Name],
			LocalClass:  mapName(vs.LocalClass),
			RemoteClass: mapName(vs.RemoteClass),
			MemberIDs:   mapIDs(vs.MemberIDs),
		}
		v.VirtualSubclasses = append(v.VirtualSubclasses, nvs)
		contrib.virtualNames = append(contrib.virtualNames, nvs.Name)
	}
	approxStart := len(v.ApproxSupers)
	for _, as := range pairRes.View.ApproxSupers {
		nas := ApproxSuper{
			Name:        rename[as.Name],
			LocalClass:  as.LocalClass,
			RemoteClass: as.RemoteClass,
			MemberIDs:   mapIDs(as.MemberIDs),
		}
		v.ApproxSupers = append(v.ApproxSupers, nas)
		contrib.virtualNames = append(contrib.virtualNames, nas.Name)
	}

	// --- Similarity rules (fed-side clones, conds conformed in the
	// pair's own context — the combined conformer never runs for them) --
	if v.simCondCache == nil {
		v.simCondCache = map[*SimRule][]expr.Node{}
	}
	for _, r := range pc.Spec.SimRules {
		clone := *r
		clone.SrcSide = fedSideOf(r.SrcSide)
		clone.tgtSide = fedSideOf(r.TargetSide())
		clone.hasTgtSide = true
		if clone.Virtual != "" {
			clone.Virtual = mapName(r.Virtual)
		}
		v.simCondCache[&clone] = pairRes.View.simConds(r)
		c.Spec.SimRules = append(c.Spec.SimRules, &clone)
		contrib.simRules = append(contrib.simRules, &clone)
	}

	// ext(Cv) ⊇ ext(C) holds on the COMBINED view: target-class members
	// the pair integration could not see (sourced from other members,
	// e.g. pair-1 Sim imports) join the approximate superclass too.
	// Affected objects are cloned first — they are reachable from
	// published snapshots and gain a class membership here.
	for _, r := range contrib.simRules {
		if !r.Approximate() {
			continue
		}
		tgt := v.GlobalName(r.TargetSide(), r.Target)
		var extra []int
		for _, g := range append([]*GObj{}, v.classExt[tgt]...) {
			if g.Classes[r.Virtual] {
				continue
			}
			gg := g
			if !fresh[g.ID] {
				if cl, ok := cloned[g.ID]; ok {
					gg = cl
				} else {
					gg = v.DetachForUpdate(g)
					cloned[g.ID] = gg
					touched = append(touched, gg)
				}
			}
			gg.Classes[r.Virtual] = true
			v.classExt[r.Virtual] = append(v.classExt[r.Virtual], gg)
			extra = append(extra, gg.ID)
		}
		if len(extra) == 0 {
			continue
		}
		for i := approxStart; i < len(v.ApproxSupers); i++ {
			if v.ApproxSupers[i].Name == r.Virtual {
				v.ApproxSupers[i].MemberIDs = dedupInts(append(v.ApproxSupers[i].MemberIDs, extra...))
				break
			}
		}
	}

	// --- Constants and typing (copy-on-write: published snapshots keep
	// the map they captured) ------------------------------------------
	newConsts := make(map[string]object.Value, len(c.Consts)+len(pc.Consts))
	for k, val := range c.Consts {
		newConsts[k] = val
	}
	for k, val := range pc.Consts {
		if _, have := newConsts[k]; !have {
			newConsts[k] = val
			contrib.newConsts = true
		}
	}
	c.Consts = newConsts

	// --- Constraint contribution and combined derivation rebuild ------
	for _, gc := range pairRes.Derivation.Global {
		gcc := gc
		gcc.Classes = make([]string, len(gc.Classes))
		for i, cls := range gc.Classes {
			gcc.Classes[i] = mapName(cls)
		}
		contrib.Globals = append(contrib.Globals, gcc)
	}
	contrib.Conflicts = append([]Conflict{}, pairRes.Derivation.Conflicts...)
	contrib.Notes = append([]string{}, pairRes.Derivation.Notes...)
	f.Contribs = append(f.Contribs, contrib)
	f.rebuildDerivation()
	v.recomputeISA()

	// --- Affected classes --------------------------------------------
	affected := map[string]bool{}
	if contrib.newConsts {
		// A new constant name can change the meaning of any predicate.
		for _, n := range v.ClassNames {
			affected[n] = true
		}
	}
	for _, n := range contrib.newClasses {
		affected[n] = true
	}
	for _, n := range contrib.virtualNames {
		affected[n] = true
	}
	for _, g := range touched {
		for cls := range g.Classes {
			affected[cls] = true
		}
	}
	for _, gc := range contrib.Globals {
		for _, cls := range gc.Classes {
			affected[cls] = true
		}
	}
	return sortedNames(affected), nil
}

// DetachMember reverses the pair that attached the member: constituents
// and attribute contributions are stripped (copy-on-write), objects left
// without constituents are removed, affected objects are reclassified
// against the remaining rules, the member's classes are deregistered,
// and every constraint whose provenance empties is retracted. It returns
// the classes whose serving state changed and the classes removed.
// Must run under view.Engine.Rebind.
func (f *FedState) DetachMember(name string) (changed, removed []string, err error) {
	c := f.Res.Conformed
	v := f.Res.View
	if c.Fed == nil {
		return nil, nil, fmt.Errorf("detach %s: federation has no incremental members", name)
	}
	if name == f.SeedName {
		return nil, nil, fmt.Errorf("detach %s: member is the federation seed and cannot be detached", name)
	}
	side, ok := c.Fed.SideOf(name)
	if !ok {
		return nil, nil, fmt.Errorf("detach %s: not an attached member", name)
	}
	idx := -1
	for i, pc := range f.Contribs {
		if pc.Tag == name {
			idx = i
		}
		if pc.Base == name {
			return nil, nil, fmt.Errorf("detach %s: member is the base of the %s pair — detach %s first", name, pc.Tag, pc.Tag)
		}
	}
	if idx < 0 {
		return nil, nil, fmt.Errorf("detach %s: member is the federation seed and cannot be detached", name)
	}
	contrib := f.Contribs[idx]

	// --- Remove the pair's rules and virtual structures ---------------
	isPairRule := map[*SimRule]bool{}
	for _, r := range contrib.simRules {
		isPairRule[r] = true
		delete(v.simCondCache, r)
	}
	kept := c.Spec.SimRules[:0]
	for _, r := range c.Spec.SimRules {
		if !isPairRule[r] {
			kept = append(kept, r)
		}
	}
	c.Spec.SimRules = kept
	isPairVirtual := map[string]bool{}
	for _, n := range contrib.virtualNames {
		isPairVirtual[n] = true
	}
	keptVS := v.VirtualSubclasses[:0]
	for _, vs := range v.VirtualSubclasses {
		if !isPairVirtual[vs.Name] {
			keptVS = append(keptVS, vs)
		}
	}
	v.VirtualSubclasses = keptVS
	keptAS := v.ApproxSupers[:0]
	for _, as := range v.ApproxSupers {
		if !isPairVirtual[as.Name] {
			keptAS = append(keptAS, as)
		}
	}
	v.ApproxSupers = keptAS

	// --- Strip objects (copy-on-write) --------------------------------
	doomedClass := map[string]bool{}
	for _, n := range contrib.newClasses {
		doomedClass[n] = true
	}
	for _, n := range contrib.virtualNames {
		doomedClass[n] = true
	}
	// Classes whose origin member departs (covers the founding pair's
	// member, whose contribution predates per-graft bookkeeping).
	for cls, org := range v.Origin {
		if org.Side == side {
			doomedClass[cls] = true
		}
	}
	affected := map[string]bool{}
	var touched []*GObj
	for _, g := range v.Objects {
		hit := len(g.Parts[side]) > 0 ||
			len(contrib.addedParts[g.ID]) > 0 || len(contrib.addedAttrs[g.ID]) > 0
		if !hit {
			for cls := range g.Classes {
				if doomedClass[cls] {
					hit = true
					break
				}
			}
		}
		if hit {
			touched = append(touched, g)
		}
	}
	for _, orig := range touched {
		g := v.DetachForUpdate(orig)
		for cls := range g.Classes {
			affected[cls] = true
		}
		for _, m := range g.Parts[side] {
			if cur, ok := v.byRef[m.Src]; ok && cur == g {
				delete(v.byRef, m.Src)
			}
		}
		delete(g.Parts, side)
		for _, src := range contrib.addedParts[g.ID] {
			for s, ms := range g.Parts {
				for i, m := range ms {
					if m.Src == src {
						g.Parts[s] = append(ms[:i], ms[i+1:]...)
						if cur, ok := v.byRef[src]; ok && cur == g {
							delete(v.byRef, src)
						}
						break
					}
				}
			}
		}
		for _, a := range contrib.addedAttrs[g.ID] {
			delete(g.Attrs, a)
			// Re-derive from the remaining constituents (deterministic:
			// ascending side, declaration order), in case another member
			// also carries the attribute.
			for _, s := range v.sides() {
				found := false
				for _, m := range g.Parts[s] {
					if val, ok := m.Attrs[a]; ok && val.Kind() != object.KindNull {
						g.Attrs[a] = val
						found = true
						break
					}
				}
				if found {
					break
				}
			}
		}
		parts := 0
		for _, ms := range g.Parts {
			parts += len(ms)
		}
		if parts == 0 {
			if _, err := v.ApplyDelete(g); err != nil {
				return nil, nil, fmt.Errorf("detach %s: removing g%d: %w", name, g.ID, err)
			}
			continue
		}
		if _, err := v.reclassify(g); err != nil {
			return nil, nil, fmt.Errorf("detach %s: reclassifying g%d: %w", name, g.ID, err)
		}
		for cls := range g.Classes {
			affected[cls] = true
		}
	}

	// --- Deregister the pair's classes (only once empty: a class kept
	// alive by surviving members stays, reclassified above) ------------
	removedSet := map[string]bool{}
	for cls := range doomedClass {
		if len(v.classExt[cls]) > 0 {
			affected[cls] = true
			continue
		}
		if _, registered := v.classExt[cls]; !registered {
			// Never materialized in the combined view.
			delete(v.Origin, cls)
			continue
		}
		delete(v.classExt, cls)
		delete(v.Origin, cls)
		removedSet[cls] = true
	}
	if len(removedSet) > 0 {
		keptNames := v.ClassNames[:0]
		for _, n := range v.ClassNames {
			if !removedSet[n] {
				keptNames = append(keptNames, n)
			}
		}
		v.ClassNames = keptNames
	}

	// --- Membership retirement ---------------------------------------
	c.Fed.Active[side] = false
	for _, ref := range contrib.confRefs {
		delete(c.byRef, ref)
	}
	f.Contribs = append(f.Contribs[:idx], f.Contribs[idx+1:]...)

	// Constants: re-merge from the surviving pairs in attach order.
	consts := map[string]object.Value{}
	for _, pc := range f.Contribs {
		for k, val := range pc.Consts {
			if _, have := consts[k]; !have {
				consts[k] = val
			}
		}
	}
	c.Consts = consts
	if contrib.newConsts {
		for _, n := range v.ClassNames {
			affected[n] = true
		}
	}

	f.rebuildDerivation()
	v.recomputeISA()

	for _, gc := range contrib.Globals {
		for _, cls := range gc.Classes {
			if !removedSet[cls] {
				affected[cls] = true
			}
		}
	}
	for cls := range removedSet {
		delete(affected, cls)
	}
	return sortedNames(affected), sortedNames(removedSet), nil
}

// rebuildDerivation deterministically merges the surviving pair
// contributions into a fresh combined Derivation: contributions in
// attach order, duplicate constraints collapsed with their provenance
// unioned. No solver queries are issued — the expensive reasoning stays
// with the pair derivations that produced the contributions.
func (f *FedState) rebuildDerivation() {
	types := map[string]object.Type{}
	for _, pc := range f.Contribs {
		for k, t := range pc.Types {
			if _, have := types[k]; !have {
				types[k] = t
			}
		}
	}
	d := &Derivation{
		View:         f.Res.View,
		Checker:      &logic.Checker{Types: types, NoMemo: f.Opts.NoMemo, Memo: f.Memo},
		DerivedOnSim: map[string][]expr.Node{},
		unsafe:       map[ConKey]bool{},
		opts:         f.Opts,
	}
	for _, pc := range f.Contribs {
		for _, gc := range pc.Globals {
			addGlobalProvenance(d, gc, pc.Tag)
		}
		d.Conflicts = append(d.Conflicts, pc.Conflicts...)
		d.Notes = append(d.Notes, pc.Notes...)
		names := make([]string, 0, len(pc.DerivedOnSim))
		for n := range pc.DerivedOnSim {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			d.DerivedOnSim[pc.Tag+"/"+n] = pc.DerivedOnSim[n]
		}
	}
	f.Res.Derivation = d
}

// addGlobalProvenance appends a constraint to the combined derivation,
// collapsing duplicates (same classes, scope, derivation and formula)
// into one entry whose provenance lists every contributing pair.
func addGlobalProvenance(d *Derivation, gc GlobalConstraint, tag string) {
	for i := range d.Global {
		have := &d.Global[i]
		if have.Derivation == gc.Derivation && have.Scope == gc.Scope &&
			expr.Equal(have.Expr, gc.Expr) && sameClasses(have.Classes, gc.Classes) {
			for _, t := range have.Provenance {
				if t == tag {
					return
				}
			}
			have.Provenance = append(have.Provenance, tag)
			return
		}
	}
	cp := gc
	cp.Provenance = []string{tag}
	d.Global = append(d.Global, cp)
}

// recomputeISA re-derives the subclass lattice from the current
// extents, mirroring buildLattice's construction exactly: extension-
// containment edges over every class except the intersection
// subclasses, then each intersection subclass's two parent edges in
// registration order. Deterministic, so a detach that restores the
// founding pair's extents restores its lattice byte for byte.
func (v *GlobalView) recomputeISA() {
	vsName := map[string]bool{}
	for _, vs := range v.VirtualSubclasses {
		vsName[vs.Name] = true
	}
	var names []string
	for _, n := range v.ClassNames {
		if !vsName[n] {
			names = append(names, n)
		}
	}
	exts := map[string]map[int]bool{}
	for _, name := range names {
		m := map[int]bool{}
		for _, g := range v.classExt[name] {
			m[g.ID] = true
		}
		exts[name] = m
	}
	subset := func(a, b map[int]bool) bool {
		if len(a) == 0 || len(a) > len(b) {
			return false
		}
		for id := range a {
			if !b[id] {
				return false
			}
		}
		return true
	}
	var edges []ISAEdge
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			if subset(exts[a], exts[b]) {
				edges = append(edges, ISAEdge{Sub: a, Super: b})
			}
		}
	}
	for _, vs := range v.VirtualSubclasses {
		edges = append(edges,
			ISAEdge{Sub: vs.Name, Super: vs.RemoteClass},
			ISAEdge{Sub: vs.Name, Super: vs.LocalClass},
		)
	}
	v.ISA = edges
}

// Report renders the federated account of the combined state: members,
// classes, lattice, constraints with pair provenance, conflicts and
// notes. The two-member federation keeps the pairwise Result.Report
// instead (the top-level Federation chooses).
func (f *FedState) Report() string {
	v := f.Res.View
	fed := f.Res.Conformed.Fed
	var b strings.Builder
	var members []string
	if fed != nil {
		for i, n := range fed.Names {
			if fed.Active[i] {
				members = append(members, n)
			}
		}
	} else {
		members = []string{f.Res.Spec.Local.Schema.Name, f.Res.Spec.Remote.Schema.Name}
	}
	fmt.Fprintf(&b, "=== Federation: %s ===\n", strings.Join(members, " + "))

	b.WriteString("\n-- Members --\n")
	for i, m := range members {
		if i == 0 {
			fmt.Fprintf(&b, "  %s (seed)\n", m)
			continue
		}
		for _, pc := range f.Contribs {
			if pc.Tag == m {
				fmt.Fprintf(&b, "  %s via %s+%s\n", m, pc.Base, pc.Tag)
			}
		}
	}

	b.WriteString("\n-- Global classes and lattice (§2.3) --\n")
	names := append([]string{}, v.ClassNames...)
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %s: %d objects\n", n, len(v.Extent(n)))
	}
	for _, e := range v.ISA {
		fmt.Fprintf(&b, "  %s isa %s\n", e.Sub, e.Super)
	}
	for _, vs := range v.VirtualSubclasses {
		fmt.Fprintf(&b, "  virtual subclass %s = %s ∩ %s (%d objects)\n",
			vs.Name, vs.LocalClass, vs.RemoteClass, len(vs.MemberIDs))
	}
	for _, as := range v.ApproxSupers {
		fmt.Fprintf(&b, "  virtual superclass %s ⊇ %s ∪ %s (%d objects)\n",
			as.Name, as.LocalClass, as.RemoteClass, len(as.MemberIDs))
	}

	b.WriteString("\n-- Global constraints (§5.2) --\n")
	for _, gc := range f.Res.Derivation.Global {
		if len(gc.Provenance) > 0 {
			fmt.Fprintf(&b, "  %s  (via %s)\n", gc.String(), strings.Join(gc.Provenance, ", "))
		} else {
			fmt.Fprintf(&b, "  %s\n", gc.String())
		}
	}

	if len(f.Res.Derivation.Conflicts) > 0 {
		b.WriteString("\n-- Conflicts --\n")
		for _, cf := range f.Res.Derivation.Conflicts {
			fmt.Fprintf(&b, "  %s\n", cf)
		}
	}
	if len(f.Res.Derivation.Notes) > 0 {
		b.WriteString("\n-- Notes --\n")
		for _, n := range f.Res.Derivation.Notes {
			fmt.Fprintf(&b, "  %s\n", n)
		}
	}
	return b.String()
}

// TypesCompatible reports whether two attribute typings agree on every
// common path — the precondition for sharing a logic.Memo between the
// Checkers that use them.
func TypesCompatible(a, b map[string]object.Type) bool {
	for k, ta := range a {
		if tb, ok := b[k]; ok && ta.String() != tb.String() {
			return false
		}
	}
	return true
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
