package core

import (
	"fmt"

	"interopdb/internal/expr"
	"interopdb/internal/object"
)

// This file grows the integrated view in place for the full mutation
// lifecycle: ApplyInsert (merge.go) gained siblings ApplyUpdate and
// ApplyDelete, used by the view engine after a component-store commit so
// queries and validation reflect shipped mutations without
// re-integration. Like ApplyInsert, they work in the conformed (global)
// domain and do not re-run entity resolution or PropEq value conversion;
// what they DO re-run is Sim-rule classification, so an update that
// moves an object across a derived-class membership predicate (e.g. a
// proceedings whose ref? flips to true joining RefereedPubl) lands in
// the right extents. None of the Apply* methods are safe for concurrent
// use — the view engine serialises them behind its write lock.

// ByID resolves a global object by its integrated-view ID.
func (v *GlobalView) ByID(id int) (*GObj, bool) {
	o, ok := v.byRef[object.Ref{DB: "global", OID: object.OID(id)}]
	return o, ok
}

// ensureNextID initialises the ID counter past the current maximum.
// Deletes call it before splicing an object out, so the deleted ID is
// counted and stays burned.
func (v *GlobalView) ensureNextID() {
	if v.nextID != 0 {
		return
	}
	v.nextID = 1
	for _, g := range v.Objects {
		if g.ID >= v.nextID {
			v.nextID = g.ID + 1
		}
	}
}

// nextObjectID allocates a fresh global ID. IDs are never reused: a
// deleted object's ID stays burned so stale references cannot alias a
// later insert.
func (v *GlobalView) nextObjectID() int {
	v.ensureNextID()
	id := v.nextID
	v.nextID++
	return id
}

// ApplyUpdate assigns the given attributes on a global object (partial
// update; attributes not mentioned are unchanged) and reclassifies it
// across the Sim-derived class memberships. It returns the previous
// values of the touched attributes (attrs absent before the update map to
// nil) and the names of every class whose extent gained or lost the
// object, so callers can maintain or invalidate per-class indexes.
//
// The new values are written to the global object and to all of its
// constituents: attrs must be in the conformed (global) domain, the same
// domain ApplyInsert stores and the view engine evaluates.
func (v *GlobalView) ApplyUpdate(g *GObj, attrs map[string]object.Value) (old map[string]object.Value, changed []string, err error) {
	if _, ok := v.byRef[g.Identity()]; !ok {
		return nil, nil, fmt.Errorf("object g%d is not part of the integrated view", g.ID)
	}
	old = make(map[string]object.Value, len(attrs))
	for k, val := range attrs {
		old[k] = g.Attrs[k] // nil when previously absent
		g.Attrs[k] = val
		for _, ms := range g.Parts {
			for _, m := range ms {
				if m.Attrs != nil {
					m.Attrs[k] = val
				}
			}
		}
	}
	changed, err = v.reclassify(g)
	return old, changed, err
}

// ApplyDelete removes a global object from the integrated view: every
// class extent it belongs to, the object list, and the reference table
// (both its global identity and its constituents' source refs). It
// returns the names of the classes whose extents shrank. The removed
// object itself is left untouched — its Classes map still names the
// extents it belonged to — so readers of a frozen snapshot that still
// holds it can keep serving its pre-delete state.
func (v *GlobalView) ApplyDelete(g *GObj) ([]string, error) {
	if _, ok := v.byRef[g.Identity()]; !ok {
		return nil, fmt.Errorf("object g%d is not part of the integrated view", g.ID)
	}
	v.ensureNextID() // count the doomed ID before it vanishes: never reused
	var classes []string
	for cls := range g.Classes {
		v.spliceFromExtent(g, cls)
		classes = append(classes, cls)
	}
	for i, o := range v.Objects {
		if o == g {
			v.Objects = append(v.Objects[:i], v.Objects[i+1:]...)
			break
		}
	}
	delete(v.byRef, g.Identity())
	for _, ms := range g.Parts {
		for _, m := range ms {
			if cur, ok := v.byRef[m.Src]; ok && cur == g {
				delete(v.byRef, m.Src)
			}
		}
	}
	v.pruneMemberID(g.ID)
	return classes, nil
}

// removeFromClass splices the object out of one class extent and drops
// the membership from the object (reclassification's path: the object is
// a fresh detached clone there, so mutating it is safe).
func (v *GlobalView) removeFromClass(g *GObj, class string) {
	delete(g.Classes, class)
	v.spliceFromExtent(g, class)
}

// spliceFromExtent removes the object from one class extent without
// touching the object itself.
func (v *GlobalView) spliceFromExtent(g *GObj, class string) {
	ext := v.classExt[class]
	for i, o := range ext {
		if o == g {
			v.classExt[class] = append(ext[:i], ext[i+1:]...)
			return
		}
	}
}

// pruneMemberID drops a deleted object's ID from the derived-class
// member reports.
func (v *GlobalView) pruneMemberID(id int) {
	drop := func(ids []int) []int {
		for i, x := range ids {
			if x == id {
				return append(ids[:i], ids[i+1:]...)
			}
		}
		return ids
	}
	for i := range v.VirtualSubclasses {
		v.VirtualSubclasses[i].MemberIDs = drop(v.VirtualSubclasses[i].MemberIDs)
	}
	for i := range v.ApproxSupers {
		v.ApproxSupers[i].MemberIDs = drop(v.ApproxSupers[i].MemberIDs)
	}
}

// simConds returns the conformed intraobject conjuncts of a Sim rule,
// computed once per rule (conformation rewrites are pure functions of
// the spec, so the cache never invalidates).
func (v *GlobalView) simConds(r *SimRule) []expr.Node {
	if v.simCondCache == nil {
		v.simCondCache = map[*SimRule][]expr.Node{}
	}
	conds, ok := v.simCondCache[r]
	if !ok {
		conds = v.conformSimConds(r)
		v.simCondCache[r] = conds
	}
	return conds
}

// reclassify recomputes the object's predicate-dependent class
// memberships after an attribute update. Constituent-chain classes (the
// origin classes and their superclasses) are value-independent and kept;
// Sim-rule targets, approximate-similarity superclasses and virtual
// intersection subclasses are re-derived from the new attribute values.
// It returns the classes whose extents changed. Lattice edges (ISA) are
// integration-time artifacts and are not recomputed.
func (v *GlobalView) reclassify(g *GObj) ([]string, error) {
	c := v.Conformed

	// Value-independent memberships: the constituents' conformed class
	// chains (classifyConstituents's rule, per object), over every
	// member side of the view.
	desired := map[string]bool{}
	for _, side := range v.sides() {
		db := c.SchemaOf(side)
		for _, m := range g.Parts[side] {
			for _, cn := range db.Supers(m.Class) {
				desired[v.GlobalName(side, cn)] = true
			}
		}
	}

	// Sim-rule memberships, re-evaluated against the updated constituents.
	type approxPending struct{ rule *SimRule }
	var approx []approxPending
	for _, r := range c.Spec.SimRules {
		match, err := v.simRuleHolds(r, g)
		if err != nil {
			return nil, err
		}
		targetSide := r.TargetSide()
		if r.Approximate() {
			// ext(Cv) ⊇ ext(C) ∪ matching sources: membership via the
			// target class is settled below, after strict rules ran.
			if match {
				desired[r.Virtual] = true
			}
			approx = append(approx, approxPending{rule: r})
			continue
		}
		if match {
			for _, cn := range c.SchemaOf(targetSide).Supers(r.Target) {
				desired[v.GlobalName(targetSide, cn)] = true
			}
		}
	}
	for _, ap := range approx {
		r := ap.rule
		if desired[v.GlobalName(r.TargetSide(), r.Target)] {
			desired[r.Virtual] = true
		}
	}

	// Virtual intersection subclasses: membership in both parents.
	for i := range v.VirtualSubclasses {
		vs := &v.VirtualSubclasses[i]
		if desired[vs.LocalClass] && desired[vs.RemoteClass] {
			desired[vs.Name] = true
		}
	}

	// Diff against the current membership.
	var changed []string
	for cls := range g.Classes {
		if !desired[cls] {
			v.removeFromClass(g, cls)
			changed = append(changed, cls)
		}
	}
	for cls := range desired {
		if g.Classes[cls] {
			continue
		}
		changed = append(changed, cls)
		if org, ok := v.Origin[cls]; ok {
			v.addToClass(g, org.Side, org.Class)
		} else {
			v.addVirtualMember(g, cls)
		}
	}

	// Keep the derived-class member reports in step.
	syncMembers := func(ids []int, name string) []int {
		has := false
		for _, id := range ids {
			if id == g.ID {
				has = true
				break
			}
		}
		if g.Classes[name] && !has {
			return append(ids, g.ID)
		}
		if !g.Classes[name] && has {
			for i, id := range ids {
				if id == g.ID {
					return append(ids[:i], ids[i+1:]...)
				}
			}
		}
		return ids
	}
	for i := range v.VirtualSubclasses {
		v.VirtualSubclasses[i].MemberIDs = syncMembers(v.VirtualSubclasses[i].MemberIDs, v.VirtualSubclasses[i].Name)
	}
	for i := range v.ApproxSupers {
		v.ApproxSupers[i].MemberIDs = syncMembers(v.ApproxSupers[i].MemberIDs, v.ApproxSupers[i].Name)
	}
	return changed, nil
}

// simRuleHolds evaluates one Sim rule's conformed intraobject condition
// against the object's constituents on the rule's source side. The rule
// applies when any constituent whose class falls under the source class
// satisfies every conjunct (mirroring classifySim, which walks the
// source class's conformed extent).
func (v *GlobalView) simRuleHolds(r *SimRule, g *GObj) (bool, error) {
	c := v.Conformed
	db := c.SchemaOf(r.SrcSide)
	conds := v.simConds(r)
	for _, m := range g.Parts[r.SrcSide] {
		if !db.IsA(m.Class, r.SrcClass) {
			continue
		}
		env := &expr.Env{
			Vars:   map[string]expr.Object{r.SrcVar: m},
			Consts: c.Consts,
			Deref:  func(x object.Ref) (expr.Object, bool) { return c.Deref(x) },
		}
		match := true
		for _, cond := range conds {
			ok, err := env.EvalBool(cond)
			if err != nil {
				return false, fmt.Errorf("rule %s on g%d: %w", r.Raw.Name, g.ID, err)
			}
			if !ok {
				match = false
				break
			}
		}
		if match {
			return true, nil
		}
	}
	return false, nil
}
