package core

import (
	"strings"
	"testing"

	"interopdb/internal/fixture"
	"interopdb/internal/logic"
	"interopdb/internal/object"
	"interopdb/internal/store"
	"interopdb/internal/tm"
)

// A minimal three-member scenario whose third pair's similarity rule
// NAVIGATES A REFERENCE (G.maker.mname): reclassification after a
// mutation must be able to deref the grafted member's objects through
// the combined conformed world.
const (
	fedHubSrc = `
Database Hub

Class Thing
  attributes
    code : string
    name : string
end Thing
`
	fedSpokeASrc = `
Database SpokeA

Class Widget
  attributes
    code : string
    size : int
end Widget
`
	fedSpokeBSrc = `
Database SpokeB

Class Maker
  attributes
    mname : string
end Maker

Class Gadget
  attributes
    code : string
    maker : Maker
    grade : int
end Gadget
`
	fedHubSpokeA = `
integration Hub imports SpokeA

rule w1: Eq(T:Thing, W:Widget) <= T.code = W.code
`
	fedHubSpokeB = `
integration Hub imports SpokeB

rule g1: Eq(T:Thing, G:Gadget) <= T.code = G.code
rule g2: Sim(G:Gadget, Thing, Premium) <= G.maker.mname = 'Acme' and G.grade >= 5
`
)

// buildMiniFed integrates Hub+SpokeA and grafts SpokeB, returning the
// federation state and the SpokeB store.
func buildMiniFed(t *testing.T, seedName string, reverseFounding bool) (*FedState, *store.Store) {
	t.Helper()
	hub := tm.MustParseDatabase(fedHubSrc)
	spokeA := tm.MustParseDatabase(fedSpokeASrc)
	spokeB := tm.MustParseDatabase(fedSpokeBSrc)
	hubSt := store.New(hub.Schema, hub.Consts)
	aSt := store.New(spokeA.Schema, spokeA.Consts)
	bSt := store.New(spokeB.Schema, spokeB.Consts)
	hubSt.MustInsert("Thing", map[string]object.Value{"code": object.Str("a"), "name": object.Str("alpha")})
	aSt.MustInsert("Widget", map[string]object.Value{"code": object.Str("a"), "size": object.Int(1)})
	acme := bSt.MustInsert("Maker", map[string]object.Value{"mname": object.Str("Acme")})
	bSt.MustInsert("Gadget", map[string]object.Value{
		"code": object.Str("b"), "maker": object.Ref{DB: "SpokeB", OID: acme}, "grade": object.Int(3),
	})

	memo := logic.NewMemo()
	opts := Options{Memo: memo}
	is1 := tm.MustParseIntegration(fedHubSpokeA)
	local, remote, ls, rs := hub, spokeA, hubSt, aSt
	if reverseFounding {
		// Header "SpokeA imports Hub": the seed lands on the REMOTE side.
		is1 = tm.MustParseIntegration(strings.Replace(fedHubSpokeA,
			"integration Hub imports SpokeA", "integration SpokeA imports Hub", 1))
		local, remote, ls, rs = spokeA, hub, aSt, hubSt
	}
	res, err := IntegrateOptions(local, remote, is1, ls, rs, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFedState(res, seedName, opts, memo)

	pspec, err := Compile(hub, spokeB, tm.MustParseIntegration(fedHubSpokeB))
	if err != nil {
		t.Fatal(err)
	}
	pspec.Seed = 1
	conf, err := ConformOptions(pspec, hubSt, bSt, opts)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := Merge(conf)
	if err != nil {
		t.Fatal(err)
	}
	pairRes := &Result{Spec: pspec, Conformed: conf, View: pv, Derivation: DeriveOptions(pv, opts)}
	if _, err := fs.AttachPair(pairRes, "SpokeB", "Hub"); err != nil {
		t.Fatal(err)
	}
	return fs, bSt
}

// TestFederationReclassifyDerefsGraftedMembers pins the conformed-deref
// registration: after a grafted member's object mutates, reclassify
// evaluates the pair's Sim condition — which navigates a reference into
// the member's store — and the membership moves accordingly.
func TestFederationReclassifyDerefsGraftedMembers(t *testing.T) {
	fs, _ := buildMiniFed(t, "Hub", false)
	v := fs.Res.View

	var gadget *GObj
	for _, g := range v.Objects {
		if c, ok := g.Get("code"); ok && c.String() == "'b'" {
			gadget = g
		}
	}
	if gadget == nil {
		t.Fatal("gadget not grafted")
	}
	if gadget.Classes["Premium"] {
		t.Fatal("grade-3 gadget already Premium")
	}
	clone := v.DetachForUpdate(gadget)
	if _, _, err := v.ApplyUpdate(clone, map[string]object.Value{"grade": object.Int(7)}); err != nil {
		t.Fatalf("reclassify could not evaluate the ref-navigating Sim condition: %v", err)
	}
	if !clone.Classes["Premium"] {
		t.Fatal("grade-7 Acme gadget did not join Premium")
	}
	// And back out again.
	clone2 := v.DetachForUpdate(clone)
	if _, _, err := v.ApplyUpdate(clone2, map[string]object.Value{"grade": object.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if clone2.Classes["Premium"] {
		t.Fatal("grade-2 gadget kept Premium")
	}
	// Detach cleans the registered conformed refs.
	if _, _, err := fs.DetachMember("SpokeB"); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.Res.Conformed.Deref(object.Ref{DB: "SpokeB", OID: 1}); ok {
		t.Fatal("detached member's conformed refs still resolvable")
	}
}

// TestFederationSeedGuardReversedHeader pins that the seed cannot
// detach even when the founding integration spec named it in the REMOTE
// header slot (the tag/base assignment must track the seed, not the
// header orientation).
func TestFederationSeedGuardReversedHeader(t *testing.T) {
	fs, _ := buildMiniFed(t, "Hub", true)
	if _, _, err := fs.DetachMember("Hub"); err == nil {
		t.Fatal("detaching the seed succeeded under a reversed founding header")
	} else if !strings.Contains(err.Error(), "seed") {
		t.Fatalf("wrong guard: %v", err)
	}
	if _, _, err := fs.DetachMember("SpokeB"); err != nil {
		t.Fatalf("detaching the leaf member failed: %v", err)
	}
}

// TestClassNamesNoDuplicates pins the addVirtualMember registration
// fix: virtual class names (approximate superclasses, intersection
// subclasses) are registered once, not once per member.
func TestClassNamesNoDuplicates(t *testing.T) {
	l, r := fixture.Figure1Stores(fixture.Options{Scale: 3})
	res, err := Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), l, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, n := range res.View.ClassNames {
		seen[n]++
	}
	for n, c := range seen {
		if c > 1 {
			t.Errorf("class %s appears %d times in ClassNames", n, c)
		}
	}
}

// TestRecomputeISAMatchesBuildLattice pins that the canonical lattice
// recomputation used by membership changes reproduces buildLattice's
// output exactly on a freshly merged view — the property the detach
// round-trip (attach then detach restoring the founding pair's report
// byte for byte) rests on.
func TestRecomputeISAMatchesBuildLattice(t *testing.T) {
	cases := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"figure1", func() (*Result, error) {
			l, r := fixture.Figure1Stores(fixture.Options{Scale: 3})
			return Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), l, r, 1)
		}},
		{"figure1-original", func() (*Result, error) {
			l, r := fixture.Figure1Stores(fixture.Options{})
			return Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(), l, r, 1)
		}},
		{"personnel", func() (*Result, error) {
			d1, d2 := fixture.PersonnelStores()
			return Integrate(tm.Personnel1(), tm.Personnel2(), tm.PersonnelIntegration(), d1, d2, 1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			orig := append([]ISAEdge{}, res.View.ISA...)
			res.View.recomputeISA()
			if len(orig) != len(res.View.ISA) {
				t.Fatalf("edge count moved: %d -> %d", len(orig), len(res.View.ISA))
			}
			for i := range orig {
				if orig[i] != res.View.ISA[i] {
					t.Fatalf("edge %d moved: %v -> %v", i, orig[i], res.View.ISA[i])
				}
			}
		})
	}
}
