package core

import (
	"fmt"
	"sort"
	"strings"

	"interopdb/internal/expr"
	"interopdb/internal/object"
	"interopdb/internal/schema"
	"interopdb/internal/tm"
)

// Side identifies a component database within an integration. A
// pairwise run uses exactly LocalSide and RemoteSide; a federated view
// (Conformed.Fed non-nil) indexes every attached member with its own
// Side value, assigned in attach order and never reused.
type Side int

// The two sides of a pairwise integration (and the first two member
// indexes of a federation).
const (
	LocalSide Side = iota
	RemoteSide
)

// String renders the side.
func (s Side) String() string {
	switch s {
	case LocalSide:
		return "local"
	case RemoteSide:
		return "remote"
	default:
		return fmt.Sprintf("member%d", int(s))
	}
}

// Other returns the opposite side of a pairwise integration. It is only
// meaningful for LocalSide/RemoteSide; federated rule clones carry their
// target side explicitly (SimRule.TargetSide).
func (s Side) Other() Side { return 1 - s }

// Status is the objectivity/subjectivity of a constraint (§5.1.1).
type Status int

// The statuses.
const (
	Objective Status = iota
	Subjective
)

// String renders the status.
func (s Status) String() string {
	if s == Objective {
		return "objective"
	}
	return "subjective"
}

// ConKey identifies a constraint within the federation.
type ConKey struct {
	DB, Class, Name string
}

// String renders the key.
func (k ConKey) String() string {
	if k.Class == "" {
		return k.DB + "." + k.Name
	}
	return k.DB + "." + k.Class + "." + k.Name
}

// PropEq is a compiled property equivalence assertion.
type PropEq struct {
	Raw      tm.PropEq
	CF       ConvFunc // local → common domain
	CFRemote ConvFunc // remote → common domain
	DF       DecisionFunc
	// Conformed is the name the property carries after conformation (the
	// remote attribute's name, per the paper's renaming examples), and
	// Type its conformed type.
	Conformed string
	Type      object.Type
	// Subjectivity per §5.1.2.
	LocalSubjective, RemoteSubjective bool
}

// EqRule is a compiled (non-descriptivity) object equality rule.
type EqRule struct {
	Raw         tm.Rule
	LocalVar    string
	LocalClass  string
	RemoteVar   string
	RemoteClass string
	IntraLocal  []expr.Node // conjuncts over the local object only
	IntraRemote []expr.Node // conjuncts over the remote object only
	Inter       []expr.Node // conjuncts over both
}

// DescRule is a compiled descriptivity rule: values of the given
// attributes on one side describe an object of a class on the other side.
type DescRule struct {
	Raw tm.Rule
	// ValueSide is the side whose attribute values are objectified.
	ValueSide  Side
	ValueClass string
	ValueAttrs []string
	// ObjectClass is the class (on the other side) the virtual objects
	// correspond to.
	ObjectClass string
	ObjectVar   string
	ValueVar    string
	Cond        expr.Node
	// ValueView selects the paper's alternative conformation direction:
	// instead of objectifying the described values into a virtual class,
	// the objects of ObjectClass are hidden into complex (tuple) values,
	// and constraints involving that class are hidden with them (§4).
	ValueView bool
}

// SimRule is a compiled similarity rule: objects of SrcClass (on SrcSide)
// satisfying the intraobject condition are classified under Target (on
// the other side). Virtual non-empty makes it approximate similarity.
type SimRule struct {
	Raw      tm.Rule
	SrcSide  Side
	SrcVar   string
	SrcClass string
	Target   string
	Virtual  string
	Intra    []expr.Node
	// tgtSide pins the target member explicitly for federated rule
	// clones, whose SrcSide indexes a member beyond the first pair (the
	// pairwise SrcSide.Other() arithmetic only covers sides 0 and 1).
	tgtSide    Side
	hasTgtSide bool
}

// Approximate reports whether the rule is approximate similarity.
func (r *SimRule) Approximate() bool { return r.Virtual != "" }

// TargetSide returns the side whose class the rule classifies matching
// objects under: the explicit member for federated clones, the opposite
// pair side otherwise.
func (r *SimRule) TargetSide() Side {
	if r.hasTgtSide {
		return r.tgtSide
	}
	return r.SrcSide.Other()
}

// SpecIssue is a non-fatal finding during spec compilation — most
// importantly violations of the consistency law "subjectivity of values
// implies subjectivity of constraints" (§5.1.3).
type SpecIssue struct {
	Severity   string // "error", "warning", "note"
	Code       string
	Key        ConKey
	Message    string
	Suggestion string
}

// String renders the issue.
func (i SpecIssue) String() string {
	s := fmt.Sprintf("[%s %s] %s: %s", i.Severity, i.Code, i.Key, i.Message)
	if i.Suggestion != "" {
		s += " — suggestion: " + i.Suggestion
	}
	return s
}

// Spec is a compiled integration specification.
type Spec struct {
	Local, Remote *tm.DatabaseSpec
	EqRules       []*EqRule
	DescRules     []*DescRule
	SimRules      []*SimRule
	PropEqs       []*PropEq
	// Status maps every constraint of both databases to its objectivity.
	Status map[ConKey]Status
	// Issues collects consistency-law violations and downgrades.
	Issues []SpecIssue
	// Seed drives the non-determinism of conflict-ignoring decision
	// functions during merging.
	Seed int64
	// DisableHashJoin forces nested-loop entity resolution; used by the
	// ablation benchmarks to quantify the hash-join design choice.
	DisableHashJoin bool
}

// DB returns the database spec of a side.
func (s *Spec) DB(side Side) *tm.DatabaseSpec {
	if side == LocalSide {
		return s.Local
	}
	return s.Remote
}

// PropEqFor finds the property equivalence covering the attribute as used
// on the given class and side (the propeq may be declared on a super- or
// subclass of the queried class).
func (s *Spec) PropEqFor(side Side, class, attr string) (*PropEq, bool) {
	db := s.DB(side).Schema
	for _, pe := range s.PropEqs {
		peClass, peAttr := pe.Raw.LocalClass, pe.Raw.LocalAttr
		if side == RemoteSide {
			peClass, peAttr = pe.Raw.RemoteClass, pe.Raw.RemoteAttr
		}
		if peAttr != attr {
			continue
		}
		if db.IsA(class, peClass) || db.IsA(peClass, class) {
			return pe, true
		}
	}
	return nil, false
}

// PropSubjective reports whether the attribute, as used on the given
// class and side, is subjective (§5.1.2). Attributes not covered by any
// property equivalence are single-source and therefore objective.
func (s *Spec) PropSubjective(side Side, class, attr string) bool {
	pe, ok := s.PropEqFor(side, class, attr)
	if !ok {
		return false
	}
	if side == LocalSide {
		return pe.LocalSubjective
	}
	return pe.RemoteSubjective
}

// Compile validates an integration specification against its component
// database specifications and computes the subjectivity assignment.
func Compile(local, remote *tm.DatabaseSpec, ispec *tm.IntegrationSpec) (*Spec, error) {
	if ispec.Local != local.Schema.Name || ispec.Remote != remote.Schema.Name {
		return nil, fmt.Errorf("integration header %s imports %s does not match databases %s, %s",
			ispec.Local, ispec.Remote, local.Schema.Name, remote.Schema.Name)
	}
	s := &Spec{Local: local, Remote: remote, Seed: 1}

	merged, prefix := mergedSchema(local.Schema, remote.Schema)
	constTypes := map[string]object.Type{}
	for name, v := range local.Consts {
		constTypes[name] = typeOfValue(v)
	}
	for name, v := range remote.Consts {
		constTypes[name] = typeOfValue(v)
	}

	for i := range ispec.PropEqs {
		pe, err := s.compilePropEq(&ispec.PropEqs[i])
		if err != nil {
			return nil, err
		}
		s.PropEqs = append(s.PropEqs, pe)
	}
	for i := range ispec.Rules {
		if err := s.compileRule(&ispec.Rules[i], merged, prefix, constTypes); err != nil {
			return nil, err
		}
	}
	for _, name := range ispec.ValueView {
		found := false
		for _, dr := range s.DescRules {
			if dr.Raw.Name == name {
				dr.ValueView = true
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("valueview %s does not name a descriptivity rule", name)
		}
	}
	if err := s.assignStatus(ispec.Marks); err != nil {
		return nil, err
	}
	return s, nil
}

// MustCompile compiles and panics on error; for fixtures and examples.
func MustCompile(local, remote *tm.DatabaseSpec, ispec *tm.IntegrationSpec) *Spec {
	s, err := Compile(local, remote, ispec)
	if err != nil {
		panic(fmt.Sprintf("core.MustCompile: %v", err))
	}
	return s
}

// mergedSchema builds a scratch schema holding both databases' classes so
// rule conditions can be type-checked; remote classes get a prefix to
// avoid name collisions (Employee/Employee in the intro example).
func mergedSchema(local, remote *schema.Database) (*schema.Database, string) {
	const prefix = "remote__"
	m := schema.NewDatabase("merged")
	for _, c := range local.Classes() {
		nc := &schema.Class{Name: c.Name, Super: c.Super}
		nc.Attrs = append([]schema.Attribute(nil), c.Attrs...)
		_ = m.AddClass(nc)
	}
	for _, c := range remote.Classes() {
		nc := &schema.Class{Name: prefix + c.Name}
		if c.Super != "" {
			nc.Super = prefix + c.Super
		}
		for _, a := range c.Attrs {
			t := a.Type
			if ct, ok := t.(object.ClassType); ok {
				t = object.ClassType{Class: prefix + ct.Class}
			}
			nc.Attrs = append(nc.Attrs, schema.Attribute{Name: a.Name, Type: t})
		}
		_ = m.AddClass(nc)
	}
	return m, prefix
}

func (s *Spec) compilePropEq(raw *tm.PropEq) (*PropEq, error) {
	localAttr, _, ok := resolveAttrOn(s.Local.Schema, raw.LocalClass, raw.LocalAttr)
	if !ok {
		return nil, fmt.Errorf("propeq %s: no attribute %s.%s in %s", raw.Src, raw.LocalClass, raw.LocalAttr, s.Local.Schema.Name)
	}
	remoteAttr, _, ok := resolveAttrOn(s.Remote.Schema, raw.RemoteClass, raw.RemoteAttr)
	if !ok {
		return nil, fmt.Errorf("propeq %s: no attribute %s.%s in %s", raw.Src, raw.RemoteClass, raw.RemoteAttr, s.Remote.Schema.Name)
	}
	cf, err := CompileConversion(raw.CF)
	if err != nil {
		return nil, fmt.Errorf("propeq %s: %w", raw.Src, err)
	}
	cfr, err := CompileConversion(raw.CFRemote)
	if err != nil {
		return nil, fmt.Errorf("propeq %s: %w", raw.Src, err)
	}
	df, err := CompileDecision(raw.DF, s.Local.Schema.Name, s.Remote.Schema.Name)
	if err != nil {
		return nil, fmt.Errorf("propeq %s: %w", raw.Src, err)
	}
	lt := cf.ApplyType(localAttr.Type.(object.Type))
	rt := cfr.ApplyType(remoteAttr.Type.(object.Type))
	if !compatFamily(lt, rt) {
		return nil, fmt.Errorf("propeq %s: converted domains %s and %s are incompatible", raw.Src, lt, rt)
	}
	pe := &PropEq{
		Raw:       *raw,
		CF:        cf,
		CFRemote:  cfr,
		DF:        df,
		Conformed: raw.RemoteAttr,
		Type:      rt,
	}
	// §5.1.2: subjectivity per decision-function kind.
	switch df.Kind() {
	case ConflictIgnoring:
		// both objective
	case ConflictAvoiding:
		trustLocal, _ := TrustsLocal(df)
		pe.LocalSubjective = !trustLocal
		pe.RemoteSubjective = trustLocal
	case ConflictSettling, ConflictEliminating:
		pe.LocalSubjective = true
		pe.RemoteSubjective = true
	}
	return pe, nil
}

// resolveAttrOn resolves an attribute on a class (own or inherited),
// returning the declaring class too.
func resolveAttrOn(db *schema.Database, class, attr string) (schema.Attribute, string, bool) {
	if _, ok := db.Class(class); !ok {
		return schema.Attribute{}, "", false
	}
	return db.ResolveAttr(class, attr)
}

func (s *Spec) compileRule(raw *tm.Rule, merged *schema.Database, prefix string, constTypes map[string]object.Type) error {
	// Resolve sides: a class name belongs to the side whose schema
	// declares it; when both declare it, the paper's convention applies
	// (first argument local for Eq; Sim source resolved so that the
	// target lands on the other side).
	inLocal := func(c string) bool { _, ok := s.Local.Schema.Class(c); return ok }
	inRemote := func(c string) bool { _, ok := s.Remote.Schema.Class(c); return ok }

	checkCond := func(vars map[string]string) error {
		ctx := &expr.CheckCtx{DB: merged, Consts: constTypes, Vars: vars}
		if err := expr.CheckConstraint(raw.Cond, ctx); err != nil {
			return fmt.Errorf("rule %s: %w", raw.Name, err)
		}
		return nil
	}

	switch raw.Kind {
	case tm.RuleEq:
		if raw.IsDescriptivity() {
			return s.compileDescRule(raw, checkCond, prefix, inLocal, inRemote)
		}
		c1Local := inLocal(raw.Class1)
		c2Remote := inRemote(raw.Class2)
		if !c1Local || !c2Remote {
			// Try the swapped orientation.
			if inLocal(raw.Class2) && inRemote(raw.Class1) && !(c1Local && c2Remote) {
				swapped := *raw
				swapped.Var1, swapped.Var2 = raw.Var2, raw.Var1
				swapped.Class1, swapped.Class2 = raw.Class2, raw.Class1
				swapped.Desc1, swapped.Desc2 = raw.Desc2, raw.Desc1
				return s.compileRule(&swapped, merged, prefix, constTypes)
			}
			return fmt.Errorf("rule %s: Eq(%s:%s, %s:%s) does not resolve to a local and a remote class",
				raw.Name, raw.Var1, raw.Class1, raw.Var2, raw.Class2)
		}
		if err := checkCond(map[string]string{raw.Var1: raw.Class1, raw.Var2: prefix + raw.Class2}); err != nil {
			return err
		}
		r := &EqRule{
			Raw: *raw, LocalVar: raw.Var1, LocalClass: raw.Class1,
			RemoteVar: raw.Var2, RemoteClass: raw.Class2,
		}
		for _, c := range splitConjuncts(raw.Cond) {
			vars := rootVars(c, map[string]bool{raw.Var1: true, raw.Var2: true})
			switch {
			case vars[raw.Var1] && vars[raw.Var2]:
				r.Inter = append(r.Inter, c)
			case vars[raw.Var1]:
				r.IntraLocal = append(r.IntraLocal, c)
			case vars[raw.Var2]:
				r.IntraRemote = append(r.IntraRemote, c)
			default:
				r.Inter = append(r.Inter, c)
			}
		}
		s.EqRules = append(s.EqRules, r)
		return nil
	case tm.RuleSim, tm.RuleSimApprox:
		var srcSide Side
		switch {
		case inLocal(raw.Class1) && inRemote(raw.Target):
			srcSide = LocalSide
		case inRemote(raw.Class1) && inLocal(raw.Target):
			srcSide = RemoteSide
		default:
			return fmt.Errorf("rule %s: Sim(%s:%s, %s) does not resolve across the two databases",
				raw.Name, raw.Var1, raw.Class1, raw.Target)
		}
		srcClass := raw.Class1
		if srcSide == RemoteSide {
			srcClass = prefix + raw.Class1
		}
		if err := checkCond(map[string]string{raw.Var1: srcClass}); err != nil {
			return err
		}
		r := &SimRule{
			Raw: *raw, SrcSide: srcSide, SrcVar: raw.Var1, SrcClass: raw.Class1,
			Target: raw.Target, Virtual: raw.Virtual,
			Intra: splitConjuncts(raw.Cond),
		}
		s.SimRules = append(s.SimRules, r)
		return nil
	default:
		return fmt.Errorf("rule %s: unsupported kind %s", raw.Name, raw.Kind)
	}
}

// compileDescRule compiles a descriptivity rule (Eq with value attributes
// on one argument).
func (s *Spec) compileDescRule(raw *tm.Rule, checkCond func(map[string]string) error, prefix string, inLocal, inRemote func(string) bool) error {
	var r DescRule
	r.Raw = *raw
	r.Cond = raw.Cond
	switch {
	case len(raw.Desc1) > 0 && len(raw.Desc2) == 0:
		// Eq(O:LocalClass.{attrs}, R:RemoteClass): local values describe
		// a remote-class object.
		if !inLocal(raw.Class1) || !inRemote(raw.Class2) {
			return fmt.Errorf("rule %s: descriptivity classes do not resolve", raw.Name)
		}
		r.ValueSide = LocalSide
		r.ValueClass = raw.Class1
		r.ValueAttrs = raw.Desc1
		r.ObjectClass = raw.Class2
		r.ValueVar = raw.Var1
		r.ObjectVar = raw.Var2
		if err := checkCond(map[string]string{raw.Var1: raw.Class1, raw.Var2: prefix + raw.Class2}); err != nil {
			return err
		}
	case len(raw.Desc2) > 0 && len(raw.Desc1) == 0:
		if !inLocal(raw.Class2) || !inRemote(raw.Class1) {
			return fmt.Errorf("rule %s: descriptivity classes do not resolve", raw.Name)
		}
		r.ValueSide = RemoteSide
		r.ValueClass = raw.Class2
		r.ValueAttrs = raw.Desc2
		r.ObjectClass = raw.Class1
		r.ValueVar = raw.Var2
		r.ObjectVar = raw.Var1
		if err := checkCond(map[string]string{raw.Var1: prefix + raw.Class1, raw.Var2: raw.Class2}); err != nil {
			return err
		}
	default:
		return fmt.Errorf("rule %s: descriptivity attributes on both arguments", raw.Name)
	}
	for _, a := range r.ValueAttrs {
		db := s.DB(r.ValueSide).Schema
		if _, _, ok := db.ResolveAttr(r.ValueClass, a); !ok {
			return fmt.Errorf("rule %s: no attribute %s.%s", raw.Name, r.ValueClass, a)
		}
	}
	s.DescRules = append(s.DescRules, &r)
	return nil
}

// assignStatus computes the Status map: designer marks, then defaults
// (object constraints objective, class and database constraints
// subjective), then the consistency law of §5.1.3.
func (s *Spec) assignStatus(marks []tm.Mark) error {
	s.Status = map[ConKey]Status{}
	marked := map[ConKey]bool{}

	apply := func(db *tm.DatabaseSpec, side Side) {
		for _, c := range db.Schema.Classes() {
			for _, k := range c.Constraints {
				key := ConKey{db.Schema.Name, c.Name, k.Name}
				if k.Kind == schema.ObjectConstraint {
					s.Status[key] = Objective
				} else {
					s.Status[key] = Subjective
				}
			}
		}
		for _, k := range db.Schema.DBCons {
			// §5.2.3: database constraints are subjective.
			s.Status[ConKey{db.Schema.Name, "", k.Name}] = Subjective
		}
	}
	apply(s.Local, LocalSide)
	apply(s.Remote, RemoteSide)

	for _, m := range marks {
		found := 0
		for key := range s.Status {
			if key.Class == m.Class && key.Name == m.Constraint {
				if m.Objective {
					s.Status[key] = Objective
				} else {
					s.Status[key] = Subjective
				}
				marked[key] = true
				found++
			}
		}
		if found == 0 {
			return fmt.Errorf("mark %s.%s does not match any constraint", m.Class, m.Constraint)
		}
	}

	// §5.2.3 is absolute: database constraints cannot be objective.
	var dbKeys []ConKey
	for key := range s.Status {
		if key.Class == "" && s.Status[key] == Objective {
			dbKeys = append(dbKeys, key)
		}
	}
	sort.Slice(dbKeys, func(i, j int) bool { return dbKeys[i].String() < dbKeys[j].String() })
	for _, key := range dbKeys {
		s.Issues = append(s.Issues, SpecIssue{
			Severity: "error", Code: "database-constraint-objective", Key: key,
			Message:    "database constraints are inherently subjective (§5.2.3)",
			Suggestion: "remove the objective mark",
		})
		s.Status[key] = Subjective
	}

	// Consistency law (§5.1.3): constraints over subjective properties
	// must be subjective.
	check := func(db *tm.DatabaseSpec, side Side) {
		for _, c := range db.Schema.Classes() {
			for _, k := range c.Constraints {
				key := ConKey{db.Schema.Name, c.Name, k.Name}
				if s.Status[key] != Objective {
					continue
				}
				var subjAttrs []string
				for attr := range expr.AttrsUsed(k.Expr.(expr.Node)) {
					root := attr
					if i := strings.Index(root, "."); i >= 0 {
						root = root[:i]
					}
					if _, _, ok := db.Schema.ResolveAttr(c.Name, root); !ok {
						continue // a constant, not an attribute
					}
					if s.PropSubjective(side, c.Name, root) {
						subjAttrs = append(subjAttrs, root)
					}
				}
				if len(subjAttrs) == 0 {
					continue
				}
				sort.Strings(subjAttrs)
				if marked[key] {
					s.Issues = append(s.Issues, SpecIssue{
						Severity: "error", Code: "subjectivity-law", Key: key,
						Message:    fmt.Sprintf("declared objective but involves subjective properties %v (value subjectivity implies constraint subjectivity, §5.1.3)", subjAttrs),
						Suggestion: fmt.Sprintf("mark %s subjective, or change the decision functions on %v", key, subjAttrs),
					})
				} else {
					s.Issues = append(s.Issues, SpecIssue{
						Severity: "note", Code: "auto-subjective", Key: key,
						Message: fmt.Sprintf("defaulted to subjective: involves subjective properties %v", subjAttrs),
					})
				}
				s.Status[key] = Subjective
			}
		}
	}
	check(s.Local, LocalSide)
	check(s.Remote, RemoteSide)
	return nil
}

// splitConjuncts flattens top-level conjunctions.
func splitConjuncts(n expr.Node) []expr.Node {
	if b, ok := n.(expr.Binary); ok && b.Op == expr.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []expr.Node{n}
}

// rootVars collects which of the given variables a condition references.
func rootVars(n expr.Node, vars map[string]bool) map[string]bool {
	out := map[string]bool{}
	expr.Walk(n, func(x expr.Node) bool {
		if id, ok := x.(expr.Ident); ok && vars[id.Name] {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// compatFamily mirrors the type checker's comparability notion.
func compatFamily(a, b object.Type) bool {
	if object.Numeric(a) && object.Numeric(b) {
		return true
	}
	switch a := a.(type) {
	case object.BasicType:
		bb, ok := b.(object.BasicType)
		return ok && a.K == bb.K
	case object.SetType:
		bs, ok := b.(object.SetType)
		return ok && compatFamily(a.Elem, bs.Elem)
	case object.ClassType:
		// An object-valued remote property can be equivalent to a local
		// string property through a descriptivity relationship; that pair
		// is conformed via the virtual class, so accept it here.
		return true
	}
	if _, ok := b.(object.ClassType); ok {
		return true
	}
	return false
}

func typeOfValue(v object.Value) object.Type {
	switch v := v.(type) {
	case object.Int:
		return object.TInt
	case object.Real:
		return object.TReal
	case object.Str:
		return object.TString
	case object.Bool:
		return object.TBool
	case object.Set:
		if v.Len() > 0 {
			return object.SetType{Elem: typeOfValue(v.Elems()[0])}
		}
		return object.SetType{Elem: object.TString}
	default:
		return object.TString
	}
}
