package core

import (
	"testing"

	"interopdb/internal/expr"
	"interopdb/internal/fixture"
	"interopdb/internal/tm"
)

func repairedDerivation(t *testing.T) *Derivation {
	t.Helper()
	local, remote := fixture.Figure1Stores(fixture.Options{})
	res, err := Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	return res.Derivation
}

func TestDerivationExportVerify(t *testing.T) {
	d := repairedDerivation(t)
	if len(d.Global) == 0 {
		t.Fatal("figure-1 derivation produced no global constraints")
	}
	data, err := ExportDerivation(d)
	if err != nil {
		t.Fatalf("ExportDerivation: %v", err)
	}

	// An independent re-derivation of the same federation verifies.
	if err := VerifyDerivation(repairedDerivation(t), data); err != nil {
		t.Fatalf("VerifyDerivation(re-derived): %v", err)
	}

	// A different constraint set does not: drop the last constraint.
	short := repairedDerivation(t)
	short.Global = short.Global[:len(short.Global)-1]
	if err := VerifyDerivation(short, data); err == nil {
		t.Fatal("VerifyDerivation accepted a shorter derivation")
	}

	// Nor does one with tampered metadata.
	tampered := repairedDerivation(t)
	tampered.Global[0].Derivation = "forged"
	if err := VerifyDerivation(tampered, data); err == nil {
		t.Fatal("VerifyDerivation accepted tampered metadata")
	}

	// Nor a replaced expression.
	rewritten := repairedDerivation(t)
	rewritten.Global[0].Expr = expr.MustParse("rating >= 99")
	if err := VerifyDerivation(rewritten, data); err == nil {
		t.Fatal("VerifyDerivation accepted a rewritten expression")
	}

	if err := VerifyDerivation(repairedDerivation(t), []byte("{broken")); err == nil {
		t.Fatal("VerifyDerivation accepted malformed export")
	}
}
