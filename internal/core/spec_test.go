package core

import (
	"strings"
	"testing"

	"interopdb/internal/tm"
)

func fig1Spec(t testing.TB) *Spec {
	s, err := Compile(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return s
}

func TestCompileFigure1(t *testing.T) {
	s := fig1Spec(t)
	if len(s.EqRules) != 1 {
		t.Fatalf("EqRules = %d", len(s.EqRules))
	}
	r1 := s.EqRules[0]
	if r1.LocalClass != "Publication" || r1.RemoteClass != "Item" {
		t.Errorf("r1 = %+v", r1)
	}
	if len(r1.Inter) != 1 || len(r1.IntraLocal) != 0 || len(r1.IntraRemote) != 0 {
		t.Errorf("r1 condition split: inter=%d intraL=%d intraR=%d", len(r1.Inter), len(r1.IntraLocal), len(r1.IntraRemote))
	}
	if len(s.DescRules) != 1 {
		t.Fatalf("DescRules = %d", len(s.DescRules))
	}
	d := s.DescRules[0]
	if d.ValueSide != LocalSide || d.ValueClass != "Publication" || d.ObjectClass != "Publisher" {
		t.Errorf("desc rule = %+v", d)
	}
	if len(s.SimRules) != 3 {
		t.Fatalf("SimRules = %d", len(s.SimRules))
	}
	if s.SimRules[0].SrcSide != RemoteSide || s.SimRules[0].Target != "RefereedPubl" {
		t.Errorf("r3 = %+v", s.SimRules[0])
	}
	if s.SimRules[2].SrcSide != LocalSide || s.SimRules[2].Target != "Proceedings" {
		t.Errorf("r5 = %+v", s.SimRules[2])
	}
}

// TestSubjectivityTable checks the §5.1.2 assignments on the Figure 1
// specification, exactly as discussed in the paper:
//   - any on publisher/name: both objective
//   - trust(CSLibrary) on ourprice/libprice: local objective, remote subjective
//   - trust(Bookseller) on shopprice: local subjective, remote objective
//   - avg on rating: both subjective
//   - union on editors/authors: both subjective
func TestSubjectivityTable(t *testing.T) {
	s := fig1Spec(t)
	cases := []struct {
		side        Side
		class, attr string
		want        bool
	}{
		{LocalSide, "Publication", "publisher", false},
		{RemoteSide, "Publisher", "name", false},
		{LocalSide, "Publication", "ourprice", false},
		{RemoteSide, "Item", "libprice", true},
		{LocalSide, "Publication", "shopprice", true},
		{RemoteSide, "Item", "shopprice", false},
		{LocalSide, "ScientificPubl", "rating", true},
		{RemoteSide, "Proceedings", "rating", true},
		{LocalSide, "ScientificPubl", "editors", true},
		{RemoteSide, "Item", "authors", true},
		// Inheritance: rating on RefereedPubl is the ScientificPubl property.
		{LocalSide, "RefereedPubl", "rating", true},
		// Uncovered attributes are single-source, hence objective.
		{LocalSide, "RefereedPubl", "avgAccRate", false},
		{RemoteSide, "Proceedings", "ref?", false},
	}
	for _, c := range cases {
		if got := s.PropSubjective(c.side, c.class, c.attr); got != c.want {
			t.Errorf("PropSubjective(%v, %s, %s) = %v, want %v", c.side, c.class, c.attr, got, c.want)
		}
	}
}

// TestConstraintStatusFigure1 checks the constraint-status assignment:
// the consistency law (§5.1.3) downgrades every rating- or price-involving
// object constraint, while Proceedings.oc1 stays objective.
func TestConstraintStatusFigure1(t *testing.T) {
	s := fig1Spec(t)
	cases := []struct {
		key  ConKey
		want Status
	}{
		{ConKey{"Bookseller", "Proceedings", "oc1"}, Objective},  // IEEE ⇒ ref?
		{ConKey{"Bookseller", "Proceedings", "oc2"}, Subjective}, // involves rating
		{ConKey{"Bookseller", "Proceedings", "oc3"}, Subjective},
		{ConKey{"CSLibrary", "RefereedPubl", "oc1"}, Subjective},
		{ConKey{"CSLibrary", "NonRefereedPubl", "oc1"}, Subjective},
		{ConKey{"CSLibrary", "Publication", "oc1"}, Subjective}, // ourprice<=shopprice: shopprice subjective
		{ConKey{"Bookseller", "Item", "oc1"}, Subjective},       // libprice subjective
		{ConKey{"CSLibrary", "Publication", "oc2"}, Subjective}, // marked
		{ConKey{"CSLibrary", "Publication", "cc2"}, Subjective}, // marked (class)
		{ConKey{"CSLibrary", "Publication", "cc1"}, Subjective}, // class default
		{ConKey{"Bookseller", "", "db1"}, Subjective},           // §5.2.3
	}
	for _, c := range cases {
		if got := s.Status[c.key]; got != c.want {
			t.Errorf("Status[%s] = %v, want %v", c.key, got, c.want)
		}
	}
	// The downgrades surface as notes, not errors (nothing was marked
	// objective in violation of the law).
	for _, i := range s.Issues {
		if i.Severity == "error" {
			t.Errorf("unexpected error issue: %s", i)
		}
	}
}

// TestConsistencyLawViolation (E5): declaring libprice<=shopprice
// objective while trust functions make the prices subjective must raise
// the §5.1.3 law violation.
func TestConsistencyLawViolation(t *testing.T) {
	ispec := tm.MustParseIntegration(tm.FigureOneIntegration + "\nobjective Item.oc1\n")
	s, err := Compile(tm.Figure1Library(), tm.Figure1Bookseller(), ispec)
	if err != nil {
		t.Fatal(err)
	}
	var found *SpecIssue
	for i := range s.Issues {
		if s.Issues[i].Code == "subjectivity-law" && s.Issues[i].Key.Name == "oc1" && s.Issues[i].Key.Class == "Item" {
			found = &s.Issues[i]
		}
	}
	if found == nil {
		t.Fatalf("expected subjectivity-law issue; got %v", s.Issues)
	}
	if found.Severity != "error" {
		t.Errorf("law violation severity = %s", found.Severity)
	}
	if !strings.Contains(found.Message, "libprice") {
		t.Errorf("issue should name the subjective property: %s", found.Message)
	}
	// The engine still downgrades so the derivation stays sound.
	if s.Status[ConKey{"Bookseller", "Item", "oc1"}] != Subjective {
		t.Error("violating constraint must be downgraded to subjective")
	}
}

func TestCompilePersonnel(t *testing.T) {
	s, err := Compile(tm.Personnel1(), tm.Personnel2(), tm.PersonnelIntegration())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(s.EqRules) != 1 {
		t.Fatalf("rules: %d", len(s.EqRules))
	}
	// Same class name on both sides resolves by the paper's convention.
	r := s.EqRules[0]
	if r.LocalClass != "Employee" || r.RemoteClass != "Employee" {
		t.Errorf("rule classes: %+v", r)
	}
	if !s.PropSubjective(LocalSide, "Employee", "trav_reimb") {
		t.Error("trav_reimb should be subjective under avg")
	}
	if s.PropSubjective(LocalSide, "Employee", "ssn") {
		t.Error("ssn should be objective under any")
	}
	if s.Status[ConKey{"DB1", "Employee", "oc2"}] != Subjective {
		t.Error("salary rule is subjective")
	}
}

func TestCompileErrors(t *testing.T) {
	lib, bs := tm.Figure1Library(), tm.Figure1Bookseller()
	cases := []struct{ src, wantSub string }{
		{"integration Wrong imports Bookseller\nrule r: Eq(O:Publication, R:Item) <= O.isbn = R.isbn", "does not match"},
		{"integration CSLibrary imports Bookseller\nrule r: Eq(O:NoClass, R:Item) <= true", "does not resolve"},
		{"integration CSLibrary imports Bookseller\nrule r: Sim(R:Proceedings, NoClass) <= true", "does not resolve"},
		{"integration CSLibrary imports Bookseller\nrule r: Eq(O:Publication, R:Item) <= O.nosuch = R.isbn", "no attribute"},
		{"integration CSLibrary imports Bookseller\npropeq(Publication.nosuch, Item.libprice, id, id, any)", "no attribute"},
		{"integration CSLibrary imports Bookseller\npropeq(Publication.ourprice, Item.libprice, nosuch, id, any)", "unknown conversion"},
		{"integration CSLibrary imports Bookseller\npropeq(Publication.ourprice, Item.libprice, id, id, nosuch)", "unknown decision"},
		{"integration CSLibrary imports Bookseller\npropeq(Publication.title, Item.libprice, id, id, any)", "incompatible"},
		{"integration CSLibrary imports Bookseller\nobjective NoClass.oc9", "does not match any constraint"},
		{"integration CSLibrary imports Bookseller\nrule r: Eq(O:Publication.{publisher}, R:Publisher.{name}) <= true", "both arguments"},
		{"integration CSLibrary imports Bookseller\npropeq(Publication.ourprice, Item.libprice, id, id, trust(Elsewhere))", "not one of the component databases"},
	}
	for _, c := range cases {
		ispec, err := tm.ParseIntegration(c.src)
		if err != nil {
			t.Fatalf("fixture parse error for %q: %v", c.src, err)
		}
		_, err = Compile(lib, bs, ispec)
		if err == nil {
			t.Errorf("Compile(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Compile(%q) error %q should mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestSideAndStatusStrings(t *testing.T) {
	if LocalSide.String() != "local" || RemoteSide.String() != "remote" {
		t.Error("side strings")
	}
	if LocalSide.Other() != RemoteSide || RemoteSide.Other() != LocalSide {
		t.Error("Other")
	}
	if Objective.String() != "objective" || Subjective.String() != "subjective" {
		t.Error("status strings")
	}
	k := ConKey{"DB", "C", "oc1"}
	if k.String() != "DB.C.oc1" {
		t.Errorf("ConKey = %s", k)
	}
	if (ConKey{"DB", "", "db1"}).String() != "DB.db1" {
		t.Error("database ConKey")
	}
}
