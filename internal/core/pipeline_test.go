package core

import (
	"strings"
	"testing"

	"interopdb/internal/expr"
	"interopdb/internal/fixture"
	"interopdb/internal/object"
	"interopdb/internal/schema"
	"interopdb/internal/store"
	"interopdb/internal/tm"
)

func fig1Result(t testing.TB, opt fixture.Options) *Result {
	local, remote := fixture.Figure1Stores(opt)
	res, err := Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(), local, remote, 1)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	return res
}

// TestE9KeyPropagation: all Eq rules on Publication/Item are key-to-key
// on isbn, and the Sim rules import only from classes that have equality
// rules, so the key constraints propagate to the integrated view
// (§5.2.2's exception).
func TestE9KeyPropagation(t *testing.T) {
	d := fig1Result(t, fixture.Options{}).Derivation
	var keys []GlobalConstraint
	for _, gc := range d.Global {
		if gc.Derivation == "key-propagation" {
			keys = append(keys, gc)
		}
	}
	if len(keys) < 2 {
		t.Fatalf("expected key propagation for Publication and Item; got %v", keys)
	}
	classes := map[string]bool{}
	for _, gc := range keys {
		if k, ok := gc.Expr.(expr.Key); !ok || len(k.Attrs) != 1 || k.Attrs[0] != "isbn" {
			t.Errorf("propagated key: %v", gc)
		}
		for _, c := range gc.Classes {
			classes[c] = true
		}
	}
	if !classes["Publication"] || !classes["Item"] {
		t.Errorf("key classes: %v", classes)
	}
	// The global extents actually satisfy the propagated keys.
	v := d.View
	for _, cls := range []string{"Publication", "Item"} {
		ext := make([]expr.Object, 0)
		for _, g := range v.Extent(cls) {
			ext = append(ext, g)
		}
		ok, err := expr.EvalKey(ext, []string{"isbn"})
		if err != nil || !ok {
			t.Errorf("global key on %s violated: %v %v", cls, ok, err)
		}
	}
}

// TestE9ClassConstraintsSubjective: non-key class constraints are not
// propagated — the avg-rating rule and the budget cap stay local.
func TestE9ClassConstraintsSubjective(t *testing.T) {
	d := fig1Result(t, fixture.Options{}).Derivation
	for _, gc := range d.Global {
		s := gc.Expr.String()
		if strings.Contains(s, "avg") || strings.Contains(s, "sum") {
			t.Errorf("aggregate class constraint leaked into the global view: %v", gc)
		}
	}
	foundNote := false
	for _, n := range d.Notes {
		if strings.Contains(n, "CSLibrary.ScientificPubl.cc1") && strings.Contains(n, "§5.2.2") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Errorf("expected a §5.2.2 note for ScientificPubl.cc1; notes: %v", d.Notes)
	}
}

// TestE9DatabaseConstraintsSubjective: db1 is reported, never propagated.
func TestE9DatabaseConstraintsSubjective(t *testing.T) {
	d := fig1Result(t, fixture.Options{}).Derivation
	for _, gc := range d.Global {
		if strings.Contains(gc.Expr.String(), "forall") {
			t.Errorf("database constraint leaked: %v", gc)
		}
	}
	found := false
	for _, n := range d.Notes {
		if strings.Contains(n, "db1") && strings.Contains(n, "§5.2.3") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected §5.2.3 note for db1; notes: %v", d.Notes)
	}
}

// TestE9ObjectiveExtension: a class untouched by any rule keeps its class
// constraints in the integrated view.
func TestE9ObjectiveExtension(t *testing.T) {
	localSpec := tm.MustParseDatabase(`
Database L
Class Shared
  attributes
    k : string
end Shared
Class Isolated
  attributes
    v : real
  class constraints
    cc1: (sum (collect x for x in self) over v) < 100
end Isolated
`)
	remoteSpec := tm.MustParseDatabase(`
Database R
Class SharedR
  attributes
    k : string
end SharedR
`)
	ispec := tm.MustParseIntegration(`
integration L imports R
rule r1: Eq(A:Shared, B:SharedR) <= A.k = B.k
propeq(Shared.k, SharedR.k, id, id, any)
`)
	ls := store.New(localSpec.Schema, nil)
	rs := store.New(remoteSpec.Schema, nil)
	ls.MustInsert("Isolated", map[string]object.Value{"v": object.Real(10)})
	res, err := Integrate(localSpec, remoteSpec, ispec, ls, rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, gc := range res.Derivation.Global {
		if gc.Derivation == "objective-extension" {
			found = true
			if gc.Classes[0] != "Isolated" {
				t.Errorf("objective extension class: %v", gc.Classes)
			}
		}
	}
	if !found {
		t.Errorf("Isolated's class constraint should survive; global: \n%s", globalDump(res.Derivation))
	}
}

// TestE9KeyDoesNotPropagateOnNonKeyJoin: an equality rule joining on a
// non-key attribute blocks key propagation.
func TestE9KeyDoesNotPropagateOnNonKeyJoin(t *testing.T) {
	localSpec := tm.MustParseDatabase(`
Database L
Class C
  attributes
    k : string
    other : string
  class constraints
    cc1: key k
end C
`)
	remoteSpec := tm.MustParseDatabase(`
Database R
Class D
  attributes
    k2 : string
    other : string
  class constraints
    cc1: key k2
end D
`)
	ispec := tm.MustParseIntegration(`
integration L imports R
rule r1: Eq(A:C, B:D) <= A.other = B.other
propeq(C.other, D.other, id, id, any)
`)
	ls := store.New(localSpec.Schema, nil)
	rs := store.New(remoteSpec.Schema, nil)
	res, err := Integrate(localSpec, remoteSpec, ispec, ls, rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, gc := range res.Derivation.Global {
		if gc.Derivation == "key-propagation" {
			t.Errorf("key must not propagate through a non-key join: %v", gc)
		}
	}
}

// TestE11FullPipelineReport: the end-to-end run emits every Figure 3
// stage artifact.
func TestE11FullPipelineReport(t *testing.T) {
	res := fig1Result(t, fixture.Options{})
	rep := res.Report()
	for _, want := range []string{
		"Integration: CSLibrary imports Bookseller",
		"Property subjectivity",
		"rating", "avg", "subjective",
		"Conformed constraints",
		"name in KNOWNPUBLISHERS",
		"rating >= 4",
		"Global classes and lattice",
		"RefereedPubl_Proceedings",
		"Global constraints",
		"publisher.name = 'ACM' implies rating >= 5",
		"key isbn",
		"Notes",
		"§5.2.3",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestE11Determinism: two runs with the same seed are identical.
func TestE11Determinism(t *testing.T) {
	a := fig1Result(t, fixture.Options{}).Report()
	b := fig1Result(t, fixture.Options{}).Report()
	if a != b {
		t.Error("same-seed runs must produce identical reports")
	}
}

// TestIntegrateErrors surfaces stage errors.
func TestIntegrateErrors(t *testing.T) {
	lib, bs := tm.Figure1Library(), tm.Figure1Bookseller()
	bad := tm.MustParseIntegration("integration X imports Y\nrule r: Eq(A:P, B:Q) <= true")
	if _, err := Integrate(lib, bs, bad, nil, nil, 1); err == nil || !strings.Contains(err.Error(), "compile") {
		t.Errorf("compile error expected: %v", err)
	}
	good := tm.Figure1Integration()
	wrong := store.New(schema.NewDatabase("Nope"), nil)
	if _, err := Integrate(lib, bs, good, wrong, wrong, 1); err == nil || !strings.Contains(err.Error(), "conform") {
		t.Errorf("conform error expected: %v", err)
	}
}

// TestScopeStrings covers the Scope/ConflictKind/SuggestionKind strings.
func TestScopeStrings(t *testing.T) {
	if ScopeAll.String() != "all" || ScopeMerged.String() != "merged" ||
		ScopeLocalOnly.String() != "local-only" || ScopeRemoteOnly.String() != "remote-only" {
		t.Error("scope strings")
	}
	if ConflictExplicit.String() != "explicit" || ConflictImplicit.String() != "implicit" ||
		ConflictStrictSim.String() != "strict-similarity" || ConflictRuleVsConstraint.String() != "rule-vs-constraint" {
		t.Error("conflict kind strings")
	}
	if SuggestMarkSubjective.String() != "mark-subjective" || SuggestStrengthenRule.String() != "strengthen-rule" ||
		SuggestAddApproxRule.String() != "add-approx-rule" || SuggestChangeDecision.String() != "change-decision-function" {
		t.Error("suggestion kind strings")
	}
}

// TestExplicitConflictDetection: a spec whose derived constraints clash
// is reported with the paper's three repair options.
func TestExplicitConflictDetection(t *testing.T) {
	localSpec := tm.MustParseDatabase(`
Database L
Class C
  attributes
    k : string
    p : int
  object constraints
    oc1: p >= 8
end C
`)
	remoteSpec := tm.MustParseDatabase(`
Database R
Class D
  attributes
    k : string
    p : int
  object constraints
    oc1: p <= 2
end D
`)
	ispec := tm.MustParseIntegration(`
integration L imports R
rule r1: Eq(A:C, B:D) <= A.k = B.k
propeq(C.k, D.k, id, id, any)
propeq(C.p, D.p, id, id, min)
`)
	// min is conflict settling: derived bounds p >= min(8,?)… with both
	// restrictions present the transformers derive p >= 2 and p <= 2 …
	// wait: local p>=8, remote p<=2: lower+upper pair does not combine;
	// to force the explicit conflict mark both objective instead.
	ispec.Marks = append(ispec.Marks,
		tm.Mark{Objective: true, Class: "C", Constraint: "oc1"},
		tm.Mark{Objective: true, Class: "D", Constraint: "oc1"},
	)
	ls := store.New(localSpec.Schema, nil)
	rs := store.New(remoteSpec.Schema, nil)
	res, err := Integrate(localSpec, remoteSpec, ispec, ls, rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Marked objective over subjective (min) properties: the §5.1.3 law
	// flags the spec…
	lawErrors := 0
	for _, i := range res.Spec.Issues {
		if i.Code == "subjectivity-law" && i.Severity == "error" {
			lawErrors++
		}
	}
	if lawErrors != 2 {
		t.Errorf("law violations = %d, want 2", lawErrors)
	}
}

// TestExplicitConflictObjective: genuinely objective contradictory
// constraints produce the explicit conflict with all three options.
func TestExplicitConflictObjective(t *testing.T) {
	localSpec := tm.MustParseDatabase(`
Database L
Class C
  attributes
    k : string
    flag : bool
  object constraints
    oc1: flag = true
end C
`)
	remoteSpec := tm.MustParseDatabase(`
Database R
Class D
  attributes
    k : string
    flag : bool
  object constraints
    oc1: flag = false
end D
`)
	// flag is single-source-free: no propeq, both objective; constraints
	// contradict on merged objects.
	ispec := tm.MustParseIntegration(`
integration L imports R
rule r1: Eq(A:C, B:D) <= A.k = B.k
propeq(C.k, D.k, id, id, any)
`)
	ls := store.New(localSpec.Schema, nil)
	rs := store.New(remoteSpec.Schema, nil)
	res, err := Integrate(localSpec, remoteSpec, ispec, ls, rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	var explicit *Conflict
	for i := range res.Derivation.Conflicts {
		if res.Derivation.Conflicts[i].Kind == ConflictExplicit {
			explicit = &res.Derivation.Conflicts[i]
		}
	}
	if explicit == nil {
		t.Fatalf("expected explicit conflict; got %v", res.Derivation.Conflicts)
	}
	kinds := map[SuggestionKind]bool{}
	for _, s := range explicit.Suggestions {
		kinds[s.Kind] = true
	}
	if !kinds[SuggestMarkSubjective] || !kinds[SuggestStrengthenRule] || !kinds[SuggestChangeDecision] {
		t.Errorf("expected all three §5.2.1 options, got %v", explicit.Suggestions)
	}
}

// TestImplicitConflictDetection: an objective constraint over an any-
// fused property that the other side does not guarantee is flagged.
func TestImplicitConflictDetection(t *testing.T) {
	localSpec := tm.MustParseDatabase(`
Database L
Class C
  attributes
    k : string
    p : int
  object constraints
    oc1: p >= 0
end C
`)
	remoteSpec := tm.MustParseDatabase(`
Database R
Class D
  attributes
    k : string
    p : int
end D
`)
	ispec := tm.MustParseIntegration(`
integration L imports R
rule r1: Eq(A:C, B:D) <= A.k = B.k
propeq(C.k, D.k, id, id, any)
propeq(C.p, D.p, id, id, any)
`)
	ls := store.New(localSpec.Schema, nil)
	rs := store.New(remoteSpec.Schema, nil)
	res, err := Integrate(localSpec, remoteSpec, ispec, ls, rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Derivation.Conflicts {
		if c.Kind == ConflictImplicit && strings.Contains(c.Detail, "L.C.oc1") {
			found = true
			kinds := map[SuggestionKind]bool{}
			for _, s := range c.Suggestions {
				kinds[s.Kind] = true
			}
			if !kinds[SuggestChangeDecision] || !kinds[SuggestMarkSubjective] {
				t.Errorf("implicit conflict suggestions: %v", c.Suggestions)
			}
		}
	}
	if !found {
		t.Errorf("implicit conflict not detected: %v", res.Derivation.Conflicts)
	}
	// With trust(L) instead, the constraint is guaranteed: no conflict.
	ispec2 := tm.MustParseIntegration(`
integration L imports R
rule r1: Eq(A:C, B:D) <= A.k = B.k
propeq(C.k, D.k, id, id, any)
propeq(C.p, D.p, id, id, trust(L))
`)
	res2, err := Integrate(localSpec, remoteSpec, ispec2, store.New(localSpec.Schema, nil), store.New(remoteSpec.Schema, nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res2.Derivation.Conflicts {
		if c.Kind == ConflictImplicit {
			t.Errorf("trust(local) should not raise implicit conflicts: %v", c)
		}
	}
}

// TestRuleVsConstraintConflict (§3): a rule whose intraobject condition
// contradicts the source class's constraints is reported.
func TestRuleVsConstraintConflict(t *testing.T) {
	localSpec := tm.MustParseDatabase(`
Database L
Class C
  attributes
    p : int
end C
`)
	remoteSpec := tm.MustParseDatabase(`
Database R
Class D
  attributes
    p : int
  object constraints
    oc1: p >= 10
end D
`)
	ispec := tm.MustParseIntegration(`
integration L imports R
rule r1: Sim(B:D, C) <= B.p < 5
propeq(C.p, D.p, id, id, any)
`)
	ls := store.New(localSpec.Schema, nil)
	rs := store.New(remoteSpec.Schema, nil)
	res, err := Integrate(localSpec, remoteSpec, ispec, ls, rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Derivation.Conflicts {
		if c.Kind == ConflictRuleVsConstraint && c.Where == "rule r1" {
			found = true
		}
	}
	if !found {
		t.Errorf("rule-vs-constraint conflict not detected: %v", res.Derivation.Conflicts)
	}
}
