package core

import (
	"interopdb/internal/object"
)

// Snapshot support: the view engine serves queries from immutable
// copy-on-write snapshots of the integrated view (DESIGN.md §8), which
// requires that an object reachable from a published snapshot is never
// mutated again. The helpers here give the engine what it needs to keep
// that promise: DetachForUpdate swaps a fresh clone into the live view
// before ApplyUpdate mutates it (readers of older snapshots keep the
// frozen original), and RefsCopy/RefsOf expose the reference table so
// the engine can fork or extend its snapshot-local deref map.

// DetachForUpdate replaces g with a fresh clone everywhere the live view
// references it — the object list, every class extent, and the
// reference table (global identity and constituent sources) — and
// returns the clone. The clone gets its own attribute and class maps
// (and shares the constituent pointers, which no snapshot reader ever
// dereferences), so a subsequent ApplyUpdate on the clone leaves the
// original byte-for-byte intact for readers still holding it. An object
// not (or no longer) part of the view is returned unchanged.
func (v *GlobalView) DetachForUpdate(g *GObj) *GObj {
	if cur, ok := v.byRef[g.Identity()]; !ok || cur != g {
		return g
	}
	clone := &GObj{
		ID:      g.ID,
		Parts:   make(map[Side][]*CObj, len(g.Parts)),
		Attrs:   make(map[string]object.Value, len(g.Attrs)),
		Classes: make(map[string]bool, len(g.Classes)),
	}
	for side, ms := range g.Parts {
		clone.Parts[side] = append([]*CObj{}, ms...)
	}
	for k, val := range g.Attrs {
		clone.Attrs[k] = val
	}
	for c := range g.Classes {
		clone.Classes[c] = true
	}
	for i, o := range v.Objects {
		if o == g {
			v.Objects[i] = clone
			break
		}
	}
	for cls := range g.Classes {
		ext := v.classExt[cls]
		for i, o := range ext {
			if o == g {
				ext[i] = clone
				break
			}
		}
	}
	v.byRef[g.Identity()] = clone
	for _, ms := range g.Parts {
		for _, m := range ms {
			if cur, ok := v.byRef[m.Src]; ok && cur == g {
				v.byRef[m.Src] = clone
			}
		}
	}
	return clone
}

// RefsCopy returns a copy of the reference table (global identities and
// constituent sources → global objects). Snapshot publication forks its
// deref map from it after updates or deletes changed existing entries.
func (v *GlobalView) RefsCopy() map[object.Ref]*GObj {
	out := make(map[object.Ref]*GObj, len(v.byRef))
	for r, g := range v.byRef {
		out[r] = g
	}
	return out
}

// RefsOf lists the reference-table keys that resolve to the object: its
// global identity plus every constituent source reference. Snapshot
// publication uses it to extend the deref map after pure inserts without
// forking it.
func (v *GlobalView) RefsOf(g *GObj) []object.Ref {
	out := []object.Ref{g.Identity()}
	for _, ms := range g.Parts {
		for _, m := range ms {
			if cur, ok := v.byRef[m.Src]; ok && cur == g {
				out = append(out, m.Src)
			}
		}
	}
	return out
}
