package core

import (
	"fmt"
	"sort"
	"strings"

	"interopdb/internal/expr"
	"interopdb/internal/logic"
	"interopdb/internal/object"
	"interopdb/internal/schema"
)

// Scope qualifies which members of a global class a global constraint
// applies to, reflecting the paper's distinction between objects present
// in one database only (whose global state is entirely local, so all
// local constraints hold) and genuinely merged objects (where decision
// functions intervene).
type Scope int

// The scopes.
const (
	ScopeAll Scope = iota
	ScopeMerged
	ScopeLocalOnly
	ScopeRemoteOnly
)

// String renders the scope.
func (s Scope) String() string {
	switch s {
	case ScopeAll:
		return "all"
	case ScopeMerged:
		return "merged"
	case ScopeLocalOnly:
		return "local-only"
	case ScopeRemoteOnly:
		return "remote-only"
	default:
		return fmt.Sprintf("scope(%d)", int(s))
	}
}

// GlobalConstraint is a constraint on the integrated view.
type GlobalConstraint struct {
	Classes    []string
	Scope      Scope
	Kind       schema.ConstraintKind
	Expr       expr.Node
	Origin     []ConKey
	Derivation string // "objective", "derived(avg)", "key-propagation", ...
	// Provenance lists, in a federated view, the pair tags (the attached
	// member's database name identifies each pair) whose derivations
	// contributed this constraint. Detaching a member retracts every
	// constraint whose provenance empties — the federation's constraint
	// retraction rule. Pairwise results leave it nil.
	Provenance []string
}

// SourceDBs lists the component databases the constraint's origin keys
// reference, deduplicated in first-mention order — the stores whose
// locally enforced constraints this global constraint was derived from.
// Constraints synthesized without origin keys (e.g. approximate-
// similarity disjunctions) return nil; their membership dependency is
// carried by Provenance instead.
func (g GlobalConstraint) SourceDBs() []string {
	seen := map[string]bool{}
	var out []string
	for _, k := range g.Origin {
		if !seen[k.DB] {
			seen[k.DB] = true
			out = append(out, k.DB)
		}
	}
	return out
}

// String renders the constraint.
func (g GlobalConstraint) String() string {
	return fmt.Sprintf("on %s [%s, %s]: %s", strings.Join(g.Classes, "+"), g.Scope, g.Derivation, g.Expr)
}

// ConflictKind classifies detected conflicts.
type ConflictKind int

// The conflict kinds of §3 and §5.2.1.
const (
	// ConflictRuleVsConstraint: a rule's intraobject condition is
	// inconsistent with the object constraints of the class it selects
	// from (§3, first consequence).
	ConflictRuleVsConstraint ConflictKind = iota
	// ConflictExplicit: the integrated object constraint set is
	// unsatisfiable (§5.2.1: "h ⊨ false").
	ConflictExplicit
	// ConflictImplicit: an objective constraint touches a property with
	// a conflict-ignoring decision function and the other side does not
	// guarantee the constraint, so a global state may violate it.
	ConflictImplicit
	// ConflictStrictSim: a strict-similarity rule admits objects that
	// are not provably valid members of the target class (Ω' ⊭ Ω̂).
	ConflictStrictSim
)

// String renders the kind.
func (k ConflictKind) String() string {
	switch k {
	case ConflictRuleVsConstraint:
		return "rule-vs-constraint"
	case ConflictExplicit:
		return "explicit"
	case ConflictImplicit:
		return "implicit"
	case ConflictStrictSim:
		return "strict-similarity"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// SuggestionKind classifies repair options (§5.2.1's three options plus
// the approximate-similarity fallback).
type SuggestionKind int

// The repair options.
const (
	SuggestMarkSubjective SuggestionKind = iota
	SuggestStrengthenRule
	SuggestAddApproxRule
	SuggestChangeDecision
)

// String renders the kind.
func (k SuggestionKind) String() string {
	switch k {
	case SuggestMarkSubjective:
		return "mark-subjective"
	case SuggestStrengthenRule:
		return "strengthen-rule"
	case SuggestAddApproxRule:
		return "add-approx-rule"
	case SuggestChangeDecision:
		return "change-decision-function"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Suggestion is a concrete repair proposal.
type Suggestion struct {
	Kind SuggestionKind
	Text string
	// NewRuleSrc holds a ready-to-parse replacement or additional rule
	// when the suggestion rewrites the specification.
	NewRuleSrc string
}

// Conflict is a detected inconsistency between local constraints and the
// integration specification.
type Conflict struct {
	Kind        ConflictKind
	Where       string // rule name or class-pair description
	Detail      string
	Involved    []ConKey
	Suggestions []Suggestion
}

// String renders the conflict.
func (c Conflict) String() string {
	return fmt.Sprintf("[%s] %s: %s", c.Kind, c.Where, c.Detail)
}

// Derivation is the result of constraint integration: the global
// constraint set, the §3 derived constraints per similarity rule, and all
// detected conflicts.
type Derivation struct {
	View      *GlobalView
	Checker   *logic.Checker
	Global    []GlobalConstraint
	Conflicts []Conflict
	// DerivedOnSim maps each similarity rule name to the §3 derived
	// object constraints holding for the objects it selects.
	DerivedOnSim map[string][]expr.Node
	Notes        []string
	// unsafe marks constraints whose strict-similarity check failed for
	// some rule: they are withheld from the global view by filterUnsafe.
	unsafe map[ConKey]bool
	opts   Options
}

// CacheStats reports the reasoner-cache effectiveness of this run.
func (d *Derivation) CacheStats() logic.CacheStats { return d.Checker.CacheStats() }

// Derive runs constraint integration over a merged view with default
// options (full parallelism, memoized reasoning).
func Derive(v *GlobalView) *Derivation { return DeriveOptions(v, Options{}) }

// DeriveOptions runs constraint integration over a merged view. The
// reasoning-heavy stages — similarity checking (§3, §5.2.1), class-pair
// constraint integration (§5.2.1) and approximate-similarity derivation
// — fan out across a bounded worker pool; each unit of work collects
// its outputs privately and the results are merged in the stable
// sequential order, so the Derivation is identical for any Parallelism.
func DeriveOptions(v *GlobalView, opts Options) *Derivation {
	d := &Derivation{
		View:         v,
		Checker:      &logic.Checker{Types: v.Conformed.Types, NoMemo: opts.NoMemo, Memo: opts.Memo},
		DerivedOnSim: map[string][]expr.Node{},
		unsafe:       map[ConKey]bool{},
		opts:         opts,
	}
	d.simRules()
	d.equalityIntegration()
	d.classConstraints()
	d.databaseConstraints()
	d.approxSimilarity()
	d.filterUnsafe()
	return d
}

// filterUnsafe removes objective global constraints invalidated by an
// unresolved strict-similarity conflict: a Sim rule admits members of the
// class that are not provably valid, so the constraint cannot be assumed
// to hold for the whole global extension until the designer repairs the
// specification (the paper's role 2). Each removal leaves a note.
func (d *Derivation) filterUnsafe() {
	if len(d.unsafe) == 0 {
		return
	}
	kept := d.Global[:0]
	for _, gc := range d.Global {
		drop := false
		if gc.Derivation == "objective" {
			for _, k := range gc.Origin {
				if d.unsafe[k] {
					drop = true
					break
				}
			}
		}
		if drop {
			d.Notes = append(d.Notes, fmt.Sprintf(
				"objective constraint %s withheld from the global view: an unresolved strict-similarity conflict means imported members may violate it (repair the specification to restore it)", gc.Origin[0]))
			continue
		}
		kept = append(kept, gc)
	}
	d.Global = kept
}

// exprsOf extracts usable (non-imperfect) constraint expressions.
func exprsOf(cons []CCon) []expr.Node {
	var out []expr.Node
	for _, c := range cons {
		if c.Imperfect {
			continue
		}
		out = append(out, c.Expr)
	}
	return out
}

// simOut is one similarity rule's contribution: collected privately by
// a pool worker, merged into the Derivation in rule order.
type simOut struct {
	// skip marks a rule whose intraobject condition conflicts with the
	// source constraints: nothing is derived for it.
	skip      bool
	derived   []expr.Node
	conflicts []Conflict
	globals   []GlobalConstraint
	unsafe    []ConKey
}

// simRules implements §3 (intraobject conditions vs object constraints,
// derived constraints) and the strict-similarity integration of §5.2.1.
// Rules are independent, so they fan out across the worker pool; the
// per-rule outputs merge in declaration order.
func (d *Derivation) simRules() {
	rules := d.View.Conformed.Spec.SimRules
	outs := make([]simOut, len(rules))
	parallelFor(len(rules), d.opts.workers(), func(i int) {
		outs[i] = d.simRule(rules[i])
	})
	for i, r := range rules {
		o := outs[i]
		d.Conflicts = append(d.Conflicts, o.conflicts...)
		if o.skip {
			continue
		}
		d.DerivedOnSim[r.Raw.Name] = o.derived
		for _, k := range o.unsafe {
			d.unsafe[k] = true
		}
		for _, gc := range o.globals {
			d.addGlobal(gc)
		}
	}
}

// simRule processes one similarity rule. It only reads shared state
// (the conformed world and the concurrency-safe Checker) and writes to
// its private simOut.
func (d *Derivation) simRule(r *SimRule) simOut {
	c := d.View.Conformed
	var out simOut
	conds := d.View.conformSimConds(r)
	// Reasoning happens in self-rooted form: R.ref? and a class
	// constraint's ref? are the same property.
	selfConds := selfRooted(conds, r.SrcVar)
	srcCons := c.ConsOn(r.SrcSide, r.SrcClass, schema.ObjectConstraint)
	premises := append([]expr.Node{}, selfConds...)
	premises = append(premises, exprsOf(srcCons)...)

	// (§3) The intraobject condition must not conflict with the
	// source class's object constraints.
	if d.Checker.Conflicting(premises...) == logic.Yes {
		out.skip = true
		out.conflicts = append(out.conflicts, Conflict{
			Kind:   ConflictRuleVsConstraint,
			Where:  "rule " + r.Raw.Name,
			Detail: fmt.Sprintf("intraobject condition %s is inconsistent with the object constraints of %s", condText(conds), r.SrcClass),
			Suggestions: []Suggestion{{
				Kind: SuggestStrengthenRule,
				Text: "the rule can never fire; revise its condition",
			}},
		})
		return out
	}

	// (§3) Derived object constraints: implications whose guard is
	// entailed by the premises resolve to their consequents.
	derived := append([]expr.Node{}, selfConds...)
	for _, con := range srcCons {
		if con.Imperfect {
			continue
		}
		for _, n := range logic.Normalize(con.Expr) {
			if b, ok := n.(expr.Binary); ok && b.Op == expr.OpImplies {
				if d.Checker.Entails(premises, b.L) == logic.Yes {
					derived = append(derived, b.R)
					continue
				}
			}
			derived = append(derived, n)
		}
	}
	out.derived = derived

	if r.Approximate() {
		return out // handled by approxSimilarity
	}

	// (§5.2.1, strict similarity): Ω' must entail every object
	// constraint of the target class.
	targetSide := r.SrcSide.Other()
	tgtCons := c.ConsOn(targetSide, r.Target, schema.ObjectConstraint)
	for _, tc := range tgtCons {
		if tc.Imperfect {
			continue
		}
		verdict := d.Checker.Entails(derived, tc.Expr)
		if verdict == logic.Yes {
			continue
		}
		detail := fmt.Sprintf("objects selected by %s are not provably valid members of %s: derived constraints %s do not entail %s (%s)",
			r.Raw.Name, r.Target, condText(derived), tc.Expr, verdictWord(verdict))
		// Suggested rule text must use rule syntax: the added
		// condition's attributes are var-rooted.
		added := varRooted(tc.Expr, r.SrcVar, c.SchemaOf(r.SrcSide), r.SrcClass)
		strengthened := fmt.Sprintf("rule %s: Sim(%s:%s, %s) <= %s and %s",
			r.Raw.Name, r.SrcVar, r.SrcClass, r.Target, condText(conds), added)
		approx := fmt.Sprintf("rule %s_approx: Sim(%s:%s, %s, %sLike) <= %s and not (%s)",
			r.Raw.Name, r.SrcVar, r.SrcClass, r.Target, r.Target, condText(conds), added)
		out.unsafe = append(out.unsafe, tc.Key)
		out.conflicts = append(out.conflicts, Conflict{
			Kind:     ConflictStrictSim,
			Where:    "rule " + r.Raw.Name,
			Detail:   detail,
			Involved: []ConKey{tc.Key},
			// §5.2.1's strict-similarity resolutions: strengthen the
			// rule's condition, optionally catching the excluded
			// objects with an approximate-similarity fallback.
			Suggestions: []Suggestion{
				{Kind: SuggestStrengthenRule,
					Text:       fmt.Sprintf("add %s as an intraobject condition to %s", tc.Expr, r.Raw.Name),
					NewRuleSrc: strengthened},
				{Kind: SuggestAddApproxRule,
					Text:       "classify the remaining objects under a virtual superclass via approximate similarity",
					NewRuleSrc: approx},
			},
		})
	}

	// Valid strictly-similar members extend the target class: its
	// objective object constraints apply to all members; the derived
	// constraints hold for the imported ones.
	tgtGlobal := d.View.GlobalName(targetSide, r.Target)
	for _, tc := range tgtCons {
		if tc.Status == Objective && !tc.Imperfect {
			out.globals = append(out.globals, GlobalConstraint{
				Classes: []string{tgtGlobal}, Scope: ScopeAll,
				Kind: schema.ObjectConstraint, Expr: tc.Expr,
				Origin: []ConKey{tc.Key}, Derivation: "objective",
			})
		}
	}
	return out
}

func verdictWord(v logic.Verdict) string {
	if v == logic.No {
		return "refuted"
	}
	return "not provable"
}

// varRooted rewrites self-rooted attributes of the class into the rule
// variable's dotted form (rating → R.rating), producing valid rule-
// condition syntax for repair suggestions.
func varRooted(n expr.Node, varName string, db *schema.Database, class string) expr.Node {
	return expr.Rewrite(n, func(x expr.Node) expr.Node {
		if id, ok := x.(expr.Ident); ok {
			if _, _, ok := db.ResolveAttr(class, id.Name); ok {
				return expr.Path{Recv: expr.Ident{Name: varName}, Attr: id.Name}
			}
		}
		return nil
	})
}

// selfRooted rewrites var-rooted attribute paths (R.ref?) into the
// implicit-self form (ref?) used by class constraints, so that rule
// conditions and constraints talk about the same properties.
func selfRooted(conds []expr.Node, varName string) []expr.Node {
	out := make([]expr.Node, len(conds))
	for i, n := range conds {
		out[i] = expr.Rewrite(n, func(x expr.Node) expr.Node {
			if p, ok := x.(expr.Path); ok {
				if id, ok := p.Recv.(expr.Ident); ok && id.Name == varName {
					return expr.Ident{Name: p.Attr}
				}
			}
			return nil
		})
	}
	return out
}

func condText(conds []expr.Node) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " and ")
}

// equalityIntegration implements §5.2.1 for object equality: objective
// constraints become global; subjective restrictions combine through the
// decision functions under the paper's necessary conditions; explicit and
// implicit conflicts are detected.
//
// Instance-based pairing: besides the class pairs the equality rules are
// declared on, every (most-specific local, most-specific remote) class
// pair observed among actually merged objects is integrated — this is
// what pairs ScientificPubl with Proceedings in the paper's §5.2.1
// example even though the rule is declared on Publication/Item.
func (d *Derivation) equalityIntegration() {
	c := d.View.Conformed
	type pair struct{ l, r string }
	seen := map[pair]string{}
	var orderKeys []pair
	add := func(l, r, where string) {
		p := pair{l, r}
		if _, ok := seen[p]; ok {
			return
		}
		seen[p] = where
		orderKeys = append(orderKeys, p)
	}
	for _, r := range c.Spec.EqRules {
		add(r.LocalClass, r.RemoteClass, "rule "+r.Raw.Name)
	}
	for _, r := range c.ImpliedEq {
		add(r.LocalClass, r.RemoteClass, "rule "+r.Raw.Name)
	}
	for _, g := range d.View.Objects {
		if !g.Merged() {
			continue
		}
		for _, lm := range g.Parts[LocalSide] {
			for _, rm := range g.Parts[RemoteSide] {
				add(lm.Class, rm.Class, fmt.Sprintf("merged %s/%s objects", lm.Class, rm.Class))
			}
		}
	}
	// Class pairs are independent: fan them out, then merge per-pair
	// outputs in first-seen pair order. addGlobal deduplicates at merge
	// time, exactly as the sequential interleaving did.
	outs := make([]pairOut, len(orderKeys))
	parallelFor(len(orderKeys), d.opts.workers(), func(i int) {
		p := orderKeys[i]
		outs[i] = d.integratePair(p.l, p.r, seen[p])
	})
	for _, o := range outs {
		for _, gc := range o.globals {
			d.addGlobal(gc)
		}
		d.Conflicts = append(d.Conflicts, o.conflicts...)
	}
}

// pairOut is one class pair's contribution, collected privately by a
// pool worker and merged in pair order.
type pairOut struct {
	globals   []GlobalConstraint
	conflicts []Conflict
}

// pathsUsed collects the full dotted attribute paths a formula mentions
// (publisher.name, not just publisher).
func pathsUsed(n expr.Node) map[string]bool {
	out := map[string]bool{}
	expr.Walk(n, func(x expr.Node) bool {
		switch x.(type) {
		case expr.Path, expr.Ident:
			if p, ok := expr.PathString(x); ok {
				out[p] = true
				return false // don't descend into sub-paths
			}
		}
		return true
	})
	return out
}

// integratePair integrates one (local, remote) class pair's constraint
// sets. It reads only shared immutable state plus the concurrency-safe
// Checker, and returns its contribution for ordered merging.
func (d *Derivation) integratePair(localClass, remoteClass, where string) pairOut {
	c := d.View.Conformed
	var out pairOut
	lCons := c.ConsOn(LocalSide, localClass, schema.ObjectConstraint)
	rCons := c.ConsOn(RemoteSide, remoteClass, schema.ObjectConstraint)
	lGlobal := d.View.GlobalName(LocalSide, localClass)
	rGlobal := d.View.GlobalName(RemoteSide, remoteClass)
	pairClasses := []string{lGlobal, rGlobal}

	var merged []expr.Node // integrated constraints for merged objects

	// Objective constraints are global (scope all: they hold beyond the
	// defining database's context by definition).
	for _, con := range lCons {
		if con.Status == Objective && !con.Imperfect {
			out.globals = append(out.globals, GlobalConstraint{
				Classes: []string{lGlobal}, Scope: ScopeAll,
				Kind: schema.ObjectConstraint, Expr: con.Expr,
				Origin: []ConKey{con.Key}, Derivation: "objective",
			})
			merged = append(merged, con.Expr)
		}
	}
	for _, con := range rCons {
		if con.Status == Objective && !con.Imperfect {
			out.globals = append(out.globals, GlobalConstraint{
				Classes: []string{rGlobal}, Scope: ScopeAll,
				Kind: schema.ObjectConstraint, Expr: con.Expr,
				Origin: []ConKey{con.Key}, Derivation: "objective",
			})
			merged = append(merged, con.Expr)
		}
	}

	// Subjective constraints still hold for objects present on one side
	// only (their global state is entirely that side's state).
	for _, con := range lCons {
		if con.Status == Subjective && !con.Imperfect {
			out.globals = append(out.globals, GlobalConstraint{
				Classes: []string{lGlobal}, Scope: ScopeLocalOnly,
				Kind: schema.ObjectConstraint, Expr: con.Expr,
				Origin: []ConKey{con.Key}, Derivation: "subjective-single-source",
			})
		}
	}
	for _, con := range rCons {
		if con.Status == Subjective && !con.Imperfect {
			out.globals = append(out.globals, GlobalConstraint{
				Classes: []string{rGlobal}, Scope: ScopeRemoteOnly,
				Kind: schema.ObjectConstraint, Expr: con.Expr,
				Origin: []ConKey{con.Key}, Derivation: "subjective-single-source",
			})
		}
	}

	// Derivation from subjective restrictions (§5.2.1's necessary
	// conditions, via the decision-function transformers).
	lRestr := d.restrictions(lCons)
	rRestr := d.restrictions(rCons)
	for _, lr := range lRestr {
		for _, rr := range rRestr {
			if lr.r.Path != rr.r.Path {
				continue
			}
			gc, ok := d.combine(lr, rr, pairClasses)
			if !ok {
				continue
			}
			out.globals = append(out.globals, gc)
			merged = append(merged, gc.Expr)
		}
	}

	// Explicit conflict: the integrated set for merged objects is
	// inconsistent.
	if len(merged) > 0 && d.Checker.Conflicting(merged...) == logic.Yes {
		out.conflicts = append(out.conflicts, Conflict{
			Kind:   ConflictExplicit,
			Where:  where,
			Detail: fmt.Sprintf("integrated object constraints for merged %s/%s objects are inconsistent", localClass, remoteClass),
			Suggestions: []Suggestion{
				{Kind: SuggestMarkSubjective, Text: "declare one of the conflicting constraints subjective"},
				{Kind: SuggestStrengthenRule, Text: "restrict the object comparison rule: conflicting constraints indicate the objects are not truly equivalent"},
				{Kind: SuggestChangeDecision, Text: "change the decision functions of the involved properties"},
			},
		})
	}

	// Implicit conflicts: an objective constraint over a property with a
	// conflict-ignoring decision function is only guaranteed if the other
	// side entails it too.
	out.conflicts = append(out.conflicts, d.implicitConflicts(lCons, rCons, LocalSide, localClass, remoteClass, where)...)
	out.conflicts = append(out.conflicts, d.implicitConflicts(rCons, lCons, RemoteSide, remoteClass, localClass, where)...)
	return out
}

// restriction pairs a restriction with its constraint of origin.
type restrWithKey struct {
	r   *logic.Restriction
	key ConKey
}

// restrictions extracts derivable restrictions from the subjective,
// non-imperfect constraints.
func (d *Derivation) restrictions(cons []CCon) []restrWithKey {
	var out []restrWithKey
	for _, con := range cons {
		if con.Status != Subjective || con.Imperfect {
			continue
		}
		for _, n := range logic.Normalize(con.Expr) {
			if r, ok := logic.ExtractRestriction(n); ok {
				out = append(out, restrWithKey{r: r, key: con.Key})
			}
		}
	}
	return out
}

// combine merges a local and a remote restriction on the same conformed
// path through the property's decision function, enforcing the paper's
// conditions (1) and (2).
func (d *Derivation) combine(lr, rr restrWithKey, classes []string) (GlobalConstraint, bool) {
	path := lr.r.Path
	pe := d.propEqByPath(path)
	if pe == nil {
		return GlobalConstraint{}, false
	}
	df := pe.DF
	// Condition (1): conflict-avoiding functions propagate nothing (the
	// subjective side plays no role in the global value). Conflict-
	// ignoring functions leave both sides objective, so their presence
	// among *subjective* restrictions means the constraint was declared
	// subjective by design — nothing to derive either.
	if df.Kind() == ConflictAvoiding || df.Kind() == ConflictIgnoring {
		return GlobalConstraint{}, false
	}
	// Guards must range over objective properties only; otherwise the
	// guard's own global value is not determined by either side.
	guard, ok := d.combineGuards(lr.r.Guard, rr.r.Guard)
	if !ok {
		return GlobalConstraint{}, false
	}

	var body expr.Node
	switch {
	case lr.r.IsSet() && rr.r.IsSet():
		set, ok := combineSets(df, *lr.r.Set, *rr.r.Set)
		if !ok {
			return GlobalConstraint{}, false
		}
		res := logic.Restriction{Path: path, Set: &set}
		body = res.ToExpr()
	case !lr.r.IsSet() && !rr.r.IsSet():
		res, ok := combineBounds(df, lr.r, rr.r)
		if !ok {
			return GlobalConstraint{}, false
		}
		body = res.ToExpr()
	default:
		return GlobalConstraint{}, false
	}
	if guard != nil {
		body = expr.Binary{Op: expr.OpImplies, L: guard, R: body}
	}
	return GlobalConstraint{
		Classes: classes, Scope: ScopeMerged,
		Kind: schema.ObjectConstraint, Expr: body,
		Origin:     []ConKey{lr.key, rr.key},
		Derivation: "derived(" + df.Name() + ")",
	}, true
}

// propEqByPath resolves the property equivalence for a conformed path.
func (d *Derivation) propEqByPath(path string) *PropEq {
	name := path
	if i := strings.LastIndex(path, "."); i >= 0 {
		name = path[i+1:]
	}
	for _, pe := range d.View.Conformed.Spec.PropEqs {
		if pe.Conformed == name {
			return pe
		}
	}
	return nil
}

// combineGuards conjoins guards, verifying they involve objective
// properties only.
func (d *Derivation) combineGuards(a, b expr.Node) (expr.Node, bool) {
	check := func(g expr.Node) bool {
		if g == nil {
			return true
		}
		for attr := range expr.AttrsUsed(g) {
			root := attr
			if i := strings.Index(root, "."); i >= 0 {
				root = root[:i]
			}
			if pe := d.propEqByPath(attr); pe != nil && (pe.LocalSubjective || pe.RemoteSubjective) {
				return false
			}
			if pe := d.propEqByPath(root); pe != nil && (pe.LocalSubjective || pe.RemoteSubjective) {
				return false
			}
		}
		return true
	}
	if !check(a) || !check(b) {
		return nil, false
	}
	switch {
	case a == nil:
		return b, true
	case b == nil:
		return a, true
	case expr.Equal(a, b):
		return a, true
	default:
		return expr.Binary{Op: expr.OpAnd, L: a, R: b}, true
	}
}

// combineSets applies the decision function pairwise over two finite
// domains: trav_reimb ∈ {10,20} × {14,24} under avg → {12,17,22}.
func combineSets(df DecisionFunc, a, b object.Set) (object.Set, bool) {
	var elems []object.Value
	for _, x := range a.Elems() {
		for _, y := range b.Elems() {
			v, ok := df.CombineVals(x, y)
			if !ok {
				return object.Set{}, false
			}
			elems = append(elems, v)
		}
	}
	return object.NewSet(elems...), true
}

// combineBounds lifts the decision function over interval restrictions.
func combineBounds(df DecisionFunc, a, b *logic.Restriction) (*logic.Restriction, bool) {
	dir := func(op expr.Op) (lower, upper, eq bool) {
		switch op {
		case expr.OpGe, expr.OpGt:
			return true, false, false
		case expr.OpLe, expr.OpLt:
			return false, true, false
		case expr.OpEq:
			return false, false, true
		default:
			return false, false, false
		}
	}
	al, au, ae := dir(a.Op)
	bl, bu, be := dir(b.Op)
	av, aok := object.AsFloat(a.Val)
	bv, bok := object.AsFloat(b.Val)

	switch {
	case ae && be:
		v, ok := df.CombineVals(a.Val, b.Val)
		if !ok {
			return nil, false
		}
		return &logic.Restriction{Path: a.Path, Op: expr.OpEq, Val: v}, true
	case (al || ae) && (bl || be):
		if !aok || !bok {
			return nil, false
		}
		lo, ok := df.CombineLower(av, bv)
		if !ok {
			return nil, false
		}
		op := expr.OpGe
		if a.Op == expr.OpGt && b.Op == expr.OpGt {
			op = expr.OpGt
		}
		return &logic.Restriction{Path: a.Path, Op: op, Val: numVal(lo, a.Val, b.Val)}, true
	case (au || ae) && (bu || be):
		if !aok || !bok {
			return nil, false
		}
		hi, ok := df.CombineUpper(av, bv)
		if !ok {
			return nil, false
		}
		op := expr.OpLe
		if a.Op == expr.OpLt && b.Op == expr.OpLt {
			op = expr.OpLt
		}
		return &logic.Restriction{Path: a.Path, Op: op, Val: numVal(hi, a.Val, b.Val)}, true
	default:
		return nil, false
	}
}

func numVal(f float64, a, b object.Value) object.Value {
	if a.Kind() == object.KindInt && b.Kind() == object.KindInt && f == float64(int64(f)) {
		return object.Int(int64(f))
	}
	return object.Real(f)
}

// implicitConflicts detects §5.2.1's implicit conflicts: objective
// constraints over conflict-ignoring properties whose counterpart side
// offers no guarantee. It returns the conflicts rather than appending,
// so pair workers can run concurrently.
func (d *Derivation) implicitConflicts(cons, otherCons []CCon, side Side, class, otherClass, where string) []Conflict {
	var out []Conflict
	other := exprsOf(otherCons)
	for _, con := range cons {
		if con.Status != Objective || con.Imperfect {
			continue
		}
		var ignoring []string
		for attr := range pathsUsed(con.Expr) {
			if pe := d.propEqByPath(attr); pe != nil && pe.DF.Kind() == ConflictIgnoring {
				ignoring = append(ignoring, attr)
			}
		}
		if len(ignoring) == 0 {
			continue
		}
		sort.Strings(ignoring)
		if d.Checker.Entails(other, con.Expr) == logic.Yes {
			continue // the other side guarantees it
		}
		out = append(out, Conflict{
			Kind:  ConflictImplicit,
			Where: where,
			Detail: fmt.Sprintf("objective constraint %s on %s uses conflict-ignoring properties %v; %s does not guarantee it, so a merged object may violate it",
				con.Key, class, ignoring, otherClass),
			Involved: []ConKey{con.Key},
			Suggestions: []Suggestion{
				{Kind: SuggestChangeDecision, Text: fmt.Sprintf("change the decision function on %v from any to trust(%s)", ignoring, d.View.Conformed.Spec.DB(side).Schema.Name)},
				{Kind: SuggestMarkSubjective, Text: fmt.Sprintf("declare %s subjective", con.Key)},
			},
		})
	}
	return out
}

// classConstraints implements §5.2.2: class constraints are subjective by
// default; classes with objective extension keep theirs; key constraints
// propagate under the key-to-key rule condition.
func (d *Derivation) classConstraints() {
	c := d.View.Conformed
	for _, side := range []Side{LocalSide, RemoteSide} {
		db := c.Spec.DB(side).Schema
		for _, cls := range db.Classes() {
			ccs := c.ConsOn(side, cls.Name, schema.ClassConstraint)
			if len(ccs) == 0 {
				continue
			}
			gname := d.View.GlobalName(side, cls.Name)
			objExt := d.objectiveExtension(side, cls.Name)
			for _, con := range ccs {
				if con.Imperfect {
					continue
				}
				switch {
				case objExt:
					d.addGlobal(GlobalConstraint{
						Classes: []string{gname}, Scope: ScopeAll,
						Kind: schema.ClassConstraint, Expr: con.Expr,
						Origin: []ConKey{con.Key}, Derivation: "objective-extension",
					})
				case isKeyCon(con) && d.keyPropagates(side, cls.Name, con):
					d.addGlobal(GlobalConstraint{
						Classes: []string{gname}, Scope: ScopeAll,
						Kind: schema.ClassConstraint, Expr: con.Expr,
						Origin: []ConKey{con.Key}, Derivation: "key-propagation",
					})
				default:
					d.Notes = append(d.Notes, fmt.Sprintf(
						"class constraint %s not propagated (class constraints are subjective by default, §5.2.2)", con.Key))
				}
			}
		}
	}
}

func isKeyCon(con CCon) bool {
	_, ok := con.Expr.(expr.Key)
	return ok
}

// objectiveExtension reports whether a class's global extension equals
// its local extension: no equality rule relates the class and no
// similarity rule targets it (§5.2.2).
func (d *Derivation) objectiveExtension(side Side, class string) bool {
	c := d.View.Conformed
	db := c.Spec.DB(side).Schema
	related := func(ruleClass string) bool {
		return db.IsA(class, ruleClass) || db.IsA(ruleClass, class)
	}
	for _, r := range c.Spec.EqRules {
		if side == LocalSide && related(r.LocalClass) {
			return false
		}
		if side == RemoteSide && related(r.RemoteClass) {
			return false
		}
	}
	for _, r := range c.ImpliedEq {
		if side == LocalSide && related(r.LocalClass) {
			return false
		}
		if side == RemoteSide && related(r.RemoteClass) {
			return false
		}
	}
	for _, r := range c.Spec.SimRules {
		if r.SrcSide.Other() == side && related(r.Target) {
			return false
		}
	}
	for _, dr := range c.Spec.DescRules {
		if dr.ValueSide.Other() == side && related(dr.ObjectClass) {
			return false
		}
	}
	return true
}

// keyPropagates implements the paper's key-constraint exception: every
// equality rule on the class is key-to-key, and similarity rules only
// import objects from classes that have equality rules themselves.
func (d *Derivation) keyPropagates(side Side, class string, con CCon) bool {
	c := d.View.Conformed
	key, ok := con.Expr.(expr.Key)
	if !ok || len(key.Attrs) != 1 {
		return false
	}
	db := c.Spec.DB(side).Schema
	related := func(ruleClass string) bool {
		return db.IsA(class, ruleClass) || db.IsA(ruleClass, class)
	}
	otherDB := c.Spec.DB(side.Other()).Schema

	classHasEq := false
	for _, r := range c.Spec.EqRules {
		ruleClass, otherClass := r.LocalClass, r.RemoteClass
		myVar, otherVar := r.LocalVar, r.RemoteVar
		if side == RemoteSide {
			ruleClass, otherClass = r.RemoteClass, r.LocalClass
			myVar, otherVar = r.RemoteVar, r.LocalVar
		}
		if !related(ruleClass) {
			continue
		}
		classHasEq = true
		// The rule's whole condition must be a single equality between
		// this class's key and a key of the other class.
		if len(r.Inter) != 1 || len(r.IntraLocal)+len(r.IntraRemote) != 0 {
			return false
		}
		a, b, ok := equiJoinAttrs(r.Inter, myVar, otherVar)
		if !ok || a != key.Attrs[0] {
			return false
		}
		if !isKeyOf(c, side.Other(), otherDB, otherClass, b) {
			return false
		}
	}
	if !classHasEq {
		return false
	}
	// Similarity rules importing into this class must come from classes
	// that have (key-to-key) equality rules as well.
	for _, r := range c.Spec.SimRules {
		if r.SrcSide.Other() != side || !related(r.Target) {
			continue
		}
		srcHasEq := false
		srcDB := c.Spec.DB(r.SrcSide).Schema
		for _, er := range c.Spec.EqRules {
			ruleClass := er.RemoteClass
			if r.SrcSide == LocalSide {
				ruleClass = er.LocalClass
			}
			if srcDB.IsA(r.SrcClass, ruleClass) || srcDB.IsA(ruleClass, r.SrcClass) {
				srcHasEq = true
				break
			}
		}
		if !srcHasEq {
			return false
		}
	}
	return true
}

// isKeyOf reports whether attr is declared a key of the class (via a key
// class constraint on its chain).
func isKeyOf(c *Conformed, side Side, db *schema.Database, class, attr string) bool {
	for _, con := range c.ConsOn(side, class, schema.ClassConstraint) {
		if k, ok := con.Expr.(expr.Key); ok && len(k.Attrs) == 1 && k.Attrs[0] == attr {
			return true
		}
	}
	// Key constraints may live on superclasses (Item.cc1 covers
	// Proceedings).
	for _, super := range db.Supers(class) {
		for _, con := range c.ConsOn(side, super, schema.ClassConstraint) {
			if k, ok := con.Expr.(expr.Key); ok && len(k.Attrs) == 1 && k.Attrs[0] == attr {
				return true
			}
		}
	}
	return false
}

// databaseConstraints implements §5.2.3: database constraints are
// regarded as subjective and are not propagated.
func (d *Derivation) databaseConstraints() {
	for _, con := range d.View.Conformed.Cons {
		if con.Kind == schema.DatabaseConstraint {
			d.Notes = append(d.Notes, fmt.Sprintf(
				"database constraint %s not propagated (database constraints are subjective, §5.2.3)", con.Key))
		}
	}
}

// approxSimilarity implements §5.2.1 for approximate similarity: the
// virtual common superclass carries the disjunction Ω ∨ Ω', and the
// horizontal-fragmentation pattern (Ω ⊨ φ') is reported. Runs after
// simRules (it consumes DerivedOnSim); rules fan out across the pool
// and merge in declaration order.
func (d *Derivation) approxSimilarity() {
	c := d.View.Conformed
	type approxOut struct {
		globals []GlobalConstraint
		notes   []string
	}
	rules := c.Spec.SimRules
	outs := make([]approxOut, len(rules))
	parallelFor(len(rules), d.opts.workers(), func(i int) {
		r := rules[i]
		if !r.Approximate() {
			return
		}
		targetSide := r.SrcSide.Other()
		tgt := exprsOf(c.ConsOn(targetSide, r.Target, schema.ObjectConstraint))
		src := d.DerivedOnSim[r.Raw.Name]
		if len(tgt) == 0 || len(src) == 0 {
			return
		}
		disj := expr.Binary{Op: expr.OpOr, L: conjoin(tgt), R: conjoin(src)}
		outs[i].globals = append(outs[i].globals, GlobalConstraint{
			Classes: []string{r.Virtual}, Scope: ScopeAll,
			Kind: schema.ObjectConstraint, Expr: disj,
			Derivation: "disjunction(approx-sim)",
		})
		for _, phi := range src {
			if d.Checker.Entails(tgt, phi) == logic.Yes {
				outs[i].notes = append(outs[i].notes, fmt.Sprintf(
					"approx rule %s: %s ⊨ %s — %s and %s are horizontal fragments of %s with membership condition %s",
					r.Raw.Name, r.Target, phi, r.Target, r.SrcClass, r.Virtual, phi))
			}
		}
	})
	for _, o := range outs {
		for _, gc := range o.globals {
			d.addGlobal(gc)
		}
		d.Notes = append(d.Notes, o.notes...)
	}
}

func conjoin(ns []expr.Node) expr.Node {
	if len(ns) == 0 {
		return expr.Lit{Val: object.Bool(true)}
	}
	out := ns[0]
	for _, n := range ns[1:] {
		out = expr.Binary{Op: expr.OpAnd, L: out, R: n}
	}
	return out
}

// addGlobal appends a global constraint, deduplicating identical entries
// (the same objective constraint can surface through several rules).
func (d *Derivation) addGlobal(gc GlobalConstraint) {
	for _, have := range d.Global {
		if have.Derivation == gc.Derivation && have.Scope == gc.Scope &&
			expr.Equal(have.Expr, gc.Expr) && sameClasses(have.Classes, gc.Classes) {
			return
		}
	}
	d.Global = append(d.Global, gc)
}

func sameClasses(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// GlobalFor returns the global constraints applicable to a global class,
// filtered by scope.
func (d *Derivation) GlobalFor(class string, scopes ...Scope) []GlobalConstraint {
	want := map[Scope]bool{}
	for _, s := range scopes {
		want[s] = true
	}
	var out []GlobalConstraint
	for _, gc := range d.Global {
		if len(scopes) > 0 && !want[gc.Scope] {
			continue
		}
		for _, cl := range gc.Classes {
			if cl == class {
				out = append(out, gc)
				break
			}
		}
	}
	return out
}
