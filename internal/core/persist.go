package core

import (
	"encoding/json"
	"fmt"

	"interopdb/internal/expr"
)

// Derivation persistence (DESIGN.md §13). The checkpoint does not
// restore a Derivation directly — a warm start re-runs derivation over
// the re-built schemas with the imported memo, so every verdict is a
// cache hit — but it does persist the derived global constraint set so
// recovery can VERIFY the re-derived federation matches the pre-crash
// one. A mismatch means the code or fixtures changed under the data
// directory; recovery surfaces it instead of silently serving under
// different constraints than the WAL's batches were validated against.

// constraintExport is one persisted global constraint.
type constraintExport struct {
	Classes    []string        `json:"classes,omitempty"`
	Scope      int             `json:"scope"`
	Kind       int             `json:"kind"`
	Expr       json.RawMessage `json:"expr"`
	Origin     []ConKey        `json:"origin,omitempty"`
	Derivation string          `json:"derivation,omitempty"`
	Provenance []string        `json:"provenance,omitempty"`
}

// ExportDerivation serializes the derivation's global constraint set in
// its deterministic derivation order, expressions through expr's
// structural codec.
func ExportDerivation(d *Derivation) ([]byte, error) {
	out := make([]constraintExport, 0, len(d.Global))
	for i, gc := range d.Global {
		eb, err := expr.EncodeNode(gc.Expr)
		if err != nil {
			return nil, fmt.Errorf("derivation export: constraint %d: %w", i, err)
		}
		out = append(out, constraintExport{
			Classes:    gc.Classes,
			Scope:      int(gc.Scope),
			Kind:       int(gc.Kind),
			Expr:       eb,
			Origin:     gc.Origin,
			Derivation: gc.Derivation,
			Provenance: gc.Provenance,
		})
	}
	return json.Marshal(out)
}

// VerifyDerivation checks a freshly re-derived Derivation against a
// persisted export: same constraints, same order, same provenance,
// structurally equal expressions. Returns nil on match.
func VerifyDerivation(d *Derivation, data []byte) error {
	var want []constraintExport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("derivation verify: decode: %w", err)
	}
	if len(want) != len(d.Global) {
		return fmt.Errorf("derivation verify: %d global constraints re-derived, checkpoint has %d", len(d.Global), len(want))
	}
	for i, w := range want {
		g := d.Global[i]
		if !equalStrings(w.Classes, g.Classes) || w.Scope != int(g.Scope) || w.Kind != int(g.Kind) ||
			w.Derivation != g.Derivation || !equalStrings(w.Provenance, g.Provenance) || !equalConKeys(w.Origin, g.Origin) {
			return fmt.Errorf("derivation verify: constraint %d metadata diverged (re-derived %s)", i, g.String())
		}
		wexpr, err := expr.DecodeNode(w.Expr)
		if err != nil {
			return fmt.Errorf("derivation verify: constraint %d: %w", i, err)
		}
		if !expr.Equal(wexpr, g.Expr) {
			return fmt.Errorf("derivation verify: constraint %d expression diverged (re-derived %s)", i, g.String())
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalConKeys(a, b []ConKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
