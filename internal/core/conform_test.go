package core

import (
	"strings"
	"testing"

	"interopdb/internal/fixture"
	"interopdb/internal/object"
	"interopdb/internal/schema"
	"interopdb/internal/store"
	"interopdb/internal/tm"
)

func fig1Conformed(t testing.TB, opt fixture.Options) *Conformed {
	local, remote := fixture.Figure1Stores(opt)
	if vs := local.CheckAll(); len(vs) != 0 {
		t.Fatalf("local fixture inconsistent: %v", vs)
	}
	if vs := remote.CheckAll(); len(vs) != 0 {
		t.Fatalf("remote fixture inconsistent: %v", vs)
	}
	s := fig1Spec(t)
	c, err := Conform(s, local, remote)
	if err != nil {
		t.Fatalf("Conform: %v", err)
	}
	return c
}

// findCon locates a conformed constraint by its original key.
func findCon(t testing.TB, c *Conformed, key ConKey) CCon {
	t.Helper()
	for _, con := range c.Cons {
		if con.Key == key {
			return con
		}
	}
	t.Fatalf("conformed constraint %s not found", key)
	return CCon{}
}

// TestE4ConformVirtPublisher reproduces §4's first example: Publication's
// oc2 "publisher in KNOWNPUBLISHERS" is re-allocated to the virtual class
// VirtPublisher as "name in KNOWNPUBLISHERS".
func TestE4ConformVirtPublisher(t *testing.T) {
	c := fig1Conformed(t, fixture.Options{})
	con := findCon(t, c, ConKey{"CSLibrary", "Publication", "oc2"})
	if con.Class != "VirtPublisher" {
		t.Errorf("oc2 should be re-allocated to VirtPublisher, got %s", con.Class)
	}
	if got := con.Expr.String(); got != "name in KNOWNPUBLISHERS" {
		t.Errorf("conformed oc2 = %q, want %q", got, "name in KNOWNPUBLISHERS")
	}
	if !strings.Contains(con.Note, "re-allocated") {
		t.Errorf("note = %q", con.Note)
	}
	// The virtual class exists on the local side with the conformed
	// attribute name.
	vc, ok := c.LocalSchema.Class("VirtPublisher")
	if !ok || !vc.Virtual {
		t.Fatal("VirtPublisher class missing")
	}
	if a, _, ok := c.LocalSchema.ResolveAttr("VirtPublisher", "name"); !ok || !a.Type.(object.Type).EqualType(object.TString) {
		t.Error("VirtPublisher.name missing or mistyped")
	}
	// Publication.publisher is now a reference to the virtual class.
	a, _, _ := c.LocalSchema.ResolveAttr("Publication", "publisher")
	if ct, ok := a.Type.(object.ClassType); !ok || ct.Class != "VirtPublisher" {
		t.Errorf("Publication.publisher conformed type = %v", a.Type)
	}
}

// TestE4ConformRatingScale reproduces §4's second example: RefereedPubl's
// oc1 "rating >= 2" conformed through multiply(2) becomes "rating >= 4".
func TestE4ConformRatingScale(t *testing.T) {
	c := fig1Conformed(t, fixture.Options{})
	con := findCon(t, c, ConKey{"CSLibrary", "RefereedPubl", "oc1"})
	if got := con.Expr.String(); got != "rating >= 4" {
		t.Errorf("conformed RefereedPubl.oc1 = %q, want %q", got, "rating >= 4")
	}
	// NonRefereedPubl.oc1: rating <= 3 → rating <= 6.
	con = findCon(t, c, ConKey{"CSLibrary", "NonRefereedPubl", "oc1"})
	if got := con.Expr.String(); got != "rating <= 6" {
		t.Errorf("conformed NonRefereedPubl.oc1 = %q, want %q", got, "rating <= 6")
	}
	// The class constraint's aggregate converts too: avg rating < 4 → < 8.
	con = findCon(t, c, ConKey{"CSLibrary", "ScientificPubl", "cc1"})
	if got := con.Expr.String(); !strings.Contains(got, "< 8") {
		t.Errorf("conformed ScientificPubl.cc1 = %q, want avg < 8", got)
	}
	if con.Imperfect {
		t.Errorf("avg commutes with multiply(2); should not be imperfect: %s", con.Note)
	}
	// Remote constraints keep their scale (cf' = id).
	con = findCon(t, c, ConKey{"Bookseller", "Proceedings", "oc2"})
	if got := con.Expr.String(); got != "ref? = true implies rating >= 7" {
		t.Errorf("conformed Proceedings.oc2 = %q", got)
	}
}

// TestConformAttributeRenames checks §4 subtask 2: ourprice becomes
// libprice, editors becomes authors.
func TestConformAttributeRenames(t *testing.T) {
	c := fig1Conformed(t, fixture.Options{})
	con := findCon(t, c, ConKey{"CSLibrary", "Publication", "oc1"})
	if got := con.Expr.String(); got != "libprice <= shopprice" {
		t.Errorf("conformed Publication.oc1 = %q, want %q", got, "libprice <= shopprice")
	}
	if con.Imperfect {
		t.Errorf("identity conversions should conform perfectly: %s", con.Note)
	}
	// Schema side.
	if _, _, ok := c.LocalSchema.ResolveAttr("Publication", "libprice"); !ok {
		t.Error("Publication.ourprice should be renamed to libprice")
	}
	if _, _, ok := c.LocalSchema.ResolveAttr("Publication", "ourprice"); ok {
		t.Error("ourprice should no longer exist")
	}
	if _, _, ok := c.LocalSchema.ResolveAttr("ScientificPubl", "authors"); !ok {
		t.Error("editors should be renamed to authors")
	}
	// Rating type conformed to the remote scale: 1..5 ×2 = 2..10.
	a, _, _ := c.LocalSchema.ResolveAttr("ScientificPubl", "rating")
	if rt, ok := a.Type.(object.RangeType); !ok || rt.Lo != 2 || rt.Hi != 10 {
		t.Errorf("conformed rating type = %v", a.Type)
	}
	// The reasoner sees the widened union of both sides' ranges.
	if rt, ok := c.Types["rating"].(object.RangeType); !ok || rt.Lo != 1 || rt.Hi != 10 {
		t.Errorf("Types[rating] = %v, want 1..10", c.Types["rating"])
	}
}

// TestConformObjects checks object conformation: values converted,
// renamed, and publisher values objectified into shared virtual objects.
func TestConformObjects(t *testing.T) {
	c := fig1Conformed(t, fixture.Options{})
	// The local VLDB proceedings: rating 4 → 8, ourprice 75 → libprice 75.
	var vldb *CObj
	for _, o := range c.Extent(LocalSide, "Publication") {
		if ttl, _ := o.Get("title"); ttl.Equal(object.Str("Proceedings of the 22nd VLDB Conference")) {
			vldb = o
		}
	}
	if vldb == nil {
		t.Fatal("local vldb96 not conformed")
	}
	if v, _ := vldb.Get("rating"); !v.Equal(object.Int(8)) {
		t.Errorf("conformed rating = %v, want 8", v)
	}
	if v, _ := vldb.Get("libprice"); !v.Equal(object.Real(75)) {
		t.Errorf("conformed libprice = %v", v)
	}
	if _, ok := vldb.Get("ourprice"); ok {
		t.Error("ourprice should be renamed away")
	}
	if v, ok := vldb.Get("authors"); !ok || v.(object.Set).Len() != 2 {
		t.Errorf("editors→authors = %v", v)
	}
	// publisher is a reference to a virtual object carrying name='IEEE'.
	pv, ok := vldb.Get("publisher")
	if !ok {
		t.Fatal("publisher missing")
	}
	ref, ok := pv.(object.Ref)
	if !ok {
		t.Fatalf("publisher should be a reference, got %v", pv)
	}
	vo, ok := c.Deref(ref)
	if !ok {
		t.Fatal("virtual publisher unresolvable")
	}
	if name, _ := vo.Get("name"); !name.Equal(object.Str("IEEE")) {
		t.Errorf("virtual publisher name = %v", name)
	}
	// Virtual objects are shared: 4 distinct publisher values → 4 objects
	// (IEEE, ACM, Springer, Addison-Wesley).
	if n := len(c.Objects(LocalSide, "VirtPublisher")); n != 4 {
		t.Errorf("VirtPublisher objects = %d, want 4", n)
	}
	// Conformed constraints evaluate over conformed objects: the moved
	// oc2 holds for every virtual publisher.
	for _, vo := range c.Objects(LocalSide, "VirtPublisher") {
		env := c.Env(vo)
		holds, err := env.EvalBool(findCon(t, c, ConKey{"CSLibrary", "Publication", "oc2"}).Expr)
		if err != nil || !holds {
			t.Errorf("conformed oc2 on %s: %v %v", vo, holds, err)
		}
	}
}

// TestConformImpliedEqRule checks that descriptivity conformation emits
// the implied equality rule between VirtPublisher and Publisher.
func TestConformImpliedEqRule(t *testing.T) {
	c := fig1Conformed(t, fixture.Options{})
	if len(c.ImpliedEq) != 1 {
		t.Fatalf("ImpliedEq = %d", len(c.ImpliedEq))
	}
	r := c.ImpliedEq[0]
	if r.LocalClass != "VirtPublisher" || r.RemoteClass != "Publisher" {
		t.Errorf("implied rule classes: %s / %s", r.LocalClass, r.RemoteClass)
	}
	if len(r.Inter) != 1 || r.Inter[0].String() != "O.name = R.name" {
		t.Errorf("implied rule condition: %v", r.Inter)
	}
}

// TestConformDecreasingConversion checks comparison flipping through a
// decreasing conversion.
func TestConformDecreasingConversion(t *testing.T) {
	localSpec := tm.MustParseDatabase(`
Database L
Class C
  attributes
    score : 1..5
  object constraints
    oc1: score >= 2
end C
`)
	remoteSpec := tm.MustParseDatabase(`
Database R
Class D
  attributes
    rank : 1..5
  object constraints
    oc1: rank <= 3
end D
`)
	// Local score 1..5 (5 best) maps onto remote rank 1..5 (1 best):
	// rank = 6 - score, i.e. linear(-1,6).
	ispec := tm.MustParseIntegration(`
integration L imports R
rule r1: Eq(X:C, Y:D) <= X.score = 6 - Y.rank
propeq(C.score, D.rank, linear(-1,6), id, min)
`)
	spec := MustCompile(localSpec, remoteSpec, ispec)
	ls := store.New(localSpec.Schema, nil)
	rs := store.New(remoteSpec.Schema, nil)
	ls.MustInsert("C", map[string]object.Value{"score": object.Int(4)})
	rs.MustInsert("D", map[string]object.Value{"rank": object.Int(2)})
	c, err := Conform(spec, ls, rs)
	if err != nil {
		t.Fatal(err)
	}
	con := findCon(t, c, ConKey{"L", "C", "oc1"})
	// score >= 2 under rank = 6-score becomes rank <= 4.
	if got := con.Expr.String(); got != "rank <= 4" {
		t.Errorf("decreasing conversion: %q, want %q", got, "rank <= 4")
	}
	// Object values convert: score 4 → rank 2.
	o := c.Extent(LocalSide, "C")[0]
	if v, _ := o.Get("rank"); !v.Equal(object.Int(2)) {
		t.Errorf("converted value = %v, want 2", v)
	}
}

// TestConformStoreMismatch rejects stores that do not match the spec.
func TestConformStoreMismatch(t *testing.T) {
	s := fig1Spec(t)
	wrong := store.New(schema.NewDatabase("Other"), nil)
	if _, err := Conform(s, wrong, wrong); err == nil {
		t.Error("mismatched stores should fail")
	}
}

// TestConsOnScoping: object constraints inherit along the chain; class
// constraints do not.
func TestConsOnScoping(t *testing.T) {
	c := fig1Conformed(t, fixture.Options{})
	ocs := c.ConsOn(RemoteSide, "Proceedings", schema.ObjectConstraint)
	names := map[string]bool{}
	for _, con := range ocs {
		names[con.Key.Class+"."+con.Key.Name] = true
	}
	for _, want := range []string{"Proceedings.oc1", "Proceedings.oc2", "Proceedings.oc3", "Item.oc1"} {
		if !names[want] {
			t.Errorf("ConsOn(Proceedings) missing %s; got %v", want, names)
		}
	}
	ccs := c.ConsOn(RemoteSide, "Proceedings", schema.ClassConstraint)
	if len(ccs) != 0 {
		t.Errorf("class constraints must not inherit: %v", ccs)
	}
	ccs = c.ConsOn(RemoteSide, "Item", schema.ClassConstraint)
	if len(ccs) != 1 || ccs[0].Key.Name != "cc1" {
		t.Errorf("Item class constraints: %v", ccs)
	}
}
