package core

import (
	"fmt"

	"interopdb/internal/expr"
	"interopdb/internal/logic"
	"interopdb/internal/object"
)

// conformer rewrites one constraint into conformed terms: attribute
// substitution, literal domain conversion (flipping comparisons through
// decreasing conversions), and aggregate-over renames. Conversions that
// cannot be carried through exactly mark the result imperfect; imperfect
// constraints are reported but excluded from derivation and entailment.
type conformer struct {
	c          *Conformed
	side       Side
	class      string // context class for self attributes ("" for db constraints)
	desc       map[string]map[string]*DescRule
	varClasses map[string]string
	notes      []string
	imperfect  bool
}

func (cf *conformer) note(format string, args ...any) {
	cf.notes = append(cf.notes, fmt.Sprintf(format, args...))
}

func (cf *conformer) flaw(format string, args ...any) {
	cf.imperfect = true
	cf.note(format, args...)
}

// pathRes is the result of resolving a (possibly dotted) attribute path.
type pathRes struct {
	node  expr.Node
	conv  ConvFunc // for value results
	class string   // non-empty when the result is an object of this class
	// descAttr names the virtual object's attribute to read when an
	// objectified (descriptivity) attribute is consumed as a value:
	// `publisher in KNOWNPUBLISHERS` becomes `publisher.name in ...`.
	descAttr string
	ok       bool
}

// node conforms an arbitrary formula node.
func (cf *conformer) node(n expr.Node) expr.Node {
	switch n := n.(type) {
	case expr.Binary:
		if n.Op.IsComparison() {
			return cf.cmp(n)
		}
		if n.Op.IsBool() {
			return expr.Binary{Op: n.Op, L: cf.node(n.L), R: cf.node(n.R)}
		}
		// Arithmetic at formula level: rename-only.
		return cf.renameOnly(n)
	case expr.Unary:
		if n.Op == expr.OpNot {
			return expr.Unary{Op: expr.OpNot, X: cf.node(n.X)}
		}
		return cf.renameOnly(n)
	case expr.In:
		return cf.member(n)
	case expr.Ident, expr.Path:
		// Bare boolean attribute used as a formula.
		if r := cf.resolvePath(n); r.ok && r.conv != nil {
			return r.node
		}
		return n
	case expr.Quant:
		inner := &conformer{
			c: cf.c, side: cf.side, class: cf.class, desc: cf.desc,
			varClasses: map[string]string{},
		}
		for k, v := range cf.varClasses {
			inner.varClasses[k] = v
		}
		for _, b := range n.Binders {
			inner.varClasses[b.Var] = b.Class
		}
		body := inner.node(n.Body)
		cf.notes = append(cf.notes, inner.notes...)
		cf.imperfect = cf.imperfect || inner.imperfect
		return expr.Quant{Binders: append([]expr.Binder(nil), n.Binders...), Body: body}
	case expr.Key:
		attrs := make([]string, len(n.Attrs))
		for i, a := range n.Attrs {
			attrs[i], _ = cf.c.conformedAttrName(cf.side, cf.class, a)
		}
		return expr.Key{Attrs: attrs}
	case expr.Call:
		args := make([]expr.Node, len(n.Args))
		for i, a := range n.Args {
			args[i] = cf.renameOnly(a)
		}
		return expr.Call{Fn: n.Fn, Args: args}
	case expr.Agg:
		agg, _ := cf.agg(n)
		return agg
	default:
		return n
	}
}

// cmp conforms a comparison, converting literals through the relevant
// conversion function.
func (cf *conformer) cmp(n expr.Binary) expr.Node {
	lNode, lConv, lConst := cf.side3(n.L)
	rNode, rConv, rConst := cf.side3(n.R)
	op := n.Op
	switch {
	case lConv != nil && rConst != nil:
		return cf.convertLit(op, lNode, lConv, rConst, false)
	case rConv != nil && lConst != nil:
		return cf.convertLit(op, rNode, rConv, lConst, true)
	case lConv != nil && rConv != nil:
		if lConv.Name() == rConv.Name() {
			switch lConv.Monotone() {
			case 1:
				return expr.Binary{Op: op, L: lNode, R: rNode}
			case -1:
				return expr.Binary{Op: op.Flip(), L: lNode, R: rNode}
			default:
				cf.flaw("comparison through non-monotone conversion %s kept unconverted", lConv.Name())
				return expr.Binary{Op: op, L: lNode, R: rNode}
			}
		}
		if lConv.Name() != "id" || rConv.Name() != "id" {
			cf.flaw("comparison between attributes with different conversions %s vs %s", lConv.Name(), rConv.Name())
		}
		return expr.Binary{Op: op, L: lNode, R: rNode}
	default:
		return expr.Binary{Op: op, L: lNode, R: rNode}
	}
}

// convertLit rewrites attr ⊙ c into attr' ⊙ cf(c); constLeft places the
// literal on the left side of the output.
func (cf *conformer) convertLit(op expr.Op, attrNode expr.Node, conv ConvFunc, c object.Value, constLeft bool) expr.Node {
	outOp := op
	lit := c
	if conv.Name() != "id" {
		switch conv.Monotone() {
		case 1, -1:
			nv, err := conv.Apply(c)
			if err != nil {
				cf.flaw("cannot convert literal %s through %s: %v", c, conv.Name(), err)
			} else {
				lit = nv
				if conv.Monotone() < 0 {
					outOp = op.Flip()
				}
			}
		default:
			cf.flaw("non-monotone conversion %s: literal %s kept", conv.Name(), c)
		}
	}
	if constLeft {
		return expr.Binary{Op: outOp, L: expr.Lit{Val: lit}, R: attrNode}
	}
	return expr.Binary{Op: outOp, L: attrNode, R: expr.Lit{Val: lit}}
}

// member conforms x in S.
func (cf *conformer) member(n expr.In) expr.Node {
	xNode, xConv, _ := cf.side3(n.X)
	if xConv == nil {
		xNode = cf.renameOnly(n.X)
		return expr.In{X: xNode, Set: cf.renameOnly(n.Set), Neg: n.Neg}
	}
	// Set side: literal sets convert elementwise; named constants only
	// pass through id conversions.
	if sv, ok := logic.FoldConst(n.Set); ok {
		if set, isSet := sv.(object.Set); isSet && xConv.Name() != "id" {
			elems := make([]expr.Node, 0, set.Len())
			bad := false
			for _, e := range set.Elems() {
				nv, err := xConv.Apply(e)
				if err != nil {
					bad = true
					break
				}
				elems = append(elems, expr.Lit{Val: nv})
			}
			if bad {
				cf.flaw("cannot convert set literal through %s", xConv.Name())
				return expr.In{X: xNode, Set: cf.renameOnly(n.Set), Neg: n.Neg}
			}
			return expr.In{X: xNode, Set: expr.SetLit{Elems: elems}, Neg: n.Neg}
		}
		return expr.In{X: xNode, Set: cf.renameOnly(n.Set), Neg: n.Neg}
	}
	if xConv.Name() != "id" {
		cf.flaw("membership over non-literal set with conversion %s", xConv.Name())
	}
	return expr.In{X: xNode, Set: cf.renameOnly(n.Set), Neg: n.Neg}
}

// side3 classifies a comparison operand: (renamed node, conversion) for
// attribute paths and aggregates, or a constant value.
func (cf *conformer) side3(n expr.Node) (expr.Node, ConvFunc, object.Value) {
	if v, ok := logic.FoldConst(n); ok {
		return n, nil, v
	}
	if r := cf.resolvePath(n); r.ok {
		if r.conv != nil {
			return r.node, r.conv, nil
		}
		if r.descAttr != "" {
			// Values of the virtual object were converted when it was
			// created, so the access itself is identity-converted.
			return expr.Path{Recv: r.node, Attr: r.descAttr}, ConvFunc(idFunc{}), nil
		}
	}
	if agg, ok := n.(expr.Agg); ok {
		nn, conv := cf.agg(agg)
		return nn, conv, nil
	}
	return cf.renameOnly(n), nil, nil
}

// agg conforms an aggregate: the Over attribute is renamed, and the
// aggregate's value conversion is returned when the conversion commutes
// with the aggregate (sum with pure scaling; avg/min/max with increasing
// linear maps).
func (cf *conformer) agg(n expr.Agg) (expr.Node, ConvFunc) {
	srcClass := cf.class
	if id, ok := n.Src.(expr.Ident); ok && id.Name != "self" {
		srcClass = id.Name
	}
	if n.Fn == "count" {
		return n, idFunc{}
	}
	name, conv := cf.c.conformedAttrName(cf.side, srcClass, n.Over)
	out := expr.Agg{Fn: n.Fn, Var: n.Var, Src: n.Src, Over: name}
	if conv.Name() == "id" {
		return out, idFunc{}
	}
	lf, ok := conv.(linearFunc)
	if !ok {
		cf.flaw("aggregate %s over %s: conversion %s does not commute", n.Fn, n.Over, conv.Name())
		return out, idFunc{}
	}
	switch n.Fn {
	case "sum":
		if lf.b != 0 {
			cf.flaw("sum over %s: offset conversion %s does not commute with sum", n.Over, conv.Name())
			return out, idFunc{}
		}
		return out, conv
	case "avg", "min", "max":
		if lf.a <= 0 {
			cf.flaw("%s over %s: decreasing conversion %s swaps min/max; kept unconverted", n.Fn, n.Over, conv.Name())
			return out, idFunc{}
		}
		return out, conv
	default:
		cf.flaw("aggregate %s: unsupported conversion %s", n.Fn, conv.Name())
		return out, idFunc{}
	}
}

// renameOnly rewrites attribute names without literal conversion; any
// non-identity conversion encountered makes the result imperfect.
func (cf *conformer) renameOnly(n expr.Node) expr.Node {
	switch n := n.(type) {
	case expr.Lit:
		return n
	case expr.SetLit:
		elems := make([]expr.Node, len(n.Elems))
		for i, e := range n.Elems {
			elems[i] = cf.renameOnly(e)
		}
		return expr.SetLit{Elems: elems}
	case expr.Ident, expr.Path:
		if r := cf.resolvePath(n); r.ok {
			if r.conv != nil && r.conv.Name() != "id" {
				cf.flaw("attribute with conversion %s used in an unconvertible context", r.conv.Name())
			}
			return r.node
		}
		return n
	case expr.Binary:
		return expr.Binary{Op: n.Op, L: cf.renameOnly(n.L), R: cf.renameOnly(n.R)}
	case expr.Unary:
		return expr.Unary{Op: n.Op, X: cf.renameOnly(n.X)}
	case expr.In:
		return expr.In{X: cf.renameOnly(n.X), Set: cf.renameOnly(n.Set), Neg: n.Neg}
	case expr.Call:
		args := make([]expr.Node, len(n.Args))
		for i, a := range n.Args {
			args[i] = cf.renameOnly(a)
		}
		return expr.Call{Fn: n.Fn, Args: args}
	case expr.Agg:
		out, _ := cf.agg(n)
		return out
	default:
		return n
	}
}

// resolvePath resolves an Ident or Path in the current context, renaming
// attributes and tracking class membership through reference attributes
// and objectified (descriptivity) attributes.
func (cf *conformer) resolvePath(n expr.Node) pathRes {
	switch n := n.(type) {
	case expr.Ident:
		if n.Name == "self" {
			if cf.class == "" {
				return pathRes{}
			}
			return pathRes{node: n, class: cf.class, ok: true}
		}
		if cls, ok := cf.varClasses[n.Name]; ok {
			return pathRes{node: n, class: cls, ok: true}
		}
		if cf.class == "" {
			return pathRes{}
		}
		return cf.attrOn(cf.class, n.Name, nil)
	case expr.Path:
		recv := cf.resolvePath(n.Recv)
		if !recv.ok {
			return pathRes{}
		}
		if recv.class == "" {
			// Attribute access on a converted value (tuple field): rename
			// is not defined; keep as-is, flag if converted.
			if recv.conv != nil && recv.conv.Name() != "id" {
				cf.flaw("attribute access through converted value %s", n.Recv)
			}
			return pathRes{node: expr.Path{Recv: recv.node, Attr: n.Attr}, conv: idFunc{}, ok: true}
		}
		return cf.attrOn(recv.class, n.Attr, recv.node)
	default:
		return pathRes{}
	}
}

// attrOn resolves attribute attr on class cls; base is the receiver node
// (nil for implicit self).
func (cf *conformer) attrOn(cls, attr string, base expr.Node) pathRes {
	db := cf.c.Spec.DB(cf.side).Schema
	a, owner, ok := db.ResolveAttr(cls, attr)
	if !ok {
		// A named constant or unknown: not a path.
		return pathRes{}
	}
	mk := func(name string) expr.Node {
		if base == nil {
			return expr.Ident{Name: name}
		}
		return expr.Path{Recv: base, Attr: name}
	}
	// Objectified attribute: now a reference to the virtual class. When
	// the rule describes a single value attribute, a value consumption of
	// the attribute reads the virtual object's conformed attribute. Under
	// a value view the attribute simply stays a value.
	if byClass, ok := cf.desc[owner]; ok {
		if dr, ok := byClass[attr]; ok {
			if dr.ValueView {
				return pathRes{node: mk(attr), conv: idFunc{}, ok: true}
			}
			res := pathRes{node: mk(attr), class: virtClassName(dr.ObjectClass), ok: true}
			if len(dr.ValueAttrs) == 1 {
				res.descAttr, _ = cf.c.conformedAttrName(cf.side, owner, attr)
			}
			return res
		}
	}
	if ct, ok := a.Type.(object.ClassType); ok {
		return pathRes{node: mk(attr), class: ct.Class, ok: true}
	}
	name, conv := cf.c.conformedAttrName(cf.side, cls, attr)
	return pathRes{node: mk(name), conv: conv, ok: true}
}
