package core

import (
	"fmt"
	"testing"

	"interopdb/internal/fixture"
	"interopdb/internal/object"
	"interopdb/internal/tm"
)

func integratedFigure1(t testing.TB, scale int) *Result {
	t.Helper()
	local, remote := fixture.Figure1Stores(fixture.Options{Scale: scale})
	res, err := Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	return res
}

// TestReclassifyIsFixpointOnUntouchedObjects: re-deriving the Sim-rule
// memberships of an object nobody updated must reproduce exactly the
// classification the integration pipeline computed.
func TestReclassifyIsFixpointOnUntouchedObjects(t *testing.T) {
	for _, scale := range []int{1, 10} {
		t.Run(fmt.Sprintf("scale=%d", scale), func(t *testing.T) {
			res := integratedFigure1(t, scale)
			v := res.View
			for _, g := range v.Objects {
				before := map[string]bool{}
				for c := range g.Classes {
					before[c] = true
				}
				changed, err := v.reclassify(g)
				if err != nil {
					t.Fatalf("reclassify g%d: %v", g.ID, err)
				}
				if len(changed) != 0 {
					t.Errorf("g%d: reclassify of untouched object changed classes %v (before %v, after %v)",
						g.ID, changed, before, g.Classes)
				}
			}
		})
	}
}

// TestApplyUpdateMovesAcrossSimMembership: flipping ref? moves a
// Bookseller proceedings across the r3 membership predicate into and out
// of RefereedPubl (and the emergent intersection subclass when one
// exists).
func TestApplyUpdateMovesAcrossSimMembership(t *testing.T) {
	res := integratedFigure1(t, 1)
	v := res.View

	// Find a remote-only proceedings currently in RefereedPubl via r3 (a
	// merged object would keep the membership through its local
	// constituent, which is value-independent).
	var target *GObj
	for _, g := range v.Extent("RefereedPubl") {
		if len(g.Parts[LocalSide]) == 0 && len(g.Parts[RemoteSide]) > 0 && g.Classes["Proceedings"] {
			target = g
			break
		}
	}
	if target == nil {
		t.Fatal("no refereed proceedings in the fixture")
	}
	inExt := func(class string, g *GObj) bool {
		for _, o := range v.Extent(class) {
			if o == g {
				return true
			}
		}
		return false
	}
	if !inExt("RefereedPubl", target) {
		t.Fatal("target not in RefereedPubl extent")
	}

	old, changed, err := v.ApplyUpdate(target, map[string]object.Value{"ref?": object.Bool(false)})
	if err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	if !old["ref?"].Equal(object.Bool(true)) {
		t.Errorf("old ref? = %v, want true", old["ref?"])
	}
	if target.Classes["RefereedPubl"] || inExt("RefereedPubl", target) {
		t.Error("object still member of RefereedPubl after ref? := false")
	}
	found := false
	for _, c := range changed {
		if c == "RefereedPubl" {
			found = true
		}
	}
	if !found {
		t.Errorf("changed classes %v do not include RefereedPubl", changed)
	}

	// Flip back: membership must be restored.
	if _, _, err := v.ApplyUpdate(target, map[string]object.Value{"ref?": object.Bool(true)}); err != nil {
		t.Fatalf("ApplyUpdate back: %v", err)
	}
	if !target.Classes["RefereedPubl"] || !inExt("RefereedPubl", target) {
		t.Error("membership not restored after ref? := true")
	}
}

// TestApplyDeleteRemovesEverywhere: a deleted object leaves every class
// extent, the object list, and the reference table; its ID is never
// reassigned to a later insert.
func TestApplyDeleteRemovesEverywhere(t *testing.T) {
	res := integratedFigure1(t, 1)
	v := res.View
	g := v.Extent("Proceedings")[0]
	id := g.ID
	classes := make([]string, 0, len(g.Classes))
	for c := range g.Classes {
		classes = append(classes, c)
	}
	var srcs []object.Ref
	for _, ms := range g.Parts {
		for _, m := range ms {
			srcs = append(srcs, m.Src)
		}
	}

	if _, err := v.ApplyDelete(g); err != nil {
		t.Fatalf("ApplyDelete: %v", err)
	}
	if _, ok := v.ByID(id); ok {
		t.Error("deleted object still resolvable by ID")
	}
	for _, cls := range classes {
		for _, o := range v.Extent(cls) {
			if o == g {
				t.Errorf("deleted object still in extent of %s", cls)
			}
		}
	}
	for _, src := range srcs {
		if got, ok := v.Deref(src); ok && got == any(g) {
			t.Errorf("deleted object still dereferencable via %v", src)
		}
	}
	for _, o := range v.Objects {
		if o == g {
			t.Error("deleted object still in Objects")
		}
	}

	// A later insert gets a fresh ID, not the deleted one.
	attrs := map[string]object.Value{"title": object.Str("fresh"), "isbn": object.Str("fresh-1")}
	ng, err := v.ApplyInsert("Proceedings", attrs, object.Ref{DB: "Bookseller", OID: 9999})
	if err != nil {
		t.Fatalf("ApplyInsert: %v", err)
	}
	if ng.ID == id {
		t.Errorf("deleted ID %d was reused", id)
	}
	if _, ok := v.ByID(ng.ID); !ok {
		t.Error("fresh insert not resolvable by ID")
	}

	// Double delete errors.
	if _, err := v.ApplyDelete(g); err == nil {
		t.Error("second ApplyDelete should fail")
	}
}
