package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"interopdb/internal/logic"
)

// Options configures how the integration pipeline executes. The zero
// value uses full hardware parallelism with memoized reasoning, which
// is always safe: every parallel stage collects per-unit outputs and
// merges them in a stable order, so Result.Report() is byte-identical
// to a sequential run.
type Options struct {
	// Parallelism bounds the worker pool that fans out class-pair
	// integration, constraint combination and similarity checks.
	// 0 means runtime.GOMAXPROCS(0); 1 runs fully sequentially.
	Parallelism int
	// NoMemo disables the reasoner's entailment/satisfiability cache.
	// Used by benchmarks quantifying the cache and by differential
	// tests; production runs should leave it false.
	NoMemo bool
	// Memo, when non-nil, is a shared verdict cache the derivation's
	// Checker consults instead of its private table, so entailment work
	// is reused across pipeline runs (a federation shares one Memo over
	// every pair integration its Attach calls perform). Ignored when
	// NoMemo is set. The caller is responsible for only sharing a Memo
	// between runs whose attribute typings agree (logic.Memo's contract).
	Memo *logic.Memo
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// parallelFor runs fn(i) for every i in [0, n) on at most `workers`
// goroutines. With one worker (or one unit) it runs inline on the
// caller's goroutine — the sequential path has zero scheduling cost and
// identical stack behavior to the pre-parallel code. fn must write only
// to its own index's slot in any shared output slice.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
