package core

import (
	"strings"
	"testing"

	"interopdb/internal/expr"
	"interopdb/internal/fixture"
	"interopdb/internal/object"
	"interopdb/internal/schema"
	"interopdb/internal/store"
	"interopdb/internal/tm"
)

// valueViewSpec is the Figure 1 integration with the object-value
// conflict settled the other way (§2.3): instead of objectifying the
// library's publisher values, the bookseller's Publisher objects are cast
// into complex values.
func valueViewSpec(t testing.TB) *tm.IntegrationSpec {
	t.Helper()
	src := tm.FigureOneIntegration + "\nvalueview r2\n"
	is, err := tm.ParseIntegration(src)
	if err != nil {
		t.Fatal(err)
	}
	return is
}

func valueViewResult(t testing.TB) *Result {
	t.Helper()
	local, remote := fixture.Figure1Stores(fixture.Options{})
	res, err := Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), valueViewSpec(t), local, remote, 1)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestValueViewHidesPublisherClass: under the value view there is no
// VirtPublisher, the Publisher class is hidden, and Item.publisher is a
// tuple-typed complex value.
func TestValueViewHidesPublisherClass(t *testing.T) {
	res := valueViewResult(t)
	c := res.Conformed
	if _, ok := c.LocalSchema.Class("VirtPublisher"); ok {
		t.Error("value view must not create a virtual class")
	}
	if !c.Hidden[RemoteSide]["Publisher"] {
		t.Error("Publisher should be hidden on the remote side")
	}
	if n := len(c.Extent(RemoteSide, "Publisher")); n != 0 {
		t.Errorf("hidden class extent = %d, want 0", n)
	}
	a, _, ok := c.RemoteSchema.ResolveAttr("Item", "publisher")
	if !ok {
		t.Fatal("Item.publisher missing")
	}
	tt, ok := a.Type.(object.TupleType)
	if !ok {
		t.Fatalf("Item.publisher conformed type = %v, want tuple", a.Type)
	}
	if _, ok := tt.Fields["name"]; !ok {
		t.Errorf("tuple type fields = %v", tt)
	}
	// Local Publication.publisher stays the declared string value.
	la, _, _ := c.LocalSchema.ResolveAttr("Publication", "publisher")
	if !la.Type.(object.Type).EqualType(object.TString) {
		t.Errorf("local publisher type = %v, want string", la.Type)
	}
}

// TestValueViewInlinesValues: remote items carry the publisher as an
// inline tuple; paths through it still evaluate.
func TestValueViewInlinesValues(t *testing.T) {
	res := valueViewResult(t)
	c := res.Conformed
	var vldb *CObj
	for _, o := range c.Extent(RemoteSide, "Proceedings") {
		if ttl, _ := o.Get("title"); ttl.Equal(object.Str("Proceedings of the 22nd VLDB Conference")) {
			vldb = o
		}
	}
	if vldb == nil {
		t.Fatal("remote vldb96 missing")
	}
	pv, _ := vldb.Get("publisher")
	tup, ok := pv.(object.Tuple)
	if !ok {
		t.Fatalf("publisher value = %v, want tuple", pv)
	}
	if !tup.Field("name").Equal(object.Str("IEEE")) {
		t.Errorf("tuple name = %v", tup.Field("name"))
	}
	if !tup.Field("location").Equal(object.Str("New York")) {
		t.Errorf("tuple location = %v", tup.Field("location"))
	}
	// Conformed constraint evaluation through the tuple: oc1 of
	// Proceedings references publisher.name.
	env := c.Env(vldb)
	holds, err := env.EvalBool(expr.MustParse("publisher.name = 'IEEE' implies ref? = true"))
	if err != nil || !holds {
		t.Errorf("constraint through tuple: %v %v", holds, err)
	}
}

// TestValueViewHidesConstraints: db1 quantifies over the hidden Publisher
// class and is hidden with it (§4 subtask 1, hiding direction).
func TestValueViewHidesConstraints(t *testing.T) {
	res := valueViewResult(t)
	var db1 *CCon
	for i := range res.Conformed.Cons {
		if res.Conformed.Cons[i].Key == (ConKey{"Bookseller", "", "db1"}) {
			db1 = &res.Conformed.Cons[i]
		}
	}
	if db1 == nil {
		t.Fatal("db1 missing from conformed constraints")
	}
	if !db1.Hidden {
		t.Errorf("db1 should be hidden: %+v", *db1)
	}
	if !strings.Contains(db1.Note, "cast into values") {
		t.Errorf("note = %q", db1.Note)
	}
	// Hidden constraints never reach derivation.
	for _, gc := range res.Derivation.Global {
		if strings.Contains(gc.Expr.String(), "forall") {
			t.Errorf("hidden constraint leaked: %v", gc)
		}
	}
}

// TestValueViewConstraintsOfHiddenClass: constraints declared on a hidden
// class are themselves hidden.
func TestValueViewConstraintsOfHiddenClass(t *testing.T) {
	localSpec := tm.MustParseDatabase(`
Database L
Class Doc
  attributes
    pub : string
end Doc
`)
	remoteSpec := tm.MustParseDatabase(`
Database R
Class Pub
  attributes
    name : string
    rank : int
  object constraints
    oc1: rank >= 1
end Pub
Class Doc2
  attributes
    pub : Pub
end Doc2
`)
	ispec := tm.MustParseIntegration(`
integration L imports R
rule r1: Eq(D:Doc.{pub}, P:Pub) <= D.pub = P.name
propeq(Doc.pub, Pub.name, id, id, any)
valueview r1
`)
	ls := store.New(localSpec.Schema, nil)
	rs := store.New(remoteSpec.Schema, nil)
	pub := rs.MustInsert("Pub", map[string]object.Value{"name": object.Str("X"), "rank": object.Int(3)})
	rs.MustInsert("Doc2", map[string]object.Value{"pub": object.Ref{DB: "R", OID: pub}})
	ls.MustInsert("Doc", map[string]object.Value{"pub": object.Str("X")})
	res, err := Integrate(localSpec, remoteSpec, ispec, ls, rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	var oc1 *CCon
	for i := range res.Conformed.Cons {
		if res.Conformed.Cons[i].Key == (ConKey{"R", "Pub", "oc1"}) {
			oc1 = &res.Conformed.Cons[i]
		}
	}
	if oc1 == nil || !oc1.Hidden {
		t.Errorf("hidden class's constraint should be hidden: %+v", oc1)
	}
	// The doc carries the inlined tuple.
	doc := res.Conformed.Extent(RemoteSide, "Doc2")[0]
	pv, _ := doc.Get("pub")
	if tup, ok := pv.(object.Tuple); !ok || !tup.Field("rank").Equal(object.Int(3)) {
		t.Errorf("inlined tuple = %v", pv)
	}
}

// TestValueViewGlobalView: the merged view has no publisher objects; the
// E6 derivation is unaffected by the conformation direction.
func TestValueViewGlobalView(t *testing.T) {
	res := valueViewResult(t)
	if ext := res.View.Extent("Publisher"); len(ext) != 0 {
		t.Errorf("Publisher global extent = %d, want 0", len(ext))
	}
	if ext := res.View.Extent("VirtPublisher"); len(ext) != 0 {
		t.Errorf("VirtPublisher global extent = %d, want 0", len(ext))
	}
	// Object count: 13 (objectify view) minus 4 virtual publishers minus
	// 3 remote publishers plus 0 = 6 locals + 4 remote items merged into
	// 9 global objects... compute directly: 6 local + 4 remote - 1 merge.
	if len(res.View.Objects) != 9 {
		t.Errorf("global objects = %d, want 9", len(res.View.Objects))
	}
	// The §5.2.1 equality derivation still happens.
	found := false
	for _, gc := range res.Derivation.Global {
		if gc.Expr.String() == "publisher.name = 'ACM' implies rating >= 5" {
			found = true
		}
	}
	if !found {
		t.Error("E6 derivation should be independent of the conformation direction")
	}
}

// TestValueViewUnknownRule rejects valueview marks naming no rule.
func TestValueViewUnknownRule(t *testing.T) {
	src := tm.FigureOneIntegration + "\nvalueview nosuch\n"
	is, err := tm.ParseIntegration(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(tm.Figure1Library(), tm.Figure1Bookseller(), is); err == nil ||
		!strings.Contains(err.Error(), "valueview") {
		t.Errorf("expected valueview compile error, got %v", err)
	}
}

// schemaOfHelper ensures hidden classes remain addressable for reports.
func TestValueViewSchemaStillListsHiddenClass(t *testing.T) {
	res := valueViewResult(t)
	if _, ok := res.Conformed.RemoteSchema.Class("Publisher"); !ok {
		t.Error("hidden classes stay in the schema for reporting")
	}
	_ = schema.DatabaseConstraint // keep the import honest
}
