package core

import (
	"strings"
	"testing"

	"interopdb/internal/expr"
	"interopdb/internal/fixture"
	"interopdb/internal/logic"
	"interopdb/internal/object"
	"interopdb/internal/store"
	"interopdb/internal/tm"
)

func fig1Derivation(t testing.TB, opt fixture.Options) *Derivation {
	return Derive(fig1View(t, opt))
}

func hasGlobal(d *Derivation, exprStr string) *GlobalConstraint {
	for i := range d.Global {
		if d.Global[i].Expr.String() == exprStr {
			return &d.Global[i]
		}
	}
	return nil
}

func conflictsOfKind(d *Derivation, k ConflictKind) []Conflict {
	var out []Conflict
	for _, c := range d.Conflicts {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// TestE1IntroPersonnel reproduces the introduction's example end to end:
// the apparently conflicting tariff constraints {10,20} and {14,24}
// combine under the averaging policy into the global constraint
// trav_reimb ∈ {12,17,22}, while DB1's subjective salary rule is not
// propagated.
func TestE1IntroPersonnel(t *testing.T) {
	db1, db2 := fixture.PersonnelStores()
	res, err := Integrate(tm.Personnel1(), tm.Personnel2(), tm.PersonnelIntegration(), db1, db2, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Derivation
	gc := hasGlobal(d, "trav_reimb in {12,17,22}")
	if gc == nil {
		t.Fatalf("derived tariff constraint missing; have:\n%s", globalDump(d))
	}
	if gc.Scope != ScopeMerged || gc.Derivation != "derived(avg)" {
		t.Errorf("tariff constraint: %+v", *gc)
	}
	// The raw union of the two tariff constraints would be inconsistent —
	// the derived one is satisfiable and the merged employee satisfies it.
	if d.Checker.Satisfiable(gc.Expr) != logic.Yes {
		t.Error("derived tariff constraint should be satisfiable")
	}
	for _, g := range res.View.Objects {
		if !g.Merged() {
			continue
		}
		env := res.View.Env(g)
		ok, err := env.EvalBool(gc.Expr)
		if err != nil || !ok {
			t.Errorf("merged employee violates derived constraint: %v %v (state %s)", ok, err, g)
		}
	}
	// salary < 1500 must not be global with scope all or merged.
	for _, g := range d.Global {
		if strings.Contains(g.Expr.String(), "salary") && (g.Scope == ScopeAll || g.Scope == ScopeMerged) {
			t.Errorf("subjective salary rule leaked into the global view: %v", g)
		}
	}
	// It survives for DB1-only employees.
	found := false
	for _, g := range d.Global {
		if g.Expr.String() == "salary < 1500" && g.Scope == ScopeLocalOnly {
			found = true
		}
	}
	if !found {
		t.Error("salary rule should hold for DB1-only employees")
	}
}

// TestE3DerivedConstraint reproduces §3's example: from the intraobject
// condition ref?=true of rule r3 and Proceedings.oc2, the constraint
// rating >= 7 is derived for the selected objects; it entails the
// conformed RefereedPubl.oc1 (rating >= 4), so the potential discrepancy
// resolves positively (§5.2.1's strict-similarity example).
func TestE3DerivedConstraint(t *testing.T) {
	d := fig1Derivation(t, fixture.Options{})
	derived := d.DerivedOnSim["r3"]
	if derived == nil {
		t.Fatal("no derived constraints for r3")
	}
	found := false
	for _, n := range derived {
		if n.String() == "rating >= 7" {
			found = true
		}
	}
	if !found {
		t.Fatalf("rating >= 7 not derived; got %v", derived)
	}
	// The check against RefereedPubl.oc1 passes: no strict-sim conflict
	// for r3.
	for _, c := range conflictsOfKind(d, ConflictStrictSim) {
		if c.Where == "rule r3" {
			t.Errorf("r3 should be conflict-free: %s", c)
		}
	}
}

// TestE6EqualityDerivation reproduces §5.2.1's equality example: local
// conformed rating >= 4 and remote publisher.name='ACM' ⇒ rating >= 6
// combine under avg into publisher.name='ACM' ⇒ rating >= 5.
func TestE6EqualityDerivation(t *testing.T) {
	d := fig1Derivation(t, fixture.Options{})
	gc := hasGlobal(d, "publisher.name = 'ACM' implies rating >= 5")
	if gc == nil {
		t.Fatalf("paper's derived constraint missing; have:\n%s", globalDump(d))
	}
	if gc.Derivation != "derived(avg)" || gc.Scope != ScopeMerged {
		t.Errorf("derived constraint: %+v", *gc)
	}
	// Origin traces to both component constraints.
	keys := map[string]bool{}
	for _, k := range gc.Origin {
		keys[k.String()] = true
	}
	if !keys["CSLibrary.RefereedPubl.oc1"] || !keys["Bookseller.Proceedings.oc3"] {
		t.Errorf("origin = %v", gc.Origin)
	}
	// The oc2 pairing derives the refereed bound as well.
	if hasGlobal(d, "ref? = true implies rating >= 5.5") == nil {
		t.Errorf("avg(4,7) derivation missing; have:\n%s", globalDump(d))
	}
	// No derivation from the libprice/shopprice pair: trust is conflict
	// avoiding (condition (1)) — no global constraint relates the prices
	// for merged objects.
	for _, g := range d.Global {
		if g.Scope != ScopeMerged {
			continue
		}
		s := g.Expr.String()
		if strings.Contains(s, "libprice") || strings.Contains(s, "shopprice") {
			t.Errorf("no price constraint should be derived for merged objects: %v", g)
		}
	}
}

// TestE6ObjectiveConstraintsGlobal: objective constraints become global
// constraints with scope all (the union part of §5.2.1) — but only once
// every similarity rule targeting the class is proven valid. Under the
// paper's original r5 the engine withholds Proceedings.oc1 (imported
// library publications are not provably valid Proceedings); under the
// repaired specification it is global.
func TestE6ObjectiveConstraintsGlobal(t *testing.T) {
	d := fig1Derivation(t, fixture.Options{})
	if gc := hasGlobal(d, "publisher.name = 'IEEE' implies ref? = true"); gc != nil {
		t.Fatalf("oc1 must be withheld while the r5 conflict is unresolved: %+v", *gc)
	}
	withheld := false
	for _, n := range d.Notes {
		if strings.Contains(n, "withheld") && strings.Contains(n, "Proceedings.oc1") {
			withheld = true
		}
	}
	if !withheld {
		t.Errorf("expected a withholding note; notes: %v", d.Notes)
	}

	local, remote := fixture.Figure1Stores(fixture.Options{})
	res, err := Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		t.Fatal(err)
	}
	gc := hasGlobal(res.Derivation, "publisher.name = 'IEEE' implies ref? = true")
	if gc == nil {
		t.Fatalf("repaired spec: oc1 should be global; have:\n%s", globalDump(res.Derivation))
	}
	if gc.Scope != ScopeAll || gc.Derivation != "objective" {
		t.Errorf("objective constraint: %+v", *gc)
	}
	for _, c := range res.Derivation.Conflicts {
		if c.Kind == ConflictStrictSim {
			t.Errorf("repaired spec should be strict-sim conflict-free: %s", c)
		}
	}
}

// TestE5TrustCounterexample reproduces §5.1.3: both databases satisfy
// "libprice <= shopprice" locally, but with trust(CSLibrary) on libprice
// and trust(Bookseller) on shopprice the merged state (26,29)/(22,25)
// violates it. The engine handles this by having classified both oc1
// constraints subjective, so the violated formula is NOT a global
// constraint — exactly the paper's point that value subjectivity forces
// constraint subjectivity.
func TestE5TrustCounterexample(t *testing.T) {
	res := fig1View(t, fixture.Options{PriceConflict: true})
	g := globalByTitle(t, res, "Price Conflict Book")
	if !g.Merged() {
		t.Fatal("price-conflict book should merge")
	}
	lib, _ := g.Get("libprice")
	shop, _ := g.Get("shopprice")
	if !lib.Equal(object.Real(26)) || !shop.Equal(object.Real(25)) {
		t.Fatalf("fused prices = (%v, %v), want (26, 25)", lib, shop)
	}
	// The merged state violates the formula both databases enforce…
	env := res.Env(g)
	holds, err := env.EvalBool(expr.MustParse("libprice <= shopprice"))
	if err != nil || holds {
		t.Fatalf("merged state should violate libprice<=shopprice: %v %v", holds, err)
	}
	// …and the engine kept that formula out of the global merged-scope
	// constraint set.
	d := Derive(res)
	for _, gc := range d.GlobalFor("Publication", ScopeAll, ScopeMerged) {
		if strings.Contains(gc.Expr.String(), "libprice <= shopprice") {
			t.Errorf("subjective price constraint leaked: %v", gc)
		}
	}
}

// TestE7StrictSimWeakenedOC2 reproduces §5.2.1's negative strict-
// similarity example: with oc2 weakened to "ref?=true implies rating>=3",
// the derived rating>=3 no longer entails the conformed rating>=4, and
// the engine suggests exactly the paper's repair: strengthen the rule
// with the missing condition (plus the approximate-similarity fallback).
func TestE7StrictSimWeakenedOC2(t *testing.T) {
	weakened := strings.Replace(tm.FigureOneBookseller,
		"oc2: ref? = true implies rating >= 7",
		"oc2: ref? = true implies rating >= 3", 1)
	bs := tm.MustParseDatabase(weakened)
	lib := tm.Figure1Library()
	spec := MustCompile(lib, bs, tm.Figure1Integration())

	local, remote := fixture.Figure1Stores(fixture.Options{})
	// Rebuild the remote store against the weakened schema.
	remote2 := store.New(bs.Schema, nil)
	remote2.Enforce = false
	for _, cls := range remote.Schema().ClassNames() {
		for _, o := range remote.DirectExtent(cls) {
			remote2.MustInsert(cls, o.Attrs())
		}
	}
	remote2.Enforce = true

	c, err := Conform(spec, local, remote2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Merge(c)
	if err != nil {
		t.Fatal(err)
	}
	d := Derive(v)

	var conflict *Conflict
	for i, cf := range d.Conflicts {
		if cf.Kind == ConflictStrictSim && cf.Where == "rule r3" {
			conflict = &d.Conflicts[i]
		}
	}
	if conflict == nil {
		t.Fatalf("expected strict-similarity conflict for r3; conflicts: %v", d.Conflicts)
	}
	if len(conflict.Involved) != 1 || conflict.Involved[0].Name != "oc1" || conflict.Involved[0].Class != "RefereedPubl" {
		t.Errorf("involved: %v", conflict.Involved)
	}
	// The paper's repair: Sim(...) <= ref?=true AND rating>=4.
	var strengthen, approx bool
	for _, s := range conflict.Suggestions {
		switch s.Kind {
		case SuggestStrengthenRule:
			strengthen = true
			if !strings.Contains(s.NewRuleSrc, "R.ref? = true and R.rating >= 4") {
				t.Errorf("strengthened rule = %q", s.NewRuleSrc)
			}
			// The suggested rule is valid specification syntax.
			if _, err := tm.ParseIntegration("integration CSLibrary imports Bookseller\n" + s.NewRuleSrc); err != nil {
				t.Errorf("suggested rule does not parse: %v", err)
			}
		case SuggestAddApproxRule:
			approx = true
			if !strings.Contains(s.NewRuleSrc, "not (R.rating >= 4)") {
				t.Errorf("approx rule = %q", s.NewRuleSrc)
			}
		}
	}
	if !strengthen || !approx {
		t.Errorf("missing repair options: strengthen=%v approx=%v", strengthen, approx)
	}
}

// TestE8ApproximateSimilarity: the virtual common superclass carries the
// disjunction Ω ∨ Ω', and the horizontal-fragmentation pattern is
// reported when Ω entails a source constraint.
func TestE8ApproximateSimilarity(t *testing.T) {
	localSpec := tm.MustParseDatabase(`
Database L
Class Senior
  attributes
    name : string
    age : int
  object constraints
    oc1: age >= 50
end Senior
`)
	remoteSpec := tm.MustParseDatabase(`
Database R
Class Junior
  attributes
    name : string
    age : int
  object constraints
    oc1: age < 50
end Junior
`)
	ispec := tm.MustParseIntegration(`
integration L imports R
rule r1: Sim(J:Junior, Senior, Person) <= true
propeq(Senior.age, Junior.age, id, id, any)
propeq(Senior.name, Junior.name, id, id, any)
`)
	spec := MustCompile(localSpec, remoteSpec, ispec)
	ls := store.New(localSpec.Schema, nil)
	rs := store.New(remoteSpec.Schema, nil)
	ls.MustInsert("Senior", map[string]object.Value{"name": object.Str("Ann"), "age": object.Int(61)})
	rs.MustInsert("Junior", map[string]object.Value{"name": object.Str("Bob"), "age": object.Int(30)})
	c, err := Conform(spec, ls, rs)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Merge(c)
	if err != nil {
		t.Fatal(err)
	}
	d := Derive(v)
	// Approximate similarity never raises a membership conflict.
	if cs := conflictsOfKind(d, ConflictStrictSim); len(cs) != 0 {
		t.Errorf("approximate similarity must not raise strict-sim conflicts: %v", cs)
	}
	// The virtual superclass Person contains both objects…
	if n := len(v.Extent("Person")); n != 2 {
		t.Fatalf("Person extent = %d, want 2", n)
	}
	// …and carries the disjunction of the two constraint sets.
	dis := d.GlobalFor("Person")
	if len(dis) != 1 {
		t.Fatalf("Person constraints: %v", dis)
	}
	if got := dis[0].Expr.String(); got != "age >= 50 or (true and age < 50)" &&
		got != "age >= 50 or true and age < 50" {
		t.Errorf("disjunction = %q", got)
	}
	if dis[0].Derivation != "disjunction(approx-sim)" {
		t.Errorf("derivation tag = %q", dis[0].Derivation)
	}
	// Both members satisfy it.
	for _, g := range v.Extent("Person") {
		holds, err := v.Env(g).EvalBool(dis[0].Expr)
		if err != nil || !holds {
			t.Errorf("disjunction fails on %s: %v %v", g, holds, err)
		}
	}
	// Horizontal fragmentation: age>=50 and age<50 split Person — the
	// target's constraints refute (not entail) the source's here, so no
	// fragment note; flip the remote constraint to a subset to get one.
	remoteSpec2 := tm.MustParseDatabase(`
Database R
Class Junior
  attributes
    name : string
    age : int
  object constraints
    oc1: age >= 60
end Junior
`)
	spec2 := MustCompile(localSpec, remoteSpec2, ispec)
	rs2 := store.New(remoteSpec2.Schema, nil)
	rs2.MustInsert("Junior", map[string]object.Value{"name": object.Str("Cid"), "age": object.Int(70)})
	c2, err := Conform(spec2, ls, rs2)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Merge(c2)
	if err != nil {
		t.Fatal(err)
	}
	d2 := Derive(v2)
	// Ω (age>=50 on Senior) does NOT entail φ' (age>=60), but φ' ⊨ Ω
	// means the source class is a horizontal fragment candidate the other
	// way; the note fires when target constraints entail a source one.
	// Here we test the reported direction with matching sets:
	foundNote := false
	for _, n := range d2.Notes {
		if strings.Contains(n, "horizontal fragments") {
			foundNote = true
		}
	}
	_ = foundNote // direction-dependent; the disjunction is the key output
	if len(d2.GlobalFor("Person")) != 1 {
		t.Errorf("Person disjunction missing in variant")
	}
}

func globalDump(d *Derivation) string {
	var b strings.Builder
	for _, g := range d.Global {
		b.WriteString("  " + g.String() + "\n")
	}
	return b.String()
}
