package wire

import (
	"encoding/binary"
	"fmt"

	"interopdb/internal/object"
	"interopdb/internal/view"
)

// Request and response body codecs, layered on the value codec. Every
// body is self-delimiting, so a frame carries exactly one message.

// Error codes carried by OpErr frames. They partition failures the way
// the HTTP transport's status codes do, so both transports surface the
// same typed-sentinel taxonomy (server.writeError ↔ these codes).
const (
	// CodeBadRequest: the request was malformed (parse error, empty op
	// list, unknown mutation kind). Don't retry unchanged.
	CodeBadRequest byte = 1
	// CodeUnknownTenant: the server does not host the named tenant.
	CodeUnknownTenant byte = 2
	// CodeNotFound: unknown class or view object.
	CodeNotFound byte = 3
	// CodeRejected: the mutation batch violated derived global
	// constraints; the body carries the rejections with repairs.
	CodeRejected byte = 4
	// CodeUnavailable: a member outage or partial commit; retry after
	// the hinted delay (member outage) or poll health (partial commit).
	CodeUnavailable byte = 5
	// CodeAdmission: the server is at its admission limit; retryable.
	CodeAdmission byte = 6
	// CodeDraining: the server is shutting down; go elsewhere.
	CodeDraining byte = 7
	// CodeCancelled: the request's context was cancelled (usually by an
	// OpCancel frame from this same connection).
	CodeCancelled byte = 8
	// CodeUnknownHandle: OpExec named a prepared handle this connection
	// never registered; the client re-prepares transparently.
	CodeUnknownHandle byte = 9
	// CodeInternal: everything else.
	CodeInternal byte = 10
)

// Rejection is the client-facing decode of one constraint rejection —
// the binary counterpart of the HTTP transport's WireRejection.
type Rejection struct {
	Constraint string
	Classes    []string
	Detail     string
	Repairs    []Repair
}

// Repair is one decoded repair proposal.
type Repair struct {
	Kind   string
	Attr   string
	Text   string
	ID     int
	HasVal bool
	Value  object.Value
}

// Error is the typed error a client call returns for an OpErr frame.
type Error struct {
	Code       byte
	Msg        string
	Rejections []Rejection
	RetryAfter int // seconds, for CodeUnavailable/CodeAdmission
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("wire: %s (code %d)", e.Msg, e.Code)
}

// appendErrBody encodes an OpErr body:
// [1B code][uvarint retry-after s][str msg][uvarint nrej][rejections].
func appendErrBody(dst []byte, code byte, retryAfter int, msg string, rejs []view.Rejection) []byte {
	dst = append(dst, code)
	dst = binary.AppendUvarint(dst, uint64(retryAfter))
	dst = AppendString(dst, msg)
	dst = binary.AppendUvarint(dst, uint64(len(rejs)))
	for _, r := range rejs {
		con := ""
		if r.Constraint.Expr != nil {
			con = r.Constraint.Expr.String()
		}
		dst = AppendString(dst, con)
		dst = binary.AppendUvarint(dst, uint64(len(r.Constraint.Classes)))
		for _, c := range r.Constraint.Classes {
			dst = AppendString(dst, c)
		}
		dst = AppendString(dst, r.Detail)
		dst = binary.AppendUvarint(dst, uint64(len(r.Repairs)))
		for _, rep := range r.Repairs {
			dst = AppendString(dst, rep.Kind.String())
			dst = AppendString(dst, rep.Attr)
			dst = AppendString(dst, rep.Text)
			dst = binary.AppendVarint(dst, int64(rep.ID))
			if rep.Value != nil {
				dst = append(dst, 1)
				dst = AppendValue(dst, rep.Value)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	return dst
}

// decodeErrBody decodes an OpErr body into the client's typed error.
func decodeErrBody(b []byte) (*Error, error) {
	if len(b) == 0 {
		return nil, errTruncated
	}
	e := &Error{Code: b[0]}
	off := 1
	ra, k := binary.Uvarint(b[off:])
	if k <= 0 {
		return nil, errTruncated
	}
	e.RetryAfter = int(ra)
	off += k
	msg, k2, err := DecodeString(b[off:])
	if err != nil {
		return nil, err
	}
	e.Msg = msg
	off += k2
	nrej, k3, err := decodeCount(b[off:])
	if err != nil {
		return nil, err
	}
	off += k3
	for i := 0; i < nrej; i++ {
		var rej Rejection
		if rej.Constraint, k, err = DecodeString(b[off:]); err != nil {
			return nil, err
		}
		off += k
		ncls, k4, err := decodeCount(b[off:])
		if err != nil {
			return nil, err
		}
		off += k4
		for j := 0; j < ncls; j++ {
			c, k5, err := DecodeString(b[off:])
			if err != nil {
				return nil, err
			}
			rej.Classes = append(rej.Classes, c)
			off += k5
		}
		if rej.Detail, k, err = DecodeString(b[off:]); err != nil {
			return nil, err
		}
		off += k
		nrep, k6, err := decodeCount(b[off:])
		if err != nil {
			return nil, err
		}
		off += k6
		for j := 0; j < nrep; j++ {
			var rep Repair
			if rep.Kind, k, err = DecodeString(b[off:]); err != nil {
				return nil, err
			}
			off += k
			if rep.Attr, k, err = DecodeString(b[off:]); err != nil {
				return nil, err
			}
			off += k
			if rep.Text, k, err = DecodeString(b[off:]); err != nil {
				return nil, err
			}
			off += k
			id, k7 := binary.Varint(b[off:])
			if k7 <= 0 {
				return nil, errTruncated
			}
			rep.ID = int(id)
			off += k7
			if off >= len(b) {
				return nil, errTruncated
			}
			hasVal := b[off]
			off++
			if hasVal == 1 {
				v, k8, err := DecodeValue(b[off:])
				if err != nil {
					return nil, err
				}
				rep.HasVal, rep.Value = true, v
				off += k8
			}
			rej.Repairs = append(rej.Repairs, rep)
		}
		e.Rejections = append(e.Rejections, rej)
	}
	return e, nil
}

// appendQueryReq encodes an OpQuery/OpPrepare body: [tenant][query].
func appendQueryReq(dst []byte, tenant, q string) []byte {
	dst = AppendString(dst, tenant)
	return AppendString(dst, q)
}

// decodeQueryReq decodes an OpQuery/OpPrepare body.
func decodeQueryReq(b []byte) (tenant, q string, err error) {
	tenant, k, err := DecodeString(b)
	if err != nil {
		return "", "", err
	}
	q, _, err = DecodeString(b[k:])
	return tenant, q, err
}

// appendExecReq encodes an OpExec body: [tenant][8B handle LE].
func appendExecReq(dst []byte, tenant string, handle uint64) []byte {
	dst = AppendString(dst, tenant)
	return binary.LittleEndian.AppendUint64(dst, handle)
}

// decodeExecReq decodes an OpExec body.
func decodeExecReq(b []byte) (tenant string, handle uint64, err error) {
	tenant, k, err := DecodeString(b)
	if err != nil {
		return "", 0, err
	}
	if len(b)-k < 8 {
		return "", 0, errTruncated
	}
	return tenant, binary.LittleEndian.Uint64(b[k:]), nil
}

// appendTxReq encodes an OpTx body:
// [tenant][1B flags][uvarint nops][mutations...].
func appendTxReq(dst []byte, tenant string, ops []view.Mutation, validateOnly bool) []byte {
	dst = AppendString(dst, tenant)
	var flags byte
	if validateOnly {
		flags |= txValidateOnly
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for _, m := range ops {
		dst = AppendMutation(dst, m)
	}
	return dst
}

// decodeTxReq decodes an OpTx body.
func decodeTxReq(b []byte) (tenant string, ops []view.Mutation, validateOnly bool, err error) {
	tenant, k, err := DecodeString(b)
	if err != nil {
		return "", nil, false, err
	}
	off := k
	if off >= len(b) {
		return "", nil, false, errTruncated
	}
	validateOnly = b[off]&txValidateOnly != 0
	off++
	n, k2, err := decodeCount(b[off:])
	if err != nil {
		return "", nil, false, err
	}
	off += k2
	ops = make([]view.Mutation, n)
	for i := range ops {
		m, k3, err := DecodeMutation(b[off:])
		if err != nil {
			return "", nil, false, fmt.Errorf("op %d: %w", i, err)
		}
		ops[i] = m
		off += k3
	}
	return tenant, ops, validateOnly, nil
}

// appendRowsBody encodes an OpRows body: [stats][uvarint nrows][rows].
func appendRowsBody(dst []byte, rows []view.Row, stats view.Stats) []byte {
	dst = AppendQueryStats(dst, stats)
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, r := range rows {
		dst = AppendRow(dst, r)
	}
	return dst
}

// decodeRowsBody decodes an OpRows body.
func decodeRowsBody(b []byte) ([]view.Row, view.Stats, error) {
	stats, k, err := DecodeQueryStats(b)
	if err != nil {
		return nil, stats, err
	}
	off := k
	n, k2, err := decodeCount(b[off:])
	if err != nil {
		return nil, stats, err
	}
	off += k2
	rows := make([]view.Row, n)
	for i := range rows {
		r, k3, err := DecodeRow(b[off:])
		if err != nil {
			return nil, stats, fmt.Errorf("row %d: %w", i, err)
		}
		rows[i] = r
		off += k3
	}
	return rows, stats, nil
}

// appendTxOKBody encodes an OpTxOK body: [uvarint applied][vstats].
func appendTxOKBody(dst []byte, applied int, vs view.ValidateStats) []byte {
	dst = binary.AppendUvarint(dst, uint64(applied))
	return AppendValidateStats(dst, vs)
}

// decodeTxOKBody decodes an OpTxOK body.
func decodeTxOKBody(b []byte) (int, view.ValidateStats, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, view.ValidateStats{}, errTruncated
	}
	vs, _, err := DecodeValidateStats(b[k:])
	return int(n), vs, err
}
