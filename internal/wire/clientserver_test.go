package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interopdb/internal/object"
	"interopdb/internal/view"
)

// fakeBackend is a scriptable Backend for transport-level tests; the
// real binding (internal/server's wireBackend) has its own differential
// tests against the HTTP path.
type fakeBackend struct {
	mu        sync.Mutex
	ver       uint64
	prepares  atomic.Int64
	execs     atomic.Int64
	queryHook func(ctx context.Context, tenant, src string) ([]view.Row, view.Stats, error)
}

func (f *fakeBackend) rows(src string) []view.Row {
	return []view.Row{{"src": object.Str(src), "n": object.Int(1)}}
}

func (f *fakeBackend) Query(ctx context.Context, tenant, src string) ([]view.Row, view.Stats, error) {
	if f.queryHook != nil {
		return f.queryHook(ctx, tenant, src)
	}
	return f.rows(src), view.Stats{Scanned: 1}, nil
}

func (f *fakeBackend) Prepare(ctx context.Context, tenant, src string) (view.Query, error) {
	f.prepares.Add(1)
	if src == "bad" {
		return view.Query{}, &Error{Code: CodeBadRequest, Msg: "parsing query: bad"}
	}
	return view.Query{Class: src}, nil
}

func (f *fakeBackend) Exec(ctx context.Context, tenant string, q view.Query) ([]view.Row, view.Stats, error) {
	f.execs.Add(1)
	return f.rows(q.Class), view.Stats{PlanCached: true}, nil
}

func (f *fakeBackend) Tx(ctx context.Context, tenant string, ops []view.Mutation, validateOnly bool) (int, view.ValidateStats, error) {
	if validateOnly {
		return 0, view.ValidateStats{ConstraintsChecked: 1}, nil
	}
	return len(ops), view.ValidateStats{ConstraintsChecked: 1}, nil
}

func (f *fakeBackend) MemberVersion(tenant string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ver
}

func (f *fakeBackend) bumpVersion() {
	f.mu.Lock()
	f.ver++
	f.mu.Unlock()
}

// startWire boots a Server on a loopback listener and returns a
// connected client.
func startWire(t *testing.T, b Backend, cfg ServerConfig) *Client {
	t.Helper()
	cfg.Backend = b
	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientServerRoundTrip(t *testing.T) {
	fb := &fakeBackend{}
	c := startWire(t, fb, ServerConfig{})
	ctx := context.Background()

	rows, stats, err := c.Query(ctx, "main", "hello")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(rows) != 1 || !rows[0]["src"].Equal(object.Str("hello")) || stats.Scanned != 1 {
		t.Fatalf("query round trip: %v %+v", rows, stats)
	}

	applied, vs, err := c.Tx(ctx, "main", []view.Mutation{
		{Kind: view.MutInsert, Class: "Item", ID: 1, Attrs: map[string]object.Value{"title": object.Str("x")}},
	}, false)
	if err != nil || applied != 1 || vs.ConstraintsChecked != 1 {
		t.Fatalf("tx round trip: %d %+v %v", applied, vs, err)
	}

	p, err := c.Prepare(ctx, "main", "Item")
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	rows, stats, err = p.Exec(ctx)
	if err != nil || !stats.PlanCached || !rows[0]["src"].Equal(object.Str("Item")) {
		t.Fatalf("exec: %v %+v", err, stats)
	}
	if got := fb.prepares.Load(); got != 1 {
		t.Fatalf("prepares = %d, want 1", got)
	}
}

// TestPipelining proves responses are matched by request ID, not
// arrival order: a slow query issued first must not block a fast one
// issued second on the same connection.
func TestPipelining(t *testing.T) {
	release := make(chan struct{})
	fastDone := make(chan struct{})
	fb := &fakeBackend{}
	fb.queryHook = func(ctx context.Context, tenant, src string) ([]view.Row, view.Stats, error) {
		if src == "slow" {
			select {
			case <-release:
			case <-time.After(10 * time.Second):
				return nil, view.Stats{}, fmt.Errorf("pipelining stalled")
			}
		}
		return fb.rows(src), view.Stats{}, nil
	}
	c := startWire(t, fb, ServerConfig{})
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, _, err := c.Query(ctx, "main", "slow"); err != nil {
			t.Errorf("slow query: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		if _, _, err := c.Query(ctx, "main", "fast"); err != nil {
			t.Errorf("fast query: %v", err)
		}
		close(fastDone)
	}()
	select {
	case <-fastDone:
		// The fast response overtook the still-blocked slow request.
	case <-time.After(5 * time.Second):
		t.Fatal("fast query blocked behind slow one: no pipelining")
	}
	close(release)
	wg.Wait()
}

// TestCancelPropagation proves an OpCancel reaches the server-side
// request context: the backend observes ctx.Done and the client call
// returns ctx.Err without waiting for the response.
func TestCancelPropagation(t *testing.T) {
	sawCancel := make(chan struct{})
	fb := &fakeBackend{}
	fb.queryHook = func(ctx context.Context, tenant, src string) ([]view.Row, view.Stats, error) {
		if src != "blocked" {
			return fb.rows(src), view.Stats{}, nil
		}
		select {
		case <-ctx.Done():
			close(sawCancel)
			return nil, view.Stats{}, ctx.Err()
		case <-time.After(10 * time.Second):
			return nil, view.Stats{}, fmt.Errorf("cancel never arrived")
		}
	}
	c := startWire(t, fb, ServerConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.Query(ctx, "main", "blocked")
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the backend
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("query after cancel: %v, want context.Canceled", err)
	}
	select {
	case <-sawCancel:
	case <-time.After(5 * time.Second):
		t.Fatal("server-side context never cancelled")
	}
	// The connection must still be usable after an abandoned request.
	if _, _, err := c.Query(context.Background(), "main", "after"); err != nil {
		t.Fatalf("query after cancelled request: %v", err)
	}
}

// TestPreparedReprepareOnMembershipChange pins the invalidation
// contract: moving the backend's member version makes the next Exec
// re-prepare transparently from the saved source.
func TestPreparedReprepareOnMembershipChange(t *testing.T) {
	fb := &fakeBackend{}
	c := startWire(t, fb, ServerConfig{})
	ctx := context.Background()

	p, err := c.Prepare(ctx, "main", "Item")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := p.Exec(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := fb.prepares.Load(); got != 1 {
		t.Fatalf("prepares before membership change = %d, want 1", got)
	}
	fb.bumpVersion()
	if _, _, err := p.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	if got := fb.prepares.Load(); got != 2 {
		t.Fatalf("prepares after membership change = %d, want 2 (transparent re-prepare)", got)
	}
	// Stable again: no further re-prepares.
	if _, _, err := p.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	if got := fb.prepares.Load(); got != 2 {
		t.Fatalf("prepares after stable exec = %d, want 2", got)
	}
}

// TestUnknownHandleRetry pins the client half of the contract: a
// server that lost the handle (CodeUnknownHandle) triggers one
// transparent re-prepare and retry.
func TestUnknownHandleRetry(t *testing.T) {
	fb := &fakeBackend{}
	c := startWire(t, fb, ServerConfig{})
	ctx := context.Background()
	p, err := c.Prepare(ctx, "main", "Item")
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.handle = 0xdeadbeef // forge a handle the server never issued
	p.mu.Unlock()
	if _, _, err := p.Exec(ctx); err != nil {
		t.Fatalf("exec with forged handle: %v", err)
	}
	if got := fb.prepares.Load(); got != 2 {
		t.Fatalf("prepares = %d, want 2 (re-prepare after unknown handle)", got)
	}
}

func TestErrorMapping(t *testing.T) {
	fb := &fakeBackend{}
	fb.queryHook = func(ctx context.Context, tenant, src string) ([]view.Row, view.Stats, error) {
		switch src {
		case "noclass":
			return nil, view.Stats{}, fmt.Errorf("class %q: %w", "X", view.ErrUnknownClass)
		case "down":
			return nil, view.Stats{}, view.ErrMemberUnavailable
		case "reject":
			return nil, view.Stats{}, view.Rejections{{Detail: "floor"}}
		default:
			return nil, view.Stats{}, fmt.Errorf("boom")
		}
	}
	c := startWire(t, fb, ServerConfig{})
	ctx := context.Background()
	for src, want := range map[string]byte{
		"noclass": CodeNotFound,
		"down":    CodeUnavailable,
		"reject":  CodeRejected,
		"other":   CodeInternal,
	} {
		_, _, err := c.Query(ctx, "main", src)
		var we *Error
		if !errors.As(err, &we) || we.Code != want {
			t.Errorf("%s: got %v, want code %d", src, err, want)
		}
		if src == "reject" && (len(we.Rejections) != 1 || we.Rejections[0].Detail != "floor") {
			t.Errorf("rejections not carried: %+v", we.Rejections)
		}
	}
}

// TestBadPreamble: a connection that does not open with the magic is
// dropped without crashing the server.
func TestBadPreamble(t *testing.T) {
	fb := &fakeBackend{}
	srv := NewServer(ServerConfig{Backend: fb})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n"))
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a non-wire client")
	}
	conn.Close()

	// A real client still works afterwards.
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Query(context.Background(), "main", "ok"); err != nil {
		t.Fatalf("query after bad peer: %v", err)
	}
}

// TestFrameDeadline: a peer that starts a frame header but never
// finishes the payload is cut off by the per-frame deadline.
func TestFrameDeadline(t *testing.T) {
	fb := &fakeBackend{}
	srv := NewServer(ServerConfig{Backend: fb, FrameTimeout: 100 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte(Magic))
	// Header promising a 100-byte payload that never arrives.
	hdr := []byte{100, 0, 0, 0, 0, 0, 0, 0}
	conn.Write(hdr)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the server to close the slowloris connection")
	}
}

// TestShutdownWaitsForInflight: Shutdown returns only after in-flight
// requests finish, and their responses are delivered.
func TestShutdownWaitsForInflight(t *testing.T) {
	release := make(chan struct{})
	fb := &fakeBackend{}
	fb.queryHook = func(ctx context.Context, tenant, src string) ([]view.Row, view.Stats, error) {
		<-release
		return fb.rows(src), view.Stats{}, nil
	}
	srv := NewServer(ServerConfig{Backend: fb})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	errc := make(chan error, 1)
	go func() {
		_, _, err := c.Query(context.Background(), "main", "inflight")
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	select {
	case <-done:
		t.Fatal("Shutdown returned while a request was in flight")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("in-flight query during shutdown: %v", err)
	}
}
