package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"interopdb/internal/view"
)

// Backend is what the hosting process plugs into the wire server. The
// transport owns framing, request multiplexing and the prepared-handle
// registry; the backend owns tenants, admission control, metrics and
// the engine itself (internal/server implements it on *Server). A
// backend method may return *Error to pick the response code itself;
// anything else is mapped through the view sentinel taxonomy.
type Backend interface {
	// Query parses src and serves it against the tenant's snapshot.
	Query(ctx context.Context, tenant, src string) ([]view.Row, view.Stats, error)
	// Prepare parses src and checks its class against the tenant's
	// current membership, returning the parsed query for the transport
	// to cache under a handle.
	Prepare(ctx context.Context, tenant, src string) (view.Query, error)
	// Exec serves an already-parsed query — the prepared fast path that
	// skips the parser and goes straight to the snapshot plan cache.
	Exec(ctx context.Context, tenant string, q view.Query) ([]view.Row, view.Stats, error)
	// Tx validates ops and, unless validateOnly, ships them.
	Tx(ctx context.Context, tenant string, ops []view.Mutation, validateOnly bool) (applied int, vs view.ValidateStats, err error)
	// MemberVersion reports the tenant's membership-change counter.
	// Prepared entries remember the version they were parsed under and
	// are transparently re-prepared when it moves (attach/detach can
	// change which classes resolve and how).
	MemberVersion(tenant string) uint64
}

// ServerConfig configures a wire Server.
type ServerConfig struct {
	Backend Backend
	// FrameTimeout bounds how long a peer may take to deliver the rest
	// of a frame once its header has arrived, and how long a response
	// write may block — the slowloris guard. Default 10s.
	FrameTimeout time.Duration
	// IdleTimeout bounds how long a connection may sit between frames
	// with no requests in flight. Default 5m.
	IdleTimeout time.Duration
	// Logf receives connection-level errors. nil = silent.
	Logf func(format string, args ...any)
}

// Server accepts framed binary connections and dispatches requests to
// the Backend. Each connection's frames are read sequentially, but
// every request runs in its own goroutine and responses are written as
// they finish — that is the whole pipelining contract: request IDs, not
// arrival order, match responses to requests.
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*serverConn]struct{}
	closed   bool
	active   atomic.Int64 // in-flight requests across all connections
	bufPool  sync.Pool    // *[]byte response/read buffers
	handleID atomic.Uint64
}

// NewServer returns a Server dispatching to cfg.Backend.
func NewServer(cfg ServerConfig) *Server {
	if cfg.FrameTimeout <= 0 {
		cfg.FrameTimeout = 10 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	return &Server{
		cfg:   cfg,
		conns: make(map[*serverConn]struct{}),
		bufPool: sync.Pool{New: func() any {
			b := make([]byte, 0, 4096)
			return &b
		}},
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until Close/Shutdown. It returns
// net.ErrClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		sc := &serverConn{srv: s, conn: c}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return net.ErrClosed
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		go sc.serve()
	}
}

// Close immediately closes the listener and every connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.conn.Close()
	}
	return err
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish (or ctx to expire), then closes all connections.
// The hosting process flips its backend to refuse new work (draining)
// before calling Shutdown, mirroring the HTTP drain sequence.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for s.active.Load() > 0 {
		select {
		case <-ctx.Done():
			s.Close()
			return ctx.Err()
		case <-tick.C:
		}
	}
	// The listener is already closed; Close's job here is only the
	// remaining connections, so its re-close error is not a failure.
	s.Close()
	return nil
}

// getBuf / putBuf recycle encode/read buffers across requests — the
// pool half of the allocation diet. Buffers that grew past 1 MiB are
// dropped rather than pinned in the pool forever.
func (s *Server) getBuf() *[]byte { return s.bufPool.Get().(*[]byte) }

func (s *Server) putBuf(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	s.bufPool.Put(b)
}

// preparedEntry is one registered query on a connection. src is kept so
// the entry can be transparently re-parsed when the tenant's membership
// version moves (attach/detach invalidation).
type preparedEntry struct {
	tenant string
	src    string
	q      view.Query
	ver    uint64
}

// serverConn is one accepted connection.
type serverConn struct {
	srv  *Server
	conn net.Conn

	wmu sync.Mutex // serialises response frame writes

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc
	prepared map[uint64]*preparedEntry
}

func (c *serverConn) serve() {
	defer func() {
		c.conn.Close()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		// Cancel anything still running so goroutines don't linger
		// serving a connection nobody reads.
		c.mu.Lock()
		for _, cancel := range c.inflight {
			cancel()
		}
		c.mu.Unlock()
	}()

	ft, it := c.srv.cfg.FrameTimeout, c.srv.cfg.IdleTimeout

	// Buffered reads collapse each frame's header+payload pair (and
	// back-to-back pipelined frames) into one kernel read — on loopback
	// the syscalls are most of the round-trip bill. Deadlines still
	// apply to the underlying conn; data already buffered is by
	// definition already delivered.
	br := bufio.NewReaderSize(c.conn, 64<<10)

	// Preamble: the magic must arrive promptly, or this is not a wire
	// client (or a slowloris) and the connection is dropped.
	c.conn.SetReadDeadline(time.Now().Add(ft))
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return
	}
	if string(magic[:]) != Magic {
		c.srv.logf("wire: bad preamble from %s", c.conn.RemoteAddr())
		return
	}

	readBuf := c.srv.getBuf()
	defer func() { c.srv.putBuf(readBuf) }()
	for {
		// Long deadline while idle, short one once a frame has begun:
		// a quiet connection is fine, a half-sent frame is not.
		c.conn.SetReadDeadline(time.Now().Add(it))
		f, err := readFrameInto(br, readBuf, func() {
			c.conn.SetReadDeadline(time.Now().Add(ft))
		})
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				c.srv.logf("wire: %s: %v", c.conn.RemoteAddr(), err)
			}
			return
		}
		if f.Op == OpCancel {
			c.handleCancel(f.Body)
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		c.mu.Lock()
		if c.inflight == nil {
			c.inflight = make(map[uint64]context.CancelFunc)
		}
		c.inflight[f.ID] = cancel
		c.mu.Unlock()
		c.srv.active.Add(1)
		// The frame body aliases readBuf; hand the whole buffer to the
		// request goroutine (it returns it to the pool) and take a fresh
		// one for the next frame, instead of copying the body.
		go c.handle(ctx, cancel, f.Op, f.ID, readBuf, f.Body)
		readBuf = c.srv.getBuf()
	}
}

// handleCancel cancels the in-flight request the body names. Unknown
// IDs (already finished, or never seen) are ignored: cancellation races
// completion by design.
func (c *serverConn) handleCancel(body []byte) {
	if len(body) < 8 {
		return
	}
	target := binary.LittleEndian.Uint64(body)
	c.mu.Lock()
	cancel := c.inflight[target]
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// handle runs one request and writes its response frame. bodyBuf is
// the pooled read buffer body aliases; handle owns it now and returns
// it to the pool when done.
func (c *serverConn) handle(ctx context.Context, cancel context.CancelFunc, op byte, id uint64, bodyBuf *[]byte, body []byte) {
	defer func() {
		c.srv.putBuf(bodyBuf)
		c.mu.Lock()
		delete(c.inflight, id)
		c.mu.Unlock()
		cancel()
		c.srv.active.Add(-1)
	}()

	buf := c.srv.getBuf()
	defer c.srv.putBuf(buf)
	b := beginFrame(*buf, 0, id)

	respOp := OpErr
	switch op {
	case OpQuery:
		tenant, src, err := decodeQueryReq(body)
		err = badReq(err)
		if err == nil {
			var rows []view.Row
			var stats view.Stats
			rows, stats, err = c.srv.cfg.Backend.Query(ctx, tenant, src)
			if err == nil {
				respOp, b = OpRows, appendRowsBody(b, rows, stats)
			}
		}
		if err != nil {
			b = appendErr(b, err)
		}
	case OpPrepare:
		tenant, src, err := decodeQueryReq(body)
		err = badReq(err)
		var q view.Query
		if err == nil {
			q, err = c.srv.cfg.Backend.Prepare(ctx, tenant, src)
		}
		if err == nil {
			h := c.srv.handleID.Add(1)
			c.mu.Lock()
			if c.prepared == nil {
				c.prepared = make(map[uint64]*preparedEntry)
			}
			c.prepared[h] = &preparedEntry{
				tenant: tenant,
				src:    src,
				q:      q,
				ver:    c.srv.cfg.Backend.MemberVersion(tenant),
			}
			c.mu.Unlock()
			respOp = OpPrepared
			b = binary.LittleEndian.AppendUint64(b, h)
		} else {
			b = appendErr(b, err)
		}
	case OpExec:
		rows, stats, err := c.exec(ctx, body)
		if err == nil {
			respOp, b = OpRows, appendRowsBody(b, rows, stats)
		} else {
			b = appendErr(b, err)
		}
	case OpTx:
		tenant, ops, validateOnly, err := decodeTxReq(body)
		err = badReq(err)
		var applied int
		var vs view.ValidateStats
		if err == nil {
			applied, vs, err = c.srv.cfg.Backend.Tx(ctx, tenant, ops, validateOnly)
		}
		if err == nil {
			respOp, b = OpTxOK, appendTxOKBody(b, applied, vs)
		} else {
			b = appendErr(b, err)
		}
	default:
		b = appendErrBody(b, CodeBadRequest, 0, "unknown opcode", nil)
	}

	b[frameOverhead] = respOp
	b = finishFrame(b)
	*buf = b // keep any growth for the pool

	c.wmu.Lock()
	c.conn.SetWriteDeadline(time.Now().Add(c.srv.cfg.FrameTimeout))
	_, werr := c.conn.Write(b)
	c.wmu.Unlock()
	if werr != nil {
		c.conn.Close()
	}
}

// exec serves OpExec: look up the handle, revalidate its membership
// version (re-preparing from the saved source if attach/detach moved
// it), and run the parsed query straight into the plan cache.
func (c *serverConn) exec(ctx context.Context, body []byte) ([]view.Row, view.Stats, error) {
	tenant, handle, err := decodeExecReq(body)
	if err != nil {
		return nil, view.Stats{}, badReq(err)
	}
	c.mu.Lock()
	e := c.prepared[handle]
	c.mu.Unlock()
	if e == nil || e.tenant != tenant {
		return nil, view.Stats{}, &Error{Code: CodeUnknownHandle, Msg: "unknown prepared handle"}
	}
	q := e.q
	if ver := c.srv.cfg.Backend.MemberVersion(tenant); ver != e.ver {
		// Membership changed since the handle was prepared: re-parse
		// the saved source so class resolution reflects the new
		// federation. The handle survives; the entry is refreshed.
		q, err = c.srv.cfg.Backend.Prepare(ctx, tenant, e.src)
		if err != nil {
			return nil, view.Stats{}, err
		}
		c.mu.Lock()
		e.q, e.ver = q, ver
		c.mu.Unlock()
	}
	return c.srv.cfg.Backend.Exec(ctx, tenant, q)
}

// appendErr maps err to an OpErr body. Backends return *Error to pick
// codes themselves; view sentinels get the same mapping writeError
// gives them on the HTTP side, so both transports speak one taxonomy.
func appendErr(dst []byte, err error) []byte {
	var we *Error
	if errors.As(err, &we) {
		return appendErrBody(dst, we.Code, we.RetryAfter, we.Msg, nil)
	}
	var rejs view.Rejections
	if errors.As(err, &rejs) {
		return appendErrBody(dst, CodeRejected, 0, "mutation rejected", rejs)
	}
	switch {
	case errors.Is(err, view.ErrUnknownClass), errors.Is(err, view.ErrUnknownObject):
		return appendErrBody(dst, CodeNotFound, 0, err.Error(), nil)
	case errors.Is(err, view.ErrMemberUnavailable):
		return appendErrBody(dst, CodeUnavailable, 1, err.Error(), nil)
	case errors.Is(err, view.ErrPartialCommit):
		return appendErrBody(dst, CodeUnavailable, 0, err.Error(), nil)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return appendErrBody(dst, CodeCancelled, 0, err.Error(), nil)
	default:
		return appendErrBody(dst, CodeInternal, 0, err.Error(), nil)
	}
}

// badReq wraps a request-decode failure so appendErr maps it to
// CodeBadRequest rather than CodeInternal.
func badReq(err error) error {
	if err == nil {
		return nil
	}
	return &Error{Code: CodeBadRequest, Msg: err.Error()}
}
