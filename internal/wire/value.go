package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"interopdb/internal/object"
	"interopdb/internal/view"
)

// The binary value codec. Like the HTTP transport's tagged-JSON codec
// (server/codec.go) it must carry the view's full value model — Int vs
// Real distinguished, references and sets first-class — but unlike it,
// encoding is append-style into caller-owned buffers: one kind-tag
// byte plus a fixed- or varint-sized payload per value, no maps, no
// reflection, no intermediate allocations. Decoding is strict: an
// unknown tag or a truncated payload is an error, never a silent Null.
//
// Value layout (tag byte first):
//
//	null  [1]
//	int   [2][uvarint zig-zag]
//	real  [3][8B IEEE-754 LE]
//	str   [4][uvarint len][bytes]
//	bool  [5][1B]
//	ref   [6][str db][uvarint oid]
//	set   [7][uvarint n][values...]
//	tuple [8][uvarint n][(str name, value)...]
//
// Strings are uvarint-length-prefixed byte runs; integers are zig-zag
// varints so small negatives stay small on the wire.

// Value tags. The set mirrors object.Kind exactly.
const (
	tagNull byte = 1 + iota
	tagInt
	tagReal
	tagStr
	tagBool
	tagRef
	tagSet
	tagTuple
)

// errTruncated marks a body that ended mid-value.
var errTruncated = fmt.Errorf("wire: truncated value")

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeString decodes a string, returning it and the bytes consumed.
func DecodeString(b []byte) (string, int, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return "", 0, errTruncated
	}
	if n > uint64(len(b)-k) {
		return "", 0, errTruncated
	}
	return string(b[k : k+int(n)]), k + int(n), nil
}

// AppendValue appends the binary form of v — allocation-free when dst
// has capacity (the zero-allocation value tagging the hot path relies
// on; pinned by TestAppendValueAllocs).
func AppendValue(dst []byte, v object.Value) []byte {
	switch v := v.(type) {
	case object.Int:
		dst = append(dst, tagInt)
		return binary.AppendVarint(dst, int64(v))
	case object.Real:
		dst = append(dst, tagReal)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(v)))
	case object.Str:
		dst = append(dst, tagStr)
		return AppendString(dst, string(v))
	case object.Bool:
		if v {
			return append(dst, tagBool, 1)
		}
		return append(dst, tagBool, 0)
	case object.Ref:
		dst = append(dst, tagRef)
		dst = AppendString(dst, v.DB)
		return binary.AppendUvarint(dst, uint64(v.OID))
	case object.Set:
		dst = append(dst, tagSet)
		elems := v.Elems()
		dst = binary.AppendUvarint(dst, uint64(len(elems)))
		for _, e := range elems {
			dst = AppendValue(dst, e)
		}
		return dst
	case object.Tuple:
		dst = append(dst, tagTuple)
		names := v.Names()
		dst = binary.AppendUvarint(dst, uint64(len(names)))
		for _, n := range names {
			dst = AppendString(dst, n)
			dst = AppendValue(dst, v.Field(n))
		}
		return dst
	case object.Null, nil:
		return append(dst, tagNull)
	default:
		// Unreachable for the value model's closed kind set; encode the
		// rendering so the peer sees something diagnosable.
		dst = append(dst, tagStr)
		return AppendString(dst, v.String())
	}
}

// DecodeValue decodes one value, returning it and the bytes consumed.
func DecodeValue(b []byte) (object.Value, int, error) {
	if len(b) == 0 {
		return nil, 0, errTruncated
	}
	tag, b2 := b[0], b[1:]
	switch tag {
	case tagNull:
		return object.Null{}, 1, nil
	case tagInt:
		n, k := binary.Varint(b2)
		if k <= 0 {
			return nil, 0, errTruncated
		}
		return object.Int(n), 1 + k, nil
	case tagReal:
		if len(b2) < 8 {
			return nil, 0, errTruncated
		}
		return object.Real(math.Float64frombits(binary.LittleEndian.Uint64(b2))), 9, nil
	case tagStr:
		s, k, err := DecodeString(b2)
		if err != nil {
			return nil, 0, err
		}
		return object.Str(s), 1 + k, nil
	case tagBool:
		if len(b2) < 1 {
			return nil, 0, errTruncated
		}
		switch b2[0] {
		case 0:
			return object.Bool(false), 2, nil
		case 1:
			return object.Bool(true), 2, nil
		default:
			return nil, 0, fmt.Errorf("wire: bool payload %d", b2[0])
		}
	case tagRef:
		db, k, err := DecodeString(b2)
		if err != nil {
			return nil, 0, err
		}
		oid, k2 := binary.Uvarint(b2[k:])
		if k2 <= 0 {
			return nil, 0, errTruncated
		}
		return object.Ref{DB: db, OID: object.OID(oid)}, 1 + k + k2, nil
	case tagSet:
		n, k, err := decodeCount(b2)
		if err != nil {
			return nil, 0, err
		}
		off := k
		elems := make([]object.Value, n)
		for i := range elems {
			v, k2, err := DecodeValue(b2[off:])
			if err != nil {
				return nil, 0, fmt.Errorf("wire: set elem %d: %w", i, err)
			}
			elems[i] = v
			off += k2
		}
		return object.NewSet(elems...), 1 + off, nil
	case tagTuple:
		n, k, err := decodeCount(b2)
		if err != nil {
			return nil, 0, err
		}
		off := k
		fields := make(map[string]object.Value, n)
		for i := 0; i < n; i++ {
			name, k2, err := DecodeString(b2[off:])
			if err != nil {
				return nil, 0, fmt.Errorf("wire: tuple field %d: %w", i, err)
			}
			off += k2
			v, k3, err := DecodeValue(b2[off:])
			if err != nil {
				return nil, 0, fmt.Errorf("wire: tuple field %q: %w", name, err)
			}
			fields[name] = v
			off += k3
		}
		return object.NewTuple(fields), 1 + off, nil
	default:
		return nil, 0, fmt.Errorf("wire: unknown value tag %d", tag)
	}
}

// decodeCount decodes a collection length and bounds it by the bytes
// remaining, so a hostile count cannot drive a huge allocation: every
// element needs at least one encoded byte.
func decodeCount(b []byte) (int, int, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, 0, errTruncated
	}
	if n > uint64(len(b)-k) {
		return 0, 0, errTruncated
	}
	return int(n), k, nil
}

// AppendRow appends one result row: [uvarint ncols][(name, value)...].
// Column order follows the engine's map iteration — the decoded Row is
// the same map either way, and the differential tests compare rows
// after canonicalisation, so no sort is spent on the hot path.
func AppendRow(dst []byte, r view.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for k, v := range r {
		dst = AppendString(dst, k)
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeRow decodes one row, returning it and the bytes consumed.
func DecodeRow(b []byte) (view.Row, int, error) {
	n, k, err := decodeCount(b)
	if err != nil {
		return nil, 0, err
	}
	off := k
	row := make(view.Row, n)
	for i := 0; i < n; i++ {
		name, k2, err := DecodeString(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("wire: row col %d: %w", i, err)
		}
		off += k2
		v, k3, err := DecodeValue(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("wire: row col %q: %w", name, err)
		}
		row[name] = v
		off += k3
	}
	return row, off, nil
}

// AppendMutation appends one mutation:
// [1B kind][str class][varint id][uvarint nattrs][(name, value)...].
func AppendMutation(dst []byte, m view.Mutation) []byte {
	dst = append(dst, byte(m.Kind))
	dst = AppendString(dst, m.Class)
	dst = binary.AppendVarint(dst, int64(m.ID))
	dst = binary.AppendUvarint(dst, uint64(len(m.Attrs)))
	for k, v := range m.Attrs {
		dst = AppendString(dst, k)
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeMutation decodes one mutation, returning it and the bytes
// consumed.
func DecodeMutation(b []byte) (view.Mutation, int, error) {
	var m view.Mutation
	if len(b) == 0 {
		return m, 0, errTruncated
	}
	kind := view.MutationKind(b[0])
	switch kind {
	case view.MutInsert, view.MutUpdate, view.MutDelete:
	default:
		return m, 0, fmt.Errorf("wire: unknown mutation kind %d", b[0])
	}
	m.Kind = kind
	off := 1
	class, k, err := DecodeString(b[off:])
	if err != nil {
		return m, 0, err
	}
	m.Class = class
	off += k
	id, k2 := binary.Varint(b[off:])
	if k2 <= 0 {
		return m, 0, errTruncated
	}
	m.ID = int(id)
	off += k2
	n, k3, err := decodeCount(b[off:])
	if err != nil {
		return m, 0, err
	}
	off += k3
	if n > 0 {
		m.Attrs = make(map[string]object.Value, n)
	}
	for i := 0; i < n; i++ {
		name, k4, err := DecodeString(b[off:])
		if err != nil {
			return m, 0, fmt.Errorf("wire: mutation attr %d: %w", i, err)
		}
		off += k4
		v, k5, err := DecodeValue(b[off:])
		if err != nil {
			return m, 0, fmt.Errorf("wire: mutation attr %q: %w", name, err)
		}
		m.Attrs[name] = v
		off += k5
	}
	return m, off, nil
}

// AppendQueryStats appends view.Stats. Booleans pack into one flag
// byte; the counters are uvarints. Degraded member names follow.
func AppendQueryStats(dst []byte, s view.Stats) []byte {
	var flags byte
	if s.PrunedEmpty {
		flags |= 1
	}
	if s.PlanCached {
		flags |= 2
	}
	if s.ConstraintGated {
		flags |= 4
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(s.Scanned))
	dst = binary.AppendUvarint(dst, uint64(s.DroppedConjuncts))
	dst = binary.AppendUvarint(dst, uint64(s.IndexHits))
	dst = binary.AppendUvarint(dst, uint64(s.CandidateRows))
	dst = binary.AppendUvarint(dst, uint64(len(s.Degraded)))
	for _, m := range s.Degraded {
		dst = AppendString(dst, m)
	}
	return dst
}

// DecodeQueryStats decodes view.Stats, returning it and the bytes
// consumed.
func DecodeQueryStats(b []byte) (view.Stats, int, error) {
	var s view.Stats
	if len(b) == 0 {
		return s, 0, errTruncated
	}
	flags := b[0]
	s.PrunedEmpty = flags&1 != 0
	s.PlanCached = flags&2 != 0
	s.ConstraintGated = flags&4 != 0
	off := 1
	for _, dst := range []*int{&s.Scanned, &s.DroppedConjuncts, &s.IndexHits, &s.CandidateRows} {
		n, k := binary.Uvarint(b[off:])
		if k <= 0 {
			return s, 0, errTruncated
		}
		*dst = int(n)
		off += k
	}
	n, k, err := decodeCount(b[off:])
	if err != nil {
		return s, 0, err
	}
	off += k
	for i := 0; i < n; i++ {
		m, k2, err := DecodeString(b[off:])
		if err != nil {
			return s, 0, err
		}
		s.Degraded = append(s.Degraded, m)
		off += k2
	}
	return s, off, nil
}

// AppendValidateStats appends view.ValidateStats as three uvarints.
func AppendValidateStats(dst []byte, s view.ValidateStats) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.ConstraintsChecked))
	dst = binary.AppendUvarint(dst, uint64(s.ConstraintsSkipped))
	return binary.AppendUvarint(dst, uint64(s.PairsChecked))
}

// DecodeValidateStats decodes view.ValidateStats.
func DecodeValidateStats(b []byte) (view.ValidateStats, int, error) {
	var s view.ValidateStats
	off := 0
	for _, dst := range []*int{&s.ConstraintsChecked, &s.ConstraintsSkipped, &s.PairsChecked} {
		n, k := binary.Uvarint(b[off:])
		if k <= 0 {
			return s, 0, errTruncated
		}
		*dst = int(n)
		off += k
	}
	return s, off, nil
}
