package wire

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode holds DecodeFrame to the transport contract on
// arbitrary bytes: never panic, never accept a corrupt frame, and every
// accepted frame must re-encode to exactly the bytes consumed. Seeds
// cover a valid frame, truncations at each boundary, a flipped CRC, a
// hostile length and a sub-minimum length; the committed corpus under
// testdata/fuzz extends them (following FuzzWALDecode).
func FuzzFrameDecode(f *testing.F) {
	valid := AppendFrame(nil, OpQuery, 42, appendQueryReq(nil, "main", "select title from Item"))
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:4])               // torn mid-header
	f.Add(valid[:frameOverhead+3]) // torn mid-payload
	f.Add(append([]byte{}, valid...)[:len(valid)-1])
	flipped := append([]byte{}, valid...)
	flipped[5] ^= 0xFF // CRC byte
	f.Add(flipped)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}) // hostile length
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3})    // length below payload header
	f.Add(AppendFrame(valid, OpTx, 43, nil))          // two frames back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with nonzero consumed length %d", n)
			}
			return
		}
		if n < frameOverhead+payloadOverhead || n > len(data) {
			t.Fatalf("consumed %d out of range [%d,%d]", n, frameOverhead+payloadOverhead, len(data))
		}
		// An accepted frame must re-encode byte-identically: the format
		// has one canonical encoding per (op, id, body).
		re := AppendFrame(nil, fr.Op, fr.ID, fr.Body)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode of accepted frame differs from input prefix")
		}
		// The streaming reader must agree with the pure decoder.
		var buf []byte
		fr2, err2 := readFrameInto(bytes.NewReader(data), &buf, nil)
		if err2 != nil {
			t.Fatalf("DecodeFrame accepted but readFrameInto rejected: %v", err2)
		}
		if fr2.Op != fr.Op || fr2.ID != fr.ID || !bytes.Equal(fr2.Body, fr.Body) {
			t.Fatalf("streaming decode disagrees with pure decode")
		}
		// Flipping any single payload byte must be caught by the CRC.
		mut := append([]byte{}, data[:n]...)
		mut[frameOverhead] ^= 0x01
		if _, _, err := DecodeFrame(mut); err == nil && mut[frameOverhead] != data[frameOverhead] {
			t.Fatalf("flipped payload byte still accepted")
		}
	})
}

// FuzzValueDecode holds the value codec to the same discipline: no
// panic on arbitrary bytes, and any value that decodes must re-encode
// and decode to an equal value (full round trip through the closed
// value model).
func FuzzValueDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{tagNull})
	f.Add(AppendValue(nil, sampleTuple()))
	f.Add(AppendValue(nil, sampleSet()))
	f.Add([]byte{tagSet, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // hostile count
	f.Add([]byte{tagTuple, 2, 1, 'a'})                  // truncated tuple
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := DecodeValue(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d out of range", n)
		}
		re := AppendValue(nil, v)
		v2, n2, err := DecodeValue(re)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-encode of decoded value does not decode cleanly: %v", err)
		}
		if !valueEqual(v, v2) {
			t.Fatalf("value round trip changed %v to %v", v, v2)
		}
	})
}
