package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"interopdb/internal/view"
)

// Client is one persistent framed connection. It is safe for
// concurrent use: calls from many goroutines pipeline onto the single
// connection, each tagged with a request ID, and a reader goroutine
// matches responses back to their callers however they interleave.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serialises request frame writes
	bw  *bufio.Writer
	enc []byte // encode buffer, guarded by wmu

	mu      sync.Mutex
	pending map[uint64]chan response
	readErr error
	done    chan struct{} // closed when the reader goroutine exits

	nextID atomic.Uint64
	closed atomic.Bool
}

// response is one matched response frame; body is an owned copy.
type response struct {
	op   byte
	body []byte
}

// Dial connects to a wire server and sends the preamble.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient wraps an established connection (handy for tests running
// over net.Pipe or in-process listeners) and sends the preamble.
func NewClient(conn net.Conn) (*Client, error) {
	if _, err := conn.Write([]byte(Magic)); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(map[uint64]chan response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection. In-flight calls fail with the
// connection error.
func (c *Client) Close() error {
	c.closed.Store(true)
	return c.conn.Close()
}

// readLoop owns the read side: decode frames, route them to waiting
// callers by request ID. Responses for IDs nobody is waiting on (a
// caller that gave up after cancelling) are discarded.
func (c *Client) readLoop() {
	// Buffered reads collapse the header+payload pair into one kernel
	// read on the common path — on loopback the syscalls are most of the
	// round-trip bill.
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var buf []byte
	for {
		f, err := readFrameInto(br, &buf, nil)
		if err != nil {
			c.mu.Lock()
			if c.readErr == nil {
				if c.closed.Load() {
					c.readErr = net.ErrClosed
				} else {
					c.readErr = fmt.Errorf("wire: connection lost: %w", err)
				}
			}
			for id, ch := range c.pending {
				delete(c.pending, id)
				close(ch)
			}
			c.mu.Unlock()
			close(c.done)
			c.conn.Close()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.mu.Unlock()
		if ok {
			body := make([]byte, len(f.Body))
			copy(body, f.Body)
			ch <- response{op: f.Op, body: body}
		}
	}
}

// writeFrame encodes and sends one frame under the write lock, reusing
// the client's encode buffer.
func (c *Client) writeFrame(op byte, id uint64, build func([]byte) []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	b := beginFrame(c.enc, op, id)
	b = build(b)
	b = finishFrame(b)
	c.enc = b
	if _, err := c.bw.Write(b); err != nil {
		return err
	}
	return c.bw.Flush()
}

// roundTrip sends one request and waits for its response or ctx
// cancellation. On cancellation it fires an OpCancel at the server and
// abandons the ID — a late response is discarded by the read loop.
func (c *Client) roundTrip(ctx context.Context, op byte, build func([]byte) []byte) (response, error) {
	id := c.nextID.Add(1)
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return response{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.writeFrame(op, id, build); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return response{}, err
	}

	select {
	case r, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			return response{}, err
		}
		if r.op == OpErr {
			we, derr := decodeErrBody(r.body)
			if derr != nil {
				return response{}, derr
			}
			return response{}, we
		}
		return r, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// Best-effort: tell the server to stop working on it.
		c.writeFrame(OpCancel, id, func(b []byte) []byte {
			return binary.LittleEndian.AppendUint64(b, id)
		})
		return response{}, ctx.Err()
	}
}

// Query parses and runs q on the server, returning rows and stats.
func (c *Client) Query(ctx context.Context, tenant, q string) ([]view.Row, view.Stats, error) {
	r, err := c.roundTrip(ctx, OpQuery, func(b []byte) []byte {
		return appendQueryReq(b, tenant, q)
	})
	if err != nil {
		return nil, view.Stats{}, err
	}
	if r.op != OpRows {
		return nil, view.Stats{}, fmt.Errorf("wire: unexpected response opcode %d", r.op)
	}
	return decodeRowsBody(r.body)
}

// Tx validates and (unless validateOnly) ships a mutation batch.
func (c *Client) Tx(ctx context.Context, tenant string, ops []view.Mutation, validateOnly bool) (int, view.ValidateStats, error) {
	r, err := c.roundTrip(ctx, OpTx, func(b []byte) []byte {
		return appendTxReq(b, tenant, ops, validateOnly)
	})
	if err != nil {
		return 0, view.ValidateStats{}, err
	}
	if r.op != OpTxOK {
		return 0, view.ValidateStats{}, fmt.Errorf("wire: unexpected response opcode %d", r.op)
	}
	return decodeTxOKBody(r.body)
}

// Prepared is a registered query handle. Exec skips the server-side
// parser; if the server reports the handle unknown (connection-scoped
// state lost, e.g. talking through a reconnect), the client re-prepares
// transparently and retries once.
type Prepared struct {
	c      *Client
	tenant string
	src    string

	mu     sync.Mutex
	handle uint64
}

// Prepare registers q once and returns an executable handle.
func (c *Client) Prepare(ctx context.Context, tenant, q string) (*Prepared, error) {
	h, err := c.prepare(ctx, tenant, q)
	if err != nil {
		return nil, err
	}
	return &Prepared{c: c, tenant: tenant, src: q, handle: h}, nil
}

func (c *Client) prepare(ctx context.Context, tenant, q string) (uint64, error) {
	r, err := c.roundTrip(ctx, OpPrepare, func(b []byte) []byte {
		return appendQueryReq(b, tenant, q)
	})
	if err != nil {
		return 0, err
	}
	if r.op != OpPrepared || len(r.body) < 8 {
		return 0, fmt.Errorf("wire: malformed prepare response")
	}
	return binary.LittleEndian.Uint64(r.body), nil
}

// Exec runs the prepared query.
func (p *Prepared) Exec(ctx context.Context) ([]view.Row, view.Stats, error) {
	p.mu.Lock()
	h := p.handle
	p.mu.Unlock()
	rows, stats, err := p.exec(ctx, h)
	var we *Error
	if errors.As(err, &we) && we.Code == CodeUnknownHandle {
		nh, perr := p.c.prepare(ctx, p.tenant, p.src)
		if perr != nil {
			return nil, view.Stats{}, perr
		}
		p.mu.Lock()
		p.handle = nh
		p.mu.Unlock()
		return p.exec(ctx, nh)
	}
	return rows, stats, err
}

func (p *Prepared) exec(ctx context.Context, handle uint64) ([]view.Row, view.Stats, error) {
	r, err := p.c.roundTrip(ctx, OpExec, func(b []byte) []byte {
		return appendExecReq(b, p.tenant, handle)
	})
	if err != nil {
		return nil, view.Stats{}, err
	}
	if r.op != OpRows {
		return nil, view.Stats{}, fmt.Errorf("wire: unexpected response opcode %d", r.op)
	}
	return decodeRowsBody(r.body)
}
