// Package wire implements the binary transport that closes the gap
// BENCH_9's B11 measured between wire serving and the in-process
// engine: on µs-scale plan-cache-hit queries the HTTP/JSON framing
// bill *is* the latency, so this package replaces it with persistent
// length-prefixed framed connections (the CRC/codec discipline proven
// in internal/store's WAL), multiplexed request IDs so one connection
// pipelines many in-flight queries and transactions, a kind-tagged
// binary value codec with append-style zero-copy encoding, and
// prepared queries — register a query text once, get a handle, and
// every subsequent execution skips the parser and goes straight to the
// engine's snapshot plan cache keyed by expr.Fingerprint.
//
// The package is transport-only: it defines the frame format, the
// value codec, the server loop and the client, all against a Backend
// interface the hosting process implements (internal/server binds it
// to its tenants, admission control and metrics). See DESIGN.md §14.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Connection preamble and frame format, mirroring the WAL's framing
// (store/wal.go) so the same torn/corrupt-detection discipline applies
// to bytes arriving off a socket:
//
//	preamble: client sends the 8-byte magic "IDBWIRE1" once at connect
//	frame:    [4B payload len LE][4B CRC32C(payload) LE][payload]
//	payload:  [1B opcode][8B request id LE][body]
//
// The CRC covers the whole payload, so a corrupted frame is detected
// and the connection is closed — a framing error leaves no trustworthy
// resynchronisation point, exactly like a damaged WAL tail. Request
// IDs are assigned by the client, echoed on every response frame, and
// need only be unique among that connection's in-flight requests —
// which is what lets one connection pipeline many requests and match
// responses arriving out of order.

const (
	// Magic is the connection preamble the client sends at connect.
	Magic = "IDBWIRE1"
	// frameOverhead is the per-frame framing cost (length + CRC).
	frameOverhead = 8
	// payloadOverhead is the opcode byte plus the request ID.
	payloadOverhead = 9
	// MaxFrame bounds a single frame's payload. Nothing legitimate
	// approaches it; the bound keeps a corrupted or hostile length
	// field from asking the decoder for gigabytes.
	MaxFrame = 16 << 20
)

// Request opcodes (client → server).
const (
	// OpQuery carries [tenant][query text]: parse, plan and serve.
	OpQuery byte = 1
	// OpPrepare carries [tenant][query text]: parse once, return a
	// handle for OpExec.
	OpPrepare byte = 2
	// OpExec carries [tenant][8B handle LE]: execute a prepared query,
	// skipping the parser.
	OpExec byte = 3
	// OpTx carries [tenant][1B flags][ops]: validate (and unless the
	// validate-only flag is set, ship) a mutation batch.
	OpTx byte = 4
	// OpCancel carries [8B target request id LE]: cancel that in-flight
	// request's context. Fire-and-forget; no response frame.
	OpCancel byte = 5
)

// Response opcodes (server → client).
const (
	// OpRows answers OpQuery/OpExec: [stats][row count][rows].
	OpRows byte = 16
	// OpPrepared answers OpPrepare: [8B handle LE].
	OpPrepared byte = 17
	// OpTxOK answers OpTx: [applied][validate stats].
	OpTxOK byte = 18
	// OpErr answers any request: [1B code][message][rejections].
	OpErr byte = 19
)

// txValidateOnly is the OpTx flag bit for a dry-run batch.
const txValidateOnly byte = 1

// crcTable is the Castagnoli polynomial (CRC32C), hardware-accelerated
// on amd64/arm64 — the same table the WAL uses.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded protocol frame.
type Frame struct {
	Op   byte
	ID   uint64
	Body []byte
}

// DecodeFrame decodes the first frame of b, returning the frame and
// the total byte length consumed. It is a pure function of its input
// and never panics: arbitrary bytes yield either a frame or an error
// (FuzzFrameDecode pins this). io.ErrUnexpectedEOF marks a frame that
// is merely incomplete — more bytes may arrive — as opposed to one
// that is positively corrupt and unrecoverable. The returned Body
// aliases b; callers that retain it past b's lifetime must copy.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < frameOverhead {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	crc := binary.LittleEndian.Uint32(b[4:8])
	if plen < payloadOverhead {
		return Frame{}, 0, fmt.Errorf("wire: frame payload length %d below header size", plen)
	}
	if plen > MaxFrame {
		return Frame{}, 0, fmt.Errorf("wire: frame payload length %d exceeds limit", plen)
	}
	end := frameOverhead + int(plen)
	if len(b) < end {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	payload := b[frameOverhead:end]
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return Frame{}, 0, fmt.Errorf("wire: frame checksum mismatch (stored %08x, computed %08x)", crc, got)
	}
	return Frame{
		Op:   payload[0],
		ID:   binary.LittleEndian.Uint64(payload[1:9]),
		Body: payload[payloadOverhead:],
	}, end, nil
}

// AppendFrame appends the encoded frame for (op, id, body) to dst and
// returns the extended slice — allocation-free when dst has capacity,
// which the sync.Pool'd connection buffers arrange on the hot path.
func AppendFrame(dst []byte, op byte, id uint64, body []byte) []byte {
	plen := payloadOverhead + len(body)
	off := len(dst)
	dst = append(dst, make([]byte, frameOverhead+plen)...)
	frame := dst[off:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(plen))
	payload := frame[frameOverhead:]
	payload[0] = op
	binary.LittleEndian.PutUint64(payload[1:9], id)
	copy(payload[payloadOverhead:], body)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	return dst
}

// beginFrame starts building a frame in place: it resets buf, reserves
// the 8-byte length/CRC header and appends the opcode and request ID.
// Append the body, then call finishFrame — together they encode a frame
// into one pooled buffer with zero copies, where AppendFrame (used by
// the client and tests) copies an already-built body.
func beginFrame(buf []byte, op byte, id uint64) []byte {
	buf = append(buf[:0], 0, 0, 0, 0, 0, 0, 0, 0, op)
	return binary.LittleEndian.AppendUint64(buf, id)
}

// finishFrame fills in the header of a frame started by beginFrame.
func finishFrame(buf []byte) []byte {
	payload := buf[frameOverhead:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	return buf
}

// readFrameInto reads one complete frame from r into buf (grown as
// needed) and decodes it. The two-phase read lets the caller set a
// long idle deadline before the header (a quiet connection is fine)
// and a short one before the payload (a peer that started a frame must
// finish it promptly — the binary listener's slowloris guard). The
// returned frame's Body aliases buf.
func readFrameInto(r io.Reader, buf *[]byte, beforePayload func()) (Frame, error) {
	var hdr [frameOverhead]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	if plen < payloadOverhead {
		return Frame{}, fmt.Errorf("wire: frame payload length %d below header size", plen)
	}
	if plen > MaxFrame {
		return Frame{}, fmt.Errorf("wire: frame payload length %d exceeds limit", plen)
	}
	if beforePayload != nil {
		beforePayload()
	}
	need := frameOverhead + int(plen)
	if cap(*buf) < need {
		*buf = make([]byte, need)
	}
	b := (*buf)[:need]
	copy(b, hdr[:])
	if _, err := io.ReadFull(r, b[frameOverhead:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	f, _, err := DecodeFrame(b)
	return f, err
}
