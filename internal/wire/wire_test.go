package wire

import (
	"bytes"
	"errors"
	"testing"

	"interopdb/internal/core"
	"interopdb/internal/expr"
	"interopdb/internal/object"
	"interopdb/internal/view"
)

func sampleSet() object.Value {
	return object.NewSet(object.Int(1), object.Str("two"), object.Null{})
}

func sampleTuple() object.Value {
	return object.NewTuple(map[string]object.Value{
		"n":   object.Int(-42),
		"r":   object.Real(3.25),
		"s":   object.Str("münchen"),
		"b":   object.Bool(true),
		"ref": object.Ref{DB: "db1", OID: 7},
		"set": sampleSet(),
	})
}

func valueEqual(a, b object.Value) bool { return a.Equal(b) }

func TestValueRoundTrip(t *testing.T) {
	vals := []object.Value{
		object.Null{},
		object.Int(0), object.Int(-1), object.Int(1 << 40),
		object.Real(0), object.Real(-2.5),
		object.Str(""), object.Str("hello"),
		object.Bool(true), object.Bool(false),
		object.Ref{DB: "remote", OID: 123456},
		sampleSet(),
		sampleTuple(),
	}
	for _, v := range vals {
		enc := AppendValue(nil, v)
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", v, err)
		}
		if n != len(enc) {
			t.Fatalf("%v: consumed %d of %d bytes", v, n, len(enc))
		}
		if !valueEqual(v, got) {
			t.Fatalf("round trip changed %v to %v", v, got)
		}
	}
}

func TestValueDecodeRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                    // empty
		{99},                  // unknown tag
		{tagInt},              // missing varint
		{tagReal, 1, 2, 3},    // short real
		{tagBool},             // missing payload
		{tagBool, 7},          // bad bool payload
		{tagStr, 5, 'a'},      // short string
		{tagSet, 200, 1},      // count exceeds remaining bytes
		{tagTuple, 1, 1, 'a'}, // field name without value
		{tagRef, 3, 'd', 'b'}, // ref missing oid
	}
	for _, c := range cases {
		if _, _, err := DecodeValue(c); err == nil {
			t.Errorf("decode(%v) accepted corrupt input", c)
		}
	}
}

func TestRowAndMutationRoundTrip(t *testing.T) {
	row := view.Row{"title": object.Str("a"), "rating": object.Int(9), "extra": sampleTuple()}
	enc := AppendRow(nil, row)
	got, n, err := DecodeRow(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("row decode: %v (n=%d/%d)", err, n, len(enc))
	}
	if len(got) != len(row) || !got["title"].Equal(row["title"]) || !got["rating"].Equal(row["rating"]) {
		t.Fatalf("row round trip changed %v to %v", row, got)
	}

	m := view.Mutation{
		Kind:  view.MutUpdate,
		Class: "Item",
		ID:    -3,
		Attrs: map[string]object.Value{"rating": object.Int(5), "title": object.Str("x")},
	}
	encM := AppendMutation(nil, m)
	gotM, nM, err := DecodeMutation(encM)
	if err != nil || nM != len(encM) {
		t.Fatalf("mutation decode: %v", err)
	}
	if gotM.Kind != m.Kind || gotM.Class != m.Class || gotM.ID != m.ID || !object.AttrsEqual(gotM.Attrs, m.Attrs) {
		t.Fatalf("mutation round trip changed %+v to %+v", m, gotM)
	}

	if _, _, err := DecodeMutation([]byte{9, 0}); err == nil {
		t.Fatal("unknown mutation kind accepted")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	s := view.Stats{
		Scanned: 100, PrunedEmpty: true, DroppedConjuncts: 2, IndexHits: 3,
		CandidateRows: 40, PlanCached: true, ConstraintGated: true,
		Degraded: []string{"db2", "db3"},
	}
	enc := AppendQueryStats(nil, s)
	got, n, err := DecodeQueryStats(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("stats decode: %v", err)
	}
	if got.Scanned != s.Scanned || !got.PlanCached || !got.ConstraintGated || !got.PrunedEmpty ||
		got.IndexHits != s.IndexHits || got.CandidateRows != s.CandidateRows ||
		len(got.Degraded) != 2 || got.Degraded[0] != "db2" {
		t.Fatalf("stats round trip changed %+v to %+v", s, got)
	}

	vs := view.ValidateStats{ConstraintsChecked: 7, ConstraintsSkipped: 2, PairsChecked: 30}
	encV := AppendValidateStats(nil, vs)
	gotV, _, err := DecodeValidateStats(encV)
	if err != nil || gotV != vs {
		t.Fatalf("validate stats round trip: %v, %+v", err, gotV)
	}
}

func TestErrBodyRoundTrip(t *testing.T) {
	node, err := expr.Parse("rating >= 1")
	if err != nil {
		t.Fatal(err)
	}
	rejs := []view.Rejection{{
		Constraint: core.GlobalConstraint{Classes: []string{"Item"}, Expr: node},
		Detail:     "rating 0 below floor",
		Repairs: []view.Repair{
			{Kind: view.RepairSetAttr, Attr: "rating", Value: object.Int(1), ID: 4, Text: "set rating to 1"},
			{Kind: view.RepairDeleteTuple, ID: 4, Text: "delete tuple 4"},
		},
	}}
	enc := appendErrBody(nil, CodeRejected, 3, "mutation rejected", rejs)
	got, err := decodeErrBody(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Code != CodeRejected || got.RetryAfter != 3 || got.Msg != "mutation rejected" {
		t.Fatalf("header round trip: %+v", got)
	}
	if len(got.Rejections) != 1 {
		t.Fatalf("rejections: %d", len(got.Rejections))
	}
	r := got.Rejections[0]
	if r.Constraint != node.String() || r.Detail != "rating 0 below floor" || len(r.Repairs) != 2 {
		t.Fatalf("rejection round trip: %+v", r)
	}
	if !r.Repairs[0].HasVal || !r.Repairs[0].Value.Equal(object.Int(1)) || r.Repairs[0].Kind != "set-attr" {
		t.Fatalf("repair round trip: %+v", r.Repairs[0])
	}
	if r.Repairs[1].HasVal {
		t.Fatalf("delete repair grew a value: %+v", r.Repairs[1])
	}
}

func TestFrameRoundTrip(t *testing.T) {
	body := appendQueryReq(nil, "main", "select title from Item where rating >= 7")
	enc := AppendFrame(nil, OpQuery, 99, body)
	f, n, err := DecodeFrame(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: %v", err)
	}
	if f.Op != OpQuery || f.ID != 99 || !bytes.Equal(f.Body, body) {
		t.Fatalf("frame round trip changed (%d,%d)", f.Op, f.ID)
	}
	// beginFrame/finishFrame (the server's single-buffer path) must
	// produce exactly the same bytes as AppendFrame.
	b := beginFrame(nil, OpQuery, 99)
	b = append(b, body...)
	b = finishFrame(b)
	if !bytes.Equal(b, enc) {
		t.Fatal("beginFrame/finishFrame disagrees with AppendFrame")
	}
}

func TestFrameDecodeRejectsCorrupt(t *testing.T) {
	valid := AppendFrame(nil, OpQuery, 1, []byte("body"))
	for i := range valid {
		mut := append([]byte{}, valid...)
		mut[i] ^= 0xFF
		if f, _, err := DecodeFrame(mut); err == nil {
			// Flipping a length byte can only be accepted if it still
			// frames a CRC-valid payload, which a single flip cannot.
			t.Errorf("flip at %d accepted: %+v", i, f)
		}
	}
	if _, _, err := DecodeFrame(valid[:len(valid)-1]); !errors.Is(err, errIncomplete(err)) && err == nil {
		t.Error("truncated frame accepted")
	}
}

// errIncomplete lets the truncation assertion above read naturally:
// any non-nil error is acceptable, we only reject nil.
func errIncomplete(err error) error { return err }

// TestAppendValueAllocs pins the zero-allocation value tagging: with a
// warm buffer, encoding a scalar row costs nothing on the heap.
func TestAppendValueAllocs(t *testing.T) {
	buf := make([]byte, 0, 256)
	row := view.Row{"title": object.Str("snow crash"), "rating": object.Int(9)}
	allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		buf = AppendRow(buf, row)
	})
	if allocs != 0 {
		t.Fatalf("AppendRow allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkAppendRow(b *testing.B) {
	b.ReportAllocs()
	buf := make([]byte, 0, 256)
	row := view.Row{"title": object.Str("snow crash"), "rating": object.Int(9), "isbn": object.Str("0-553-08853-X")}
	for i := 0; i < b.N; i++ {
		buf = AppendRow(buf[:0], row)
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	b.ReportAllocs()
	body := appendQueryReq(nil, "main", "select title from Item where rating >= 7")
	buf := make([]byte, 0, 256)
	for i := 0; i < b.N; i++ {
		buf = beginFrame(buf, OpQuery, uint64(i))
		buf = append(buf, body...)
		buf = finishFrame(buf)
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	b.ReportAllocs()
	enc := AppendFrame(nil, OpRows, 7, appendRowsBody(nil,
		[]view.Row{{"title": object.Str("x"), "rating": object.Int(5)}}, view.Stats{Scanned: 1}))
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFrame(enc); err != nil {
			b.Fatal(err)
		}
	}
}
