package object

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindInt: "int", KindReal: "real",
		KindString: "string", KindBool: "bool", KindSet: "set",
		KindTuple: "tuple", KindRef: "ref", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestNumericCrossKindEquality(t *testing.T) {
	if !Int(2).Equal(Real(2.0)) {
		t.Error("Int(2) should equal Real(2.0)")
	}
	if !Real(2.0).Equal(Int(2)) {
		t.Error("Real(2.0) should equal Int(2)")
	}
	if Int(2).Equal(Real(2.5)) {
		t.Error("Int(2) should not equal Real(2.5)")
	}
	if Int(2).Equal(Str("2")) {
		t.Error("Int(2) should not equal Str(\"2\")")
	}
}

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Real(1.5), "1.5"},
		{Real(2), "2.0"},
		{Str("abc"), "'abc'"},
		{Str("o'brien"), "'o''brien'"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Null{}, "null"},
		{Ref{DB: "DB1", OID: 7}, "DB1#7"},
		{Ref{OID: 7}, "#7"},
		{NewSet(Int(20), Int(10), Int(20)), "{10,20}"},
		{NewTuple(map[string]Value{"b": Int(1), "a": Str("x")}), "(a='x',b=1)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSetDedupAndCanonicalOrder(t *testing.T) {
	s := NewSet(Int(20), Int(10), Real(10.0), Int(14))
	if s.Len() != 3 {
		t.Fatalf("set should dedup Int(10)/Real(10.0): got len %d: %v", s.Len(), s)
	}
	elems := s.Elems()
	f0, _ := AsFloat(elems[0])
	f1, _ := AsFloat(elems[1])
	f2, _ := AsFloat(elems[2])
	if !(f0 < f1 && f1 < f2) {
		t.Errorf("set elements not sorted: %v", s)
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(Int(1), Int(2), Int(3))
	b := NewSet(Int(3), Int(4))
	if got := a.Union(b); got.Len() != 4 {
		t.Errorf("union: %v", got)
	}
	if got := a.Intersect(b); got.Len() != 1 || !got.Contains(Int(3)) {
		t.Errorf("intersect: %v", got)
	}
	if !a.Contains(Real(2.0)) {
		t.Error("contains should respect numeric cross-kind equality")
	}
	if a.Contains(Int(9)) {
		t.Error("contains false positive")
	}
}

func TestTupleFields(t *testing.T) {
	tp := NewTuple(map[string]Value{"name": Str("IEEE"), "loc": Str("NY")})
	if got := tp.Field("name"); !got.Equal(Str("IEEE")) {
		t.Errorf("Field(name) = %v", got)
	}
	if got := tp.Field("missing"); got.Kind() != KindNull {
		t.Errorf("missing field should be null, got %v", got)
	}
	if n := tp.Names(); len(n) != 2 || n[0] != "loc" || n[1] != "name" {
		t.Errorf("Names() = %v", n)
	}
	same := NewTuple(map[string]Value{"loc": Str("NY"), "name": Str("IEEE")})
	if !tp.Equal(same) {
		t.Error("tuples with same fields should be equal")
	}
	diff := NewTuple(map[string]Value{"name": Str("ACM"), "loc": Str("NY")})
	if tp.Equal(diff) {
		t.Error("tuples with different fields should differ")
	}
}

func TestCompare(t *testing.T) {
	lt := []struct{ a, b Value }{
		{Int(1), Int(2)},
		{Int(1), Real(1.5)},
		{Str("a"), Str("b")},
		{Bool(false), Bool(true)},
		{Ref{"A", 1}, Ref{"B", 1}},
		{Ref{"A", 1}, Ref{"A", 2}},
		{Null{}, Int(0)},
		{NewSet(Int(1)), NewSet(Int(1), Int(2))},
		{NewSet(Int(1)), NewSet(Int(2))},
	}
	for _, c := range lt {
		got, ok := Compare(c.a, c.b)
		if !ok || got >= 0 {
			t.Errorf("Compare(%v,%v) = %d,%v; want <0,true", c.a, c.b, got, ok)
		}
		got, ok = Compare(c.b, c.a)
		if !ok || got <= 0 {
			t.Errorf("Compare(%v,%v) = %d,%v; want >0,true", c.b, c.a, got, ok)
		}
	}
	if _, ok := Compare(Int(1), Str("a")); ok {
		t.Error("int and string should be incomparable")
	}
	if c, ok := Compare(Null{}, Null{}); !ok || c != 0 {
		t.Error("null == null")
	}
}

func TestHashEqualValuesHashEqual(t *testing.T) {
	pairs := []struct{ a, b Value }{
		{Int(2), Real(2.0)},
		{NewSet(Int(1), Int(2)), NewSet(Int(2), Int(1))},
		{Str("x"), Str("x")},
		{NewTuple(map[string]Value{"a": Int(1)}), NewTuple(map[string]Value{"a": Real(1)})},
	}
	for _, p := range pairs {
		if Hash(p.a) != Hash(p.b) {
			t.Errorf("Hash(%v) != Hash(%v) but values equal", p.a, p.b)
		}
	}
	if Hash(Int(1)) == Hash(Int(2)) {
		t.Error("distinct ints should (very likely) hash differently")
	}
	if Hash(Str("")) == Hash(Bool(false)) {
		t.Error("kind tag should separate empty string from false")
	}
}

// randValue builds a random scalar value for property tests.
func randValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Int(r.Int63n(2000) - 1000)
	case 1:
		return Real(r.Float64()*2000 - 1000)
	case 2:
		return Str(string(rune('a' + r.Intn(26))))
	case 3:
		return Bool(r.Intn(2) == 0)
	default:
		return Null{}
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randValue(r), randValue(r)
		c1, ok1 := Compare(a, b)
		c2, ok2 := Compare(b, a)
		if ok1 != ok2 {
			// Null is comparable against everything in one direction only
			// if the other side is incomparable kind; tolerate asymmetric ok
			// only when one side is Null.
			_, an := a.(Null)
			_, bn := b.(Null)
			return an || bn
		}
		if !ok1 {
			return true
		}
		return (c1 < 0) == (c2 > 0) && (c1 == 0) == (c2 == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualImpliesHashEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randValue(r), randValue(r)
		if a.Equal(b) {
			return Hash(a) == Hash(b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSetUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(6)
		var xs, ys []Value
		for i := 0; i < n; i++ {
			xs = append(xs, randValue(r))
			ys = append(ys, randValue(r))
		}
		a, b := NewSet(xs...), NewSet(ys...)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := AsFloat(Int(3)); !ok || f != 3 {
		t.Error("AsFloat(Int)")
	}
	if f, ok := AsFloat(Real(2.5)); !ok || f != 2.5 {
		t.Error("AsFloat(Real)")
	}
	if _, ok := AsFloat(Str("x")); ok {
		t.Error("AsFloat(Str) should fail")
	}
	if math.IsNaN(float64(Real(math.NaN()))) != true {
		t.Error("sanity")
	}
}
