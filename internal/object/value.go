// Package object implements the value model and type system underlying the
// TM-style object databases used throughout the reproduction: scalar values
// (integers, reals, strings, booleans), finite sets, tuples, object
// references and null, together with ordering, equality and conversion.
//
// The model follows the fragment of the TM object model [BBZ93] that the
// paper's Figure 1 exercises.
package object

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic kinds of Value.
type Kind int

// The value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindReal
	KindString
	KindBool
	KindSet
	KindTuple
	KindRef
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindReal:
		return "real"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindSet:
		return "set"
	case KindTuple:
		return "tuple"
	case KindRef:
		return "ref"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// OID identifies an object within a database. OIDs are allocated by stores
// and are unique per database, not globally; global objects carry
// provenance instead.
type OID uint64

// String formats the OID as "#n".
func (o OID) String() string { return "#" + strconv.FormatUint(uint64(o), 10) }

// Value is a dynamically typed database value. Implementations are
// immutable; Set copies its elements on construction.
type Value interface {
	// Kind reports the dynamic kind.
	Kind() Kind
	// Equal reports deep equality with another value. Int and Real
	// compare numerically across kinds (Int(2).Equal(Real(2.0)) is true),
	// mirroring TM's numeric subsumption.
	Equal(Value) bool
	// String renders the value in TM literal syntax.
	String() string
}

// Int is a 64-bit integer value.
type Int int64

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// Equal implements Value.
func (v Int) Equal(o Value) bool {
	switch o := o.(type) {
	case Int:
		return v == o
	case Real:
		return float64(v) == float64(o)
	default:
		return false
	}
}

// String implements Value.
func (v Int) String() string { return strconv.FormatInt(int64(v), 10) }

// Real is a double-precision real value.
type Real float64

// Kind implements Value.
func (Real) Kind() Kind { return KindReal }

// Equal implements Value.
func (v Real) Equal(o Value) bool {
	switch o := o.(type) {
	case Real:
		return v == o
	case Int:
		return float64(v) == float64(o)
	default:
		return false
	}
}

// String implements Value.
func (v Real) String() string {
	s := strconv.FormatFloat(float64(v), 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// Str is a string value.
type Str string

// Kind implements Value.
func (Str) Kind() Kind { return KindString }

// Equal implements Value.
func (v Str) Equal(o Value) bool {
	s, ok := o.(Str)
	return ok && v == s
}

// String implements Value; strings render single-quoted as in TM.
func (v Str) String() string { return "'" + strings.ReplaceAll(string(v), "'", "''") + "'" }

// Bool is a boolean value.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// Equal implements Value.
func (v Bool) Equal(o Value) bool {
	b, ok := o.(Bool)
	return ok && v == b
}

// String implements Value.
func (v Bool) String() string {
	if v {
		return "true"
	}
	return "false"
}

// Ref is a reference to an object, qualified by the database the OID was
// allocated in so that references survive integration.
type Ref struct {
	DB  string
	OID OID
}

// Kind implements Value.
func (Ref) Kind() Kind { return KindRef }

// Equal implements Value.
func (v Ref) Equal(o Value) bool {
	r, ok := o.(Ref)
	return ok && v == r
}

// String implements Value.
func (v Ref) String() string {
	if v.DB == "" {
		return v.OID.String()
	}
	return v.DB + v.OID.String()
}

// Null is the distinguished absent value.
type Null struct{}

// Kind implements Value.
func (Null) Kind() Kind { return KindNull }

// Equal implements Value. Null equals only Null.
func (Null) Equal(o Value) bool { _, ok := o.(Null); return ok }

// String implements Value.
func (Null) String() string { return "null" }

// Set is an immutable finite set of values. Construct with NewSet, which
// deduplicates; the element order is canonical (sorted by Compare).
type Set struct {
	elems []Value
}

// NewSet builds a set from the given elements, removing duplicates and
// sorting canonically.
func NewSet(elems ...Value) Set {
	out := make([]Value, 0, len(elems))
	for _, e := range elems {
		dup := false
		for _, have := range out {
			if have.Equal(e) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return totalLess(out[i], out[j]) })
	return Set{elems: out}
}

// groupRank buckets kinds so that the canonical set order is total even
// across incomparable kinds. Int and Real share a bucket because they
// compare (and equal) numerically.
func groupRank(v Value) int {
	switch v.Kind() {
	case KindNull:
		return 0
	case KindInt, KindReal:
		return 1
	case KindString:
		return 2
	case KindBool:
		return 3
	case KindRef:
		return 4
	case KindSet:
		return 5
	default:
		return 6
	}
}

// totalLess is a total strict order over all values: by kind bucket first,
// then by Compare, then by rendered form as a last resort.
func totalLess(a, b Value) bool {
	ra, rb := groupRank(a), groupRank(b)
	if ra != rb {
		return ra < rb
	}
	if c, ok := Compare(a, b); ok {
		return c < 0
	}
	return a.String() < b.String()
}

// Kind implements Value.
func (Set) Kind() Kind { return KindSet }

// Len reports the cardinality.
func (v Set) Len() int { return len(v.elems) }

// Elems returns a copy of the canonical element slice.
func (v Set) Elems() []Value {
	out := make([]Value, len(v.elems))
	copy(out, v.elems)
	return out
}

// Contains reports membership.
func (v Set) Contains(e Value) bool {
	for _, have := range v.elems {
		if have.Equal(e) {
			return true
		}
	}
	return false
}

// Union returns the set union.
func (v Set) Union(o Set) Set {
	all := make([]Value, 0, len(v.elems)+len(o.elems))
	all = append(all, v.elems...)
	all = append(all, o.elems...)
	return NewSet(all...)
}

// Intersect returns the set intersection.
func (v Set) Intersect(o Set) Set {
	var out []Value
	for _, e := range v.elems {
		if o.Contains(e) {
			out = append(out, e)
		}
	}
	return NewSet(out...)
}

// Equal implements Value.
func (v Set) Equal(o Value) bool {
	s, ok := o.(Set)
	if !ok || len(s.elems) != len(v.elems) {
		return false
	}
	for i := range v.elems {
		if !v.elems[i].Equal(s.elems[i]) {
			return false
		}
	}
	return true
}

// String implements Value.
func (v Set) String() string {
	parts := make([]string, len(v.elems))
	for i, e := range v.elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Tuple is an immutable attribute-name→value record, used for complex
// values produced by descriptivity conformation.
type Tuple struct {
	names []string // sorted
	vals  map[string]Value
}

// NewTuple builds a tuple from a field map; the map is copied.
func NewTuple(fields map[string]Value) Tuple {
	names := make([]string, 0, len(fields))
	vals := make(map[string]Value, len(fields))
	for k, v := range fields {
		names = append(names, k)
		vals[k] = v
	}
	sort.Strings(names)
	return Tuple{names: names, vals: vals}
}

// Kind implements Value.
func (Tuple) Kind() Kind { return KindTuple }

// Field returns the named field, or Null if absent.
func (v Tuple) Field(name string) Value {
	if x, ok := v.vals[name]; ok {
		return x
	}
	return Null{}
}

// Names returns the sorted field names.
func (v Tuple) Names() []string {
	out := make([]string, len(v.names))
	copy(out, v.names)
	return out
}

// Equal implements Value.
func (v Tuple) Equal(o Value) bool {
	t, ok := o.(Tuple)
	if !ok || len(t.names) != len(v.names) {
		return false
	}
	for _, n := range v.names {
		x, ok := t.vals[n]
		if !ok || !v.vals[n].Equal(x) {
			return false
		}
	}
	return true
}

// String implements Value.
func (v Tuple) String() string {
	parts := make([]string, len(v.names))
	for i, n := range v.names {
		parts[i] = n + "=" + v.vals[n].String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// IsNumeric reports whether v is an Int or Real.
func IsNumeric(v Value) bool {
	k := v.Kind()
	return k == KindInt || k == KindReal
}

// AsFloat extracts a numeric value as float64.
func AsFloat(v Value) (float64, bool) {
	switch v := v.(type) {
	case Int:
		return float64(v), true
	case Real:
		return float64(v), true
	default:
		return 0, false
	}
}

// Compare orders two values. It returns (c, true) with c<0, c==0 or c>0
// when the values are comparable (both numeric, both strings, both bools,
// both refs, or sets/tuples compared elementwise), and (0, false) when no
// order is defined between the kinds.
func Compare(a, b Value) (int, bool) {
	if IsNumeric(a) && IsNumeric(b) {
		x, _ := AsFloat(a)
		y, _ := AsFloat(b)
		switch {
		case x < y:
			return -1, true
		case x > y:
			return 1, true
		default:
			return 0, true
		}
	}
	switch a := a.(type) {
	case Str:
		if s, ok := b.(Str); ok {
			return strings.Compare(string(a), string(s)), true
		}
	case Bool:
		if s, ok := b.(Bool); ok {
			x, y := 0, 0
			if a {
				x = 1
			}
			if s {
				y = 1
			}
			return x - y, true
		}
	case Ref:
		if s, ok := b.(Ref); ok {
			if c := strings.Compare(a.DB, s.DB); c != 0 {
				return c, true
			}
			switch {
			case a.OID < s.OID:
				return -1, true
			case a.OID > s.OID:
				return 1, true
			default:
				return 0, true
			}
		}
	case Null:
		if _, ok := b.(Null); ok {
			return 0, true
		}
		return -1, true // nulls sort first against anything
	case Set:
		if s, ok := b.(Set); ok {
			for i := 0; i < len(a.elems) && i < len(s.elems); i++ {
				if c, ok := Compare(a.elems[i], s.elems[i]); ok && c != 0 {
					return c, true
				}
			}
			return len(a.elems) - len(s.elems), true
		}
	case Tuple:
		if s, ok := b.(Tuple); ok {
			return strings.Compare(a.String(), s.String()), true
		}
	}
	if _, ok := b.(Null); ok {
		return 1, true
	}
	return 0, false
}

// Hash returns a stable 64-bit hash of the value, suitable for hash-join
// entity resolution. Equal values hash equally (numeric cross-kind
// equality included: Int(2) and Real(2.0) share a hash).
func Hash(v Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(bs ...byte) {
		for _, b := range bs {
			h ^= uint64(b)
			h *= prime64
		}
	}
	mixU64 := func(x uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(x >> (8 * i)))
		}
	}
	switch v := v.(type) {
	case Null:
		mix(0)
	case Int:
		mix(1)
		mixU64(math.Float64bits(float64(v)))
	case Real:
		mix(1)
		mixU64(math.Float64bits(float64(v)))
	case Str:
		mix(2)
		mix([]byte(v)...)
	case Bool:
		mix(3)
		if v {
			mix(1)
		} else {
			mix(0)
		}
	case Ref:
		mix(4)
		mix([]byte(v.DB)...)
		mixU64(uint64(v.OID))
	case Set:
		mix(5)
		for _, e := range v.elems {
			mixU64(Hash(e))
		}
	case Tuple:
		mix(6)
		for _, n := range v.names {
			mix([]byte(n)...)
			mixU64(Hash(v.vals[n]))
		}
	}
	return h
}
