package object

import (
	"math"
	"testing"
)

func TestBasicTypeAccepts(t *testing.T) {
	if !TInt.Accepts(Int(5)) || TInt.Accepts(Real(1.5)) || TInt.Accepts(Str("x")) {
		t.Error("TInt accepts")
	}
	if !TReal.Accepts(Real(1.5)) || !TReal.Accepts(Int(2)) {
		t.Error("TReal should accept ints (numeric subsumption)")
	}
	if !TString.Accepts(Str("x")) || TString.Accepts(Int(1)) {
		t.Error("TString accepts")
	}
	if !TBool.Accepts(Bool(true)) || TBool.Accepts(Int(1)) {
		t.Error("TBool accepts")
	}
}

func TestRangeType(t *testing.T) {
	r := RangeType{1, 5}
	if r.String() != "1..5" {
		t.Errorf("String() = %q", r.String())
	}
	for n := int64(1); n <= 5; n++ {
		if !r.Accepts(Int(n)) {
			t.Errorf("range should accept %d", n)
		}
	}
	if r.Accepts(Int(0)) || r.Accepts(Int(6)) {
		t.Error("range bounds")
	}
	if !r.Accepts(Real(3.0)) {
		t.Error("range should accept integral reals")
	}
	if r.Accepts(Real(3.5)) {
		t.Error("range should reject fractional reals")
	}
}

func TestSetType(t *testing.T) {
	st := SetType{TString}
	if st.String() != "Pstring" {
		t.Errorf("String() = %q", st.String())
	}
	if !st.Accepts(NewSet(Str("a"), Str("b"))) {
		t.Error("set of strings")
	}
	if st.Accepts(NewSet(Str("a"), Int(1))) {
		t.Error("mixed set should be rejected")
	}
	if st.Accepts(Str("a")) {
		t.Error("non-set rejected")
	}
	if !st.Accepts(NewSet()) {
		t.Error("empty set accepted by any set type")
	}
}

func TestClassType(t *testing.T) {
	ct := ClassType{"Publisher"}
	if ct.String() != "Publisher" {
		t.Error("String")
	}
	if !ct.Accepts(Ref{"B", 1}) || !ct.Accepts(Null{}) || ct.Accepts(Int(1)) {
		t.Error("Accepts")
	}
}

func TestTupleType(t *testing.T) {
	tt := TupleType{Fields: map[string]Type{"name": TString, "loc": TString}}
	if got := tt.String(); got != "(loc:string,name:string)" {
		t.Errorf("String() = %q", got)
	}
	ok := NewTuple(map[string]Value{"name": Str("IEEE"), "loc": Str("NY")})
	if !tt.Accepts(ok) {
		t.Error("accepting tuple")
	}
	bad := NewTuple(map[string]Value{"name": Int(3), "loc": Str("NY")})
	if tt.Accepts(bad) {
		t.Error("field type mismatch should be rejected")
	}
}

func TestEqualType(t *testing.T) {
	cases := []struct {
		a, b Type
		want bool
	}{
		{TInt, TInt, true},
		{TInt, TReal, false},
		{RangeType{1, 5}, RangeType{1, 5}, true},
		{RangeType{1, 5}, RangeType{1, 10}, false},
		{SetType{TString}, SetType{TString}, true},
		{SetType{TString}, SetType{TInt}, false},
		{ClassType{"A"}, ClassType{"A"}, true},
		{ClassType{"A"}, ClassType{"B"}, false},
		{TInt, RangeType{1, 5}, false},
		{TupleType{map[string]Type{"a": TInt}}, TupleType{map[string]Type{"a": TInt}}, true},
		{TupleType{map[string]Type{"a": TInt}}, TupleType{map[string]Type{"b": TInt}}, false},
	}
	for _, c := range cases {
		if got := c.a.EqualType(c.b); got != c.want {
			t.Errorf("EqualType(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNumericAndBounds(t *testing.T) {
	if !Numeric(TInt) || !Numeric(TReal) || !Numeric(RangeType{1, 5}) {
		t.Error("Numeric positives")
	}
	if Numeric(TString) || Numeric(SetType{TInt}) {
		t.Error("Numeric negatives")
	}
	lo, hi, ok := Bounds(RangeType{1, 10})
	if !ok || lo != 1 || hi != 10 {
		t.Errorf("Bounds(1..10) = %v,%v,%v", lo, hi, ok)
	}
	lo, hi, ok = Bounds(TReal)
	if !ok || !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Error("Bounds(real) should be infinite")
	}
	if _, _, ok := Bounds(TString); ok {
		t.Error("Bounds(string) should fail")
	}
}

func TestZeroOf(t *testing.T) {
	cases := []struct {
		t Type
		k Kind
	}{
		{TInt, KindInt},
		{TReal, KindReal},
		{TString, KindString},
		{TBool, KindBool},
		{RangeType{2, 5}, KindInt},
		{SetType{TInt}, KindSet},
		{ClassType{"X"}, KindNull},
		{TupleType{nil}, KindTuple},
	}
	for _, c := range cases {
		v := ZeroOf(c.t)
		if v.Kind() != c.k {
			t.Errorf("ZeroOf(%v).Kind() = %v, want %v", c.t, v.Kind(), c.k)
		}
		if !c.t.Accepts(v) {
			t.Errorf("ZeroOf(%v) = %v not accepted by its own type", c.t, v)
		}
	}
	if v := ZeroOf(RangeType{2, 5}); !v.Equal(Int(2)) {
		t.Errorf("ZeroOf(range) should be lower bound, got %v", v)
	}
}
