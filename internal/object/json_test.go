package object

import (
	"encoding/json"
	"testing"
)

// jsonSamples covers every value kind, including the nesting the wire
// codec historically lacked (tuples, sets of sets).
func jsonSamples() []Value {
	return []Value{
		Null{},
		Int(0),
		Int(-42),
		Int(1 << 60), // beyond float53: must not round-trip through float64
		Real(0),
		Real(30.0), // renders as "30.0": the textual ambiguity motivating the codec
		Real(0.1),
		Real(-2.5e-8),
		Str(""),
		Str("O'Reilly \"quoted\" — unicode ✓"),
		Bool(true),
		Bool(false),
		Ref{DB: "db1", OID: 7},
		Ref{}, // unqualified ref
		NewSet(),
		NewSet(Int(3), Int(1), Int(2)),
		NewSet(Str("a"), NewSet(Int(1)), Null{}),
		NewTuple(nil),
		NewTuple(map[string]Value{"name": Str("IEEE"), "rating": Int(9)}),
		NewTuple(map[string]Value{"inner": NewTuple(map[string]Value{"s": NewSet(Real(1.5))})}),
	}
}

func TestValueJSONRoundTrip(t *testing.T) {
	for _, v := range jsonSamples() {
		b, err := MarshalValue(v)
		if err != nil {
			t.Fatalf("MarshalValue(%s): %v", v, err)
		}
		got, err := UnmarshalValue(b)
		if err != nil {
			t.Fatalf("UnmarshalValue(%s = %s): %v", v, b, err)
		}
		if got.Kind() != v.Kind() {
			t.Errorf("%s: kind changed %s -> %s", b, v.Kind(), got.Kind())
		}
		if !got.Equal(v) || !v.Equal(got) {
			t.Errorf("%s: round trip changed value %s -> %s", b, v, got)
		}
		if got.String() != v.String() {
			t.Errorf("%s: rendered form changed %q -> %q", b, v.String(), got.String())
		}
	}
}

// TestValueJSONKindExact pins that Int and Real survive as their exact
// kinds even when numerically equal — the property the TM literal
// syntax cannot provide.
func TestValueJSONKindExact(t *testing.T) {
	for _, v := range []Value{Int(30), Real(30)} {
		b, err := MarshalValue(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalValue(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind() != v.Kind() {
			t.Errorf("kind %s decoded as %s", v.Kind(), got.Kind())
		}
	}
}

func TestValueJSONDeterministic(t *testing.T) {
	v := NewTuple(map[string]Value{"b": Int(2), "a": Int(1), "c": NewSet(Int(3), Int(1))})
	first, err := MarshalValue(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		b, err := MarshalValue(v)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(first) {
			t.Fatalf("non-deterministic encoding: %s vs %s", first, b)
		}
	}
}

func TestValueJSONStrict(t *testing.T) {
	bad := []string{
		``,
		`{}`,
		`{"t":"frob"}`,
		`{"t":"int"}`,
		`{"t":"real"}`,
		`{"t":"str"}`,
		`{"t":"bool"}`,
		`{"t":"set","elems":[{"t":"nope"}]}`,
		`{"t":"tuple","fields":{"x":{}}}`,
		`[1,2,3]`,
		`"int"`,
	}
	for _, s := range bad {
		if v, err := UnmarshalValue([]byte(s)); err == nil {
			t.Errorf("UnmarshalValue(%q) = %s, want error", s, v)
		}
	}
}

func TestMarshalAttrsRoundTrip(t *testing.T) {
	attrs := map[string]Value{
		"title":   Str("DB Interop"),
		"price":   Real(49.5),
		"count":   Int(3),
		"in":      Bool(true),
		"pub":     Ref{DB: "db2", OID: 12},
		"tags":    NewSet(Str("x"), Str("y")),
		"complex": NewTuple(map[string]Value{"k": Null{}}),
	}
	raw, err := MarshalAttrs(attrs)
	if err != nil {
		t.Fatal(err)
	}
	// The raw form must embed cleanly in a larger document.
	doc, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]json.RawMessage
	if err := json.Unmarshal(doc, &back); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAttrs(back)
	if err != nil {
		t.Fatal(err)
	}
	if !AttrsEqual(attrs, got) {
		t.Fatalf("attrs changed: %v -> %v", attrs, got)
	}
	if !AttrsEqual(got, attrs) {
		t.Fatalf("AttrsEqual not symmetric")
	}

	if m, err := MarshalAttrs(nil); err != nil || m != nil {
		t.Fatalf("MarshalAttrs(nil) = %v, %v", m, err)
	}
	if a, err := UnmarshalAttrs(nil); err != nil || a != nil {
		t.Fatalf("UnmarshalAttrs(nil) = %v, %v", a, err)
	}
}

func TestAttrsEqual(t *testing.T) {
	a := map[string]Value{"x": Int(1)}
	cases := []struct {
		b    map[string]Value
		want bool
	}{
		{map[string]Value{"x": Int(1)}, true},
		{map[string]Value{"x": Real(1)}, true}, // numeric cross-kind equality, like Value.Equal
		{map[string]Value{"x": Int(2)}, false},
		{map[string]Value{"y": Int(1)}, false},
		{map[string]Value{}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := AttrsEqual(a, c.b); got != c.want {
			t.Errorf("AttrsEqual(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}
