package object

import (
	"fmt"
	"math"
	"strings"
)

// Type describes the static type of an attribute. The fragment implemented
// covers Figure 1 of the paper: basic types, integer range types such as
// 1..5, set types (TM's "Pstring"), and references to classes.
type Type interface {
	// String renders the type in TM syntax.
	String() string
	// Accepts reports whether the value is a member of the type.
	Accepts(Value) bool
	// EqualType reports structural type equality.
	EqualType(Type) bool
}

// BasicType is one of int, real, string, bool.
type BasicType struct{ K Kind }

// Predefined basic types.
var (
	TInt    = BasicType{KindInt}
	TReal   = BasicType{KindReal}
	TString = BasicType{KindString}
	TBool   = BasicType{KindBool}
)

// String implements Type.
func (t BasicType) String() string { return t.K.String() }

// Accepts implements Type. Ints are accepted where reals are expected.
func (t BasicType) Accepts(v Value) bool {
	if t.K == KindReal && v.Kind() == KindInt {
		return true
	}
	return v.Kind() == t.K
}

// EqualType implements Type.
func (t BasicType) EqualType(o Type) bool {
	b, ok := o.(BasicType)
	return ok && b.K == t.K
}

// RangeType is an inclusive integer range such as 1..5.
type RangeType struct{ Lo, Hi int64 }

// String implements Type.
func (t RangeType) String() string { return fmt.Sprintf("%d..%d", t.Lo, t.Hi) }

// Accepts implements Type.
func (t RangeType) Accepts(v Value) bool {
	f, ok := AsFloat(v)
	if !ok || f != math.Trunc(f) {
		return false
	}
	n := int64(f)
	return n >= t.Lo && n <= t.Hi
}

// EqualType implements Type.
func (t RangeType) EqualType(o Type) bool {
	r, ok := o.(RangeType)
	return ok && r == t
}

// SetType is a finite set over an element type (TM's P-constructor).
type SetType struct{ Elem Type }

// String implements Type.
func (t SetType) String() string { return "P" + t.Elem.String() }

// Accepts implements Type.
func (t SetType) Accepts(v Value) bool {
	s, ok := v.(Set)
	if !ok {
		return false
	}
	for _, e := range s.Elems() {
		if !t.Elem.Accepts(e) {
			return false
		}
	}
	return true
}

// EqualType implements Type.
func (t SetType) EqualType(o Type) bool {
	s, ok := o.(SetType)
	return ok && t.Elem.EqualType(s.Elem)
}

// ClassType is a reference to objects of a named class.
type ClassType struct{ Class string }

// String implements Type.
func (t ClassType) String() string { return t.Class }

// Accepts implements Type. Class extension membership is checked by the
// store; at the type level any Ref (or Null) is accepted.
func (t ClassType) Accepts(v Value) bool {
	k := v.Kind()
	return k == KindRef || k == KindNull
}

// EqualType implements Type.
func (t ClassType) EqualType(o Type) bool {
	c, ok := o.(ClassType)
	return ok && c.Class == t.Class
}

// TupleType describes a record of named fields, produced when objects are
// hidden into complex values during conformation.
type TupleType struct {
	Fields map[string]Type
}

// String implements Type.
func (t TupleType) String() string {
	names := make([]string, 0, len(t.Fields))
	for n := range t.Fields {
		names = append(names, n)
	}
	sortStrings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + ":" + t.Fields[n].String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Accepts implements Type.
func (t TupleType) Accepts(v Value) bool {
	tup, ok := v.(Tuple)
	if !ok {
		return false
	}
	for n, ft := range t.Fields {
		if !ft.Accepts(tup.Field(n)) {
			return false
		}
	}
	return true
}

// EqualType implements Type.
func (t TupleType) EqualType(o Type) bool {
	s, ok := o.(TupleType)
	if !ok || len(s.Fields) != len(t.Fields) {
		return false
	}
	for n, ft := range t.Fields {
		st, ok := s.Fields[n]
		if !ok || !ft.EqualType(st) {
			return false
		}
	}
	return true
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Numeric reports whether the type holds numeric values (int, real or a
// range type).
func Numeric(t Type) bool {
	switch t := t.(type) {
	case BasicType:
		return t.K == KindInt || t.K == KindReal
	case RangeType:
		return true
	default:
		return false
	}
}

// Bounds returns the numeric bounds implied by the type itself: range
// types yield their endpoints; plain int/real yield ±inf. ok is false for
// non-numeric types.
func Bounds(t Type) (lo, hi float64, ok bool) {
	switch t := t.(type) {
	case RangeType:
		return float64(t.Lo), float64(t.Hi), true
	case BasicType:
		if t.K == KindInt || t.K == KindReal {
			return math.Inf(-1), math.Inf(1), true
		}
	}
	return 0, 0, false
}

// ZeroOf returns a default value belonging to the type, used when
// synthesising objects in the workload generator.
func ZeroOf(t Type) Value {
	switch t := t.(type) {
	case BasicType:
		switch t.K {
		case KindInt:
			return Int(0)
		case KindReal:
			return Real(0)
		case KindString:
			return Str("")
		case KindBool:
			return Bool(false)
		}
	case RangeType:
		return Int(t.Lo)
	case SetType:
		return NewSet()
	case ClassType:
		return Null{}
	case TupleType:
		return NewTuple(nil)
	}
	return Null{}
}
