package object

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Structural JSON codec for values, used by the durability layer
// (checkpoint snapshots, WAL record bodies, persisted derivations).
//
// The TM literal syntax that String() renders is NOT round-trippable —
// Int(30) and Real(30.0) can render to forms a reparse cannot tell
// apart — so persistence never goes through text. Every value is
// encoded with an explicit kind tag and decoded back to the exact
// dynamic kind, so Equal, Compare, Hash and the expr fingerprints all
// agree across a save/restore cycle.
//
// The encoding is strict in both directions: unknown kind tags and
// malformed payloads are errors, never best-effort guesses, because a
// checkpoint that decodes "almost right" is worse than one that fails
// recovery loudly.

// jsonValue is the wire form: a kind tag plus the one payload field the
// kind uses. Pointers distinguish "absent" from zero values.
type jsonValue struct {
	T     string               `json:"t"`
	Int   *int64               `json:"int,omitempty"`
	Real  *float64             `json:"real,omitempty"`
	Str   *string              `json:"str,omitempty"`
	Bool  *bool                `json:"bool,omitempty"`
	DB    string               `json:"db,omitempty"`
	OID   uint64               `json:"oid,omitempty"`
	Elems []jsonValue          `json:"elems,omitempty"`
	Flds  map[string]jsonValue `json:"fields,omitempty"`
}

func toJSONValue(v Value) (jsonValue, error) {
	switch v := v.(type) {
	case Null:
		return jsonValue{T: "null"}, nil
	case Int:
		i := int64(v)
		return jsonValue{T: "int", Int: &i}, nil
	case Real:
		f := float64(v)
		return jsonValue{T: "real", Real: &f}, nil
	case Str:
		s := string(v)
		return jsonValue{T: "str", Str: &s}, nil
	case Bool:
		b := bool(v)
		return jsonValue{T: "bool", Bool: &b}, nil
	case Ref:
		return jsonValue{T: "ref", DB: v.DB, OID: uint64(v.OID)}, nil
	case Set:
		elems := make([]jsonValue, 0, v.Len())
		for _, e := range v.Elems() {
			je, err := toJSONValue(e)
			if err != nil {
				return jsonValue{}, err
			}
			elems = append(elems, je)
		}
		if elems == nil {
			elems = []jsonValue{}
		}
		return jsonValue{T: "set", Elems: elems}, nil
	case Tuple:
		flds := map[string]jsonValue{}
		for _, n := range v.Names() {
			jf, err := toJSONValue(v.Field(n))
			if err != nil {
				return jsonValue{}, err
			}
			flds[n] = jf
		}
		return jsonValue{T: "tuple", Flds: flds}, nil
	case nil:
		return jsonValue{}, fmt.Errorf("object: cannot encode nil value")
	default:
		return jsonValue{}, fmt.Errorf("object: cannot encode value of kind %s", v.Kind())
	}
}

func fromJSONValue(j jsonValue) (Value, error) {
	switch j.T {
	case "null":
		return Null{}, nil
	case "int":
		if j.Int == nil {
			return nil, fmt.Errorf("object: int value missing payload")
		}
		return Int(*j.Int), nil
	case "real":
		if j.Real == nil {
			return nil, fmt.Errorf("object: real value missing payload")
		}
		return Real(*j.Real), nil
	case "str":
		if j.Str == nil {
			return nil, fmt.Errorf("object: str value missing payload")
		}
		return Str(*j.Str), nil
	case "bool":
		if j.Bool == nil {
			return nil, fmt.Errorf("object: bool value missing payload")
		}
		return Bool(*j.Bool), nil
	case "ref":
		return Ref{DB: j.DB, OID: OID(j.OID)}, nil
	case "set":
		elems := make([]Value, 0, len(j.Elems))
		for i, je := range j.Elems {
			e, err := fromJSONValue(je)
			if err != nil {
				return nil, fmt.Errorf("object: set elem %d: %w", i, err)
			}
			elems = append(elems, e)
		}
		return NewSet(elems...), nil
	case "tuple":
		flds := make(map[string]Value, len(j.Flds))
		for n, jf := range j.Flds {
			f, err := fromJSONValue(jf)
			if err != nil {
				return nil, fmt.Errorf("object: tuple field %s: %w", n, err)
			}
			flds[n] = f
		}
		return NewTuple(flds), nil
	case "":
		return nil, fmt.Errorf("object: value missing kind tag")
	default:
		return nil, fmt.Errorf("object: unknown value kind tag %q", j.T)
	}
}

// MarshalValue encodes a value as tagged JSON. The encoding is
// deterministic: sets keep their canonical element order and tuple/map
// keys marshal sorted.
func MarshalValue(v Value) ([]byte, error) {
	j, err := toJSONValue(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(j)
}

// UnmarshalValue decodes a value encoded by MarshalValue. Unknown kind
// tags and missing payloads are errors.
func UnmarshalValue(data []byte) (Value, error) {
	var j jsonValue
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("object: %w", err)
	}
	return fromJSONValue(j)
}

// MarshalAttrs encodes an attribute map with MarshalValue per value.
// The raw messages are suitable for embedding in larger JSON documents
// (WAL records, checkpoint objects).
func MarshalAttrs(attrs map[string]Value) (map[string]json.RawMessage, error) {
	if attrs == nil {
		return nil, nil
	}
	out := make(map[string]json.RawMessage, len(attrs))
	for k, v := range attrs {
		b, err := MarshalValue(v)
		if err != nil {
			return nil, fmt.Errorf("attr %s: %w", k, err)
		}
		out[k] = b
	}
	return out, nil
}

// UnmarshalAttrs decodes an attribute map encoded by MarshalAttrs.
func UnmarshalAttrs(raw map[string]json.RawMessage) (map[string]Value, error) {
	if raw == nil {
		return nil, nil
	}
	out := make(map[string]Value, len(raw))
	for k, b := range raw {
		v, err := UnmarshalValue(b)
		if err != nil {
			return nil, fmt.Errorf("attr %s: %w", k, err)
		}
		out[k] = v
	}
	return out, nil
}

// AttrsEqual reports whether two attribute maps hold the same keys with
// Equal values — the recovery tests' byte-identity oracle at the object
// level.
func AttrsEqual(a, b map[string]Value) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || !av.Equal(bv) {
			return false
		}
	}
	return true
}

// SortedKeys returns the keys of an attribute map in sorted order, for
// deterministic iteration in snapshots and diagnostics.
func SortedKeys(attrs map[string]Value) []string {
	out := make([]string, 0, len(attrs))
	for k := range attrs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
