// Package experiments implements the reproduction harness: one function
// per experiment of DESIGN.md §6 (E1–E11 scenario reproductions, B1–B9
// measurements). cmd/interopbench prints their results; the root-level
// benchmarks wrap them with testing.B; EXPERIMENTS.md records their
// outputs against the paper's claims.
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"interopdb/internal/baseline"
	"interopdb/internal/core"
	"interopdb/internal/expr"
	"interopdb/internal/fixture"
	"interopdb/internal/logic"
	"interopdb/internal/object"
	"interopdb/internal/store"
	"interopdb/internal/store/chaos"
	"interopdb/internal/tm"
	"interopdb/internal/view"
	"interopdb/internal/workload"
)

// Check is one verifiable claim: what the paper states, what the engine
// produced, and whether they agree.
type Check struct {
	Name     string
	Expected string
	Measured string
	Pass     bool
}

// Result is the outcome of one experiment.
type Result struct {
	ID     string
	Title  string
	Checks []Check
}

// Passed reports whether every check passed.
func (r Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// String renders the result as a table fragment.
func (r Result) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "%s %s — %s\n", r.ID, status, r.Title)
	for _, c := range r.Checks {
		mark := "ok"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %-46s paper: %-34s measured: %s\n", mark, c.Name, c.Expected, c.Measured)
	}
	return b.String()
}

func check(name, expected, measured string, pass bool) Check {
	return Check{Name: name, Expected: expected, Measured: measured, Pass: pass}
}

// figure1 runs the Figure 1 integration once.
func figure1(opt fixture.Options) (*core.Result, error) {
	local, remote := fixture.Figure1Stores(opt)
	return core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(), local, remote, 1)
}

func personnel() (*core.Result, error) {
	db1, db2 := fixture.PersonnelStores()
	return core.Integrate(tm.Personnel1(), tm.Personnel2(), tm.PersonnelIntegration(), db1, db2, 1)
}

func findGlobal(res *core.Result, s string) *core.GlobalConstraint {
	for i := range res.Derivation.Global {
		if res.Derivation.Global[i].Expr.String() == s {
			return &res.Derivation.Global[i]
		}
	}
	return nil
}

// E1 reproduces the introduction's personnel example.
func E1() (Result, error) {
	r := Result{ID: "E1", Title: "intro example: averaged tariffs, subjective salary rule"}
	res, err := personnel()
	if err != nil {
		return r, err
	}
	gc := findGlobal(res, "trav_reimb in {12,17,22}")
	r.Checks = append(r.Checks, check("derived global tariff constraint",
		"trav_reimb ∈ {12,17,22}", measuredExpr(gc), gc != nil && gc.Scope == core.ScopeMerged))
	salaryLeaked := false
	for _, g := range res.Derivation.Global {
		if strings.Contains(g.Expr.String(), "salary") && g.Scope != core.ScopeLocalOnly {
			salaryLeaked = true
		}
	}
	r.Checks = append(r.Checks, check("salary rule not propagated",
		"subjective, DB1-local only", fmt.Sprintf("leaked=%v", salaryLeaked), !salaryLeaked))
	merged := 0
	var trav object.Value
	for _, g := range res.View.Objects {
		if g.Merged() {
			merged++
			trav, _ = g.Get("trav_reimb")
		}
	}
	r.Checks = append(r.Checks, check("merged employee's averaged tariff",
		"avg(20,24)=22", fmt.Sprintf("%v (merged=%d)", trav, merged),
		merged == 1 && trav != nil && trav.Equal(object.Int(22))))
	return r, nil
}

func measuredExpr(gc *core.GlobalConstraint) string {
	if gc == nil {
		return "(absent)"
	}
	return gc.Expr.String() + " [" + gc.Scope.String() + "]"
}

// E2 checks that Figure 1 parses and is enforced.
func E2() (Result, error) {
	r := Result{ID: "E2", Title: "Figure 1: both specifications parse, all constraints enforced"}
	lib, err := tm.ParseDatabase(tm.FigureOneCSLibrary)
	if err != nil {
		return r, err
	}
	bs, err := tm.ParseDatabase(tm.FigureOneBookseller)
	if err != nil {
		return r, err
	}
	nCons := func(s *tm.DatabaseSpec) int {
		n := len(s.Schema.DBCons)
		for _, c := range s.Schema.Classes() {
			n += len(c.Constraints)
		}
		return n
	}
	total := nCons(lib) + nCons(bs)
	r.Checks = append(r.Checks, check("constraints parsed",
		"13 (7 CSLibrary + 6 Bookseller incl. db1)", fmt.Sprintf("%d", total), total == 13))
	local, remote := fixture.Figure1Stores(fixture.Options{})
	vl, vr := local.CheckAll(), remote.CheckAll()
	r.Checks = append(r.Checks, check("fixture states consistent",
		"0 violations", fmt.Sprintf("%d local, %d remote", len(vl), len(vr)), len(vl)+len(vr) == 0))
	// Enforcement rejects a violating insert.
	_, err = remote.Insert("Item", map[string]object.Value{
		"isbn": object.Str("viol-1"), "shopprice": object.Real(1), "libprice": object.Real(2),
	})
	r.Checks = append(r.Checks, check("component DBMS enforces oc1",
		"libprice>shopprice rejected", fmt.Sprintf("err=%v", err != nil), err != nil))
	return r, nil
}

// E3 reproduces §3's derived constraint.
func E3() (Result, error) {
	r := Result{ID: "E3", Title: "§3: derived constraint from intraobject condition + oc2"}
	res, err := figure1(fixture.Options{})
	if err != nil {
		return r, err
	}
	derived := res.Derivation.DerivedOnSim["r3"]
	has := false
	for _, n := range derived {
		if n.String() == "rating >= 7" {
			has = true
		}
	}
	r.Checks = append(r.Checks, check("derived on r3-selected objects",
		"rating >= 7", fmt.Sprintf("present=%v", has), has))
	conflictFree := true
	for _, c := range res.Derivation.Conflicts {
		if c.Kind == core.ConflictStrictSim && c.Where == "rule r3" {
			conflictFree = false
		}
	}
	r.Checks = append(r.Checks, check("discrepancy with RefereedPubl.oc1 resolves",
		"rating>=7 ⊨ rating>=4, no conflict", fmt.Sprintf("conflictFree=%v", conflictFree), conflictFree))
	return r, nil
}

// E4 reproduces §4's conformation examples.
func E4() (Result, error) {
	r := Result{ID: "E4", Title: "§4: constraint conformation"}
	res, err := figure1(fixture.Options{})
	if err != nil {
		return r, err
	}
	var oc2, oc1 string
	var oc2Class string
	for _, con := range res.Conformed.Cons {
		switch con.Key {
		case core.ConKey{DB: "CSLibrary", Class: "Publication", Name: "oc2"}:
			oc2, oc2Class = con.Expr.String(), con.Class
		case core.ConKey{DB: "CSLibrary", Class: "RefereedPubl", Name: "oc1"}:
			oc1 = con.Expr.String()
		}
	}
	r.Checks = append(r.Checks, check("oc2 re-allocated to virtual class",
		"VirtPublisher: name in KNOWNPUBLISHERS",
		fmt.Sprintf("%s: %s", oc2Class, oc2),
		oc2Class == "VirtPublisher" && oc2 == "name in KNOWNPUBLISHERS"))
	r.Checks = append(r.Checks, check("RefereedPubl.oc1 scale-converted",
		"rating >= 4", oc1, oc1 == "rating >= 4"))
	return r, nil
}

// E5 reproduces §5.1.3's value-subjectivity counterexample.
func E5() (Result, error) {
	r := Result{ID: "E5", Title: "§5.1.3: value subjectivity forces constraint subjectivity"}
	res, err := figure1(fixture.Options{PriceConflict: true})
	if err != nil {
		return r, err
	}
	var g *core.GObj
	for _, o := range res.View.Objects {
		if ttl, ok := o.Get("title"); ok && ttl.Equal(object.Str("Price Conflict Book")) {
			g = o
		}
	}
	if g == nil {
		return r, fmt.Errorf("price conflict book missing")
	}
	lib, _ := g.Get("libprice")
	shop, _ := g.Get("shopprice")
	violates := false
	if lf, ok := object.AsFloat(lib); ok {
		if sf, ok := object.AsFloat(shop); ok {
			violates = lf > sf
		}
	}
	r.Checks = append(r.Checks, check("trust-fused state violates libprice<=shopprice",
		"(26,25): violated", fmt.Sprintf("(%v,%v): violated=%v", lib, shop, violates), violates))
	st := res.Spec.Status[core.ConKey{DB: "Bookseller", Class: "Item", Name: "oc1"}]
	st2 := res.Spec.Status[core.ConKey{DB: "CSLibrary", Class: "Publication", Name: "oc1"}]
	r.Checks = append(r.Checks, check("both price constraints classified subjective",
		"subjective/subjective", fmt.Sprintf("%v/%v", st2, st),
		st == core.Subjective && st2 == core.Subjective))
	return r, nil
}

// E6 reproduces §5.2.1's equality derivation.
func E6() (Result, error) {
	r := Result{ID: "E6", Title: "§5.2.1: equality derivation through avg"}
	res, err := figure1(fixture.Options{})
	if err != nil {
		return r, err
	}
	gc := findGlobal(res, "publisher.name = 'ACM' implies rating >= 5")
	r.Checks = append(r.Checks, check("paper's derived constraint",
		"ACM ⇒ rating >= 5 [merged]", measuredExpr(gc),
		gc != nil && gc.Derivation == "derived(avg)"))
	priceDerived := false
	for _, g := range res.Derivation.Global {
		if g.Scope == core.ScopeMerged &&
			(strings.Contains(g.Expr.String(), "libprice") || strings.Contains(g.Expr.String(), "shopprice")) {
			priceDerived = true
		}
	}
	r.Checks = append(r.Checks, check("no derivation from trust-ed price constraints",
		"none (conflict avoiding, condition 1)", fmt.Sprintf("derived=%v", priceDerived), !priceDerived))
	return r, nil
}

// E7 reproduces §5.2.1's strict-similarity repair.
func E7() (Result, error) {
	r := Result{ID: "E7", Title: "§5.2.1: strict similarity check and rule repair"}
	res, err := figure1(fixture.Options{})
	if err != nil {
		return r, err
	}
	okR3 := true
	for _, c := range res.Derivation.Conflicts {
		if c.Kind == core.ConflictStrictSim && c.Where == "rule r3" {
			okR3 = false
		}
	}
	r.Checks = append(r.Checks, check("original oc2: r3 valid",
		"rating>=7 ⊨ rating>=4", fmt.Sprintf("conflictFree=%v", okR3), okR3))

	weakSrc := strings.Replace(tm.FigureOneBookseller,
		"oc2: ref? = true implies rating >= 7",
		"oc2: ref? = true implies rating >= 3", 1)
	weak := tm.MustParseDatabase(weakSrc)
	ls := store.New(tm.Figure1Library().Schema, tm.Figure1Library().Consts)
	rs := store.New(weak.Schema, nil)
	res2, err := core.Integrate(tm.Figure1Library(), weak, tm.Figure1Integration(), ls, rs, 1)
	if err != nil {
		return r, err
	}
	var suggestion string
	for _, c := range res2.Derivation.Conflicts {
		if c.Kind != core.ConflictStrictSim || c.Where != "rule r3" {
			continue
		}
		for _, s := range c.Suggestions {
			if s.Kind == core.SuggestStrengthenRule {
				suggestion = s.NewRuleSrc
			}
		}
	}
	want := "R.ref? = true and R.rating >= 4"
	r.Checks = append(r.Checks, check("weakened oc2: repaired rule suggested",
		"Sim ⇐ ref?=true ∧ rating>=4", suggestion, strings.Contains(suggestion, want)))
	return r, nil
}

// E8 reproduces the approximate-similarity disjunction.
func E8() (Result, error) {
	r := Result{ID: "E8", Title: "§5.2.1: approximate similarity — disjunction on Cv"}
	localSpec := tm.MustParseDatabase("Database L\nClass Senior\n  attributes\n    name : string\n    age : int\n  object constraints\n    oc1: age >= 50\nend Senior\n")
	remoteSpec := tm.MustParseDatabase("Database R\nClass Junior\n  attributes\n    name : string\n    age : int\n  object constraints\n    oc1: age < 50\nend Junior\n")
	ispec := tm.MustParseIntegration("integration L imports R\nrule r1: Sim(J:Junior, Senior, Person) <= true\npropeq(Senior.age, Junior.age, id, id, any)\npropeq(Senior.name, Junior.name, id, id, any)\n")
	ls := store.New(localSpec.Schema, nil)
	rs := store.New(remoteSpec.Schema, nil)
	ls.MustInsert("Senior", map[string]object.Value{"name": object.Str("Ann"), "age": object.Int(61)})
	rs.MustInsert("Junior", map[string]object.Value{"name": object.Str("Bob"), "age": object.Int(30)})
	res, err := core.Integrate(localSpec, remoteSpec, ispec, ls, rs, 1)
	if err != nil {
		return r, err
	}
	dis := res.Derivation.GlobalFor("Person")
	got := "(absent)"
	if len(dis) > 0 {
		got = dis[0].Expr.String()
	}
	r.Checks = append(r.Checks, check("virtual superclass constraint",
		"Ω ∨ Ω′", got, len(dis) == 1 && strings.Contains(got, "or")))
	return r, nil
}

// E9 reproduces §5.2.2/§5.2.3 on Figure 1.
func E9() (Result, error) {
	r := Result{ID: "E9", Title: "§5.2.2–§5.2.3: class, key and database constraints"}
	res, err := figure1(fixture.Options{})
	if err != nil {
		return r, err
	}
	keyClasses := map[string]bool{}
	for _, gc := range res.Derivation.Global {
		if gc.Derivation == "key-propagation" {
			for _, c := range gc.Classes {
				keyClasses[c] = true
			}
		}
	}
	r.Checks = append(r.Checks, check("key constraints propagate (key-to-key rules)",
		"key isbn on Publication and Item",
		fmt.Sprintf("%v", sortedKeys(keyClasses)),
		keyClasses["Publication"] && keyClasses["Item"]))
	aggLeaked := false
	for _, gc := range res.Derivation.Global {
		s := gc.Expr.String()
		if strings.Contains(s, "avg") || strings.Contains(s, "sum") || strings.Contains(s, "forall") {
			aggLeaked = true
		}
	}
	r.Checks = append(r.Checks, check("class/database constraints stay subjective",
		"cc2, cc1(avg), db1 not propagated", fmt.Sprintf("leaked=%v", aggLeaked), !aggLeaked))
	return r, nil
}

// E10 reproduces Figure 2's emergent classification.
func E10() (Result, error) {
	r := Result{ID: "E10", Title: "Figure 2: emergent RefereedProceedings intersection class"}
	res, err := figure1(fixture.Options{})
	if err != nil {
		return r, err
	}
	var vs *core.VirtualSubclass
	for i := range res.View.VirtualSubclasses {
		if res.View.VirtualSubclasses[i].LocalClass == "RefereedPubl" {
			vs = &res.View.VirtualSubclasses[i]
		}
	}
	got := "(absent)"
	pass := false
	if vs != nil {
		got = fmt.Sprintf("%s with %d members", vs.Name, len(vs.MemberIDs))
		pass = len(vs.MemberIDs) == 3
	}
	r.Checks = append(r.Checks, check("virtual subclass of Proceedings and RefereedPubl",
		"3 members (vldb, caise, sigmod)", got, pass))
	return r, nil
}

// E11 checks the end-to-end pipeline artifacts.
func E11() (Result, error) {
	r := Result{ID: "E11", Title: "Figure 3: full pipeline report"}
	res, err := figure1(fixture.Options{})
	if err != nil {
		return r, err
	}
	rep := res.Report()
	wants := []string{"Property subjectivity", "Conformed constraints", "Global classes", "Global constraints", "Notes"}
	missing := 0
	for _, w := range wants {
		if !strings.Contains(rep, w) {
			missing++
		}
	}
	r.Checks = append(r.Checks, check("report covers all stages",
		"5 stage sections", fmt.Sprintf("%d present", len(wants)-missing), missing == 0))
	return r, nil
}

func sortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// All runs E1–E11.
func All() ([]Result, error) {
	fns := []func() (Result, error){E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11}
	var out []Result
	for _, fn := range fns {
		r, err := fn()
		if err != nil {
			return out, fmt.Errorf("%s: %w", r.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// B-series measurements

// B1Row is one query-optimisation measurement. Cold times cover the
// first run of each mode — plan construction, index builds, and (for
// the optimised mode, when the cost gate lets it through) the solver's
// constraint phase. OptTime/BaseTime are steady-state per-operation
// times over plan-cache hits, where the constraint reasoning is
// amortised to zero.
type B1Row struct {
	Query       string
	OptScanned  int
	BaseScanned int
	Pruned      bool
	// Gated reports that the cost gate skipped the constraint phase:
	// the estimated serving cost could not pay for the solver, so the
	// optimised plan degenerates to the base plan instead of losing to
	// it (BENCH_3's B1 regression: 470µs "optimised" vs 82µs plain).
	Gated        bool
	OptTime      time.Duration // steady-state per op
	BaseTime     time.Duration // steady-state per op
	OptColdTime  time.Duration // first run (plan build)
	BaseColdTime time.Duration
}

// b1SteadyIters is the steady-state averaging window per mode.
const b1SteadyIters = 100

// B1 measures constraint-based query optimisation on a generated
// federation: cold (planning) and steady-state (plan-cached) times for
// the optimised and drop-all modes. The base mode runs first so shared
// index builds land in its cold time, making the optimised cold time a
// pure measurement of the (cost-gated) constraint phase.
func B1(books int) ([]B1Row, error) {
	p := workload.DefaultParams()
	p.LocalBooks, p.RemoteBooks = books, books
	local, remote := workload.Bibliographic(p)
	// The repaired specification (see tm.FigureOneIntegrationRepaired):
	// with the original r5 the engine withholds the Proceedings
	// constraints pending conflict resolution, so there is nothing to
	// optimise with — the paper's design loop repairs first.
	res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		return nil, err
	}
	e := view.New(res)
	queries := []view.Query{
		{Class: "Proceedings", Where: expr.MustParse("publisher.name = 'IEEE' and ref? = false")},
		{Class: "Proceedings", Where: expr.MustParse("(publisher.name = 'IEEE' implies ref? = true) and rating >= 9")},
		{Class: "Item", Where: expr.MustParse("shopprice < 40")},
	}
	var rows []B1Row
	for _, q := range queries {
		runCold := func(useCons bool) (view.Stats, int, time.Duration, error) {
			e.UseConstraints = useCons
			t0 := time.Now()
			r, st, err := e.Run(q)
			return st, len(r), time.Since(t0), err
		}
		runSteady := func(useCons bool) (time.Duration, error) {
			e.UseConstraints = useCons
			t0 := time.Now()
			for i := 0; i < b1SteadyIters; i++ {
				if _, _, err := e.Run(q); err != nil {
					return 0, err
				}
			}
			return time.Since(t0) / b1SteadyIters, nil
		}
		baseStats, nBase, baseCold, err := runCold(false)
		if err != nil {
			return nil, err
		}
		optStats, nOpt, optCold, err := runCold(true)
		if err != nil {
			return nil, err
		}
		if nOpt != nBase {
			return nil, fmt.Errorf("optimisation changed answers: %d vs %d", nOpt, nBase)
		}
		baseSteady, err := runSteady(false)
		if err != nil {
			return nil, err
		}
		optSteady, err := runSteady(true)
		if err != nil {
			return nil, err
		}
		e.UseConstraints = true
		rows = append(rows, B1Row{
			Query: q.Where.String(), OptScanned: optStats.Scanned, BaseScanned: baseStats.Scanned,
			Pruned: optStats.PrunedEmpty, Gated: optStats.ConstraintGated,
			OptTime: optSteady, BaseTime: baseSteady,
			OptColdTime: optCold, BaseColdTime: baseCold,
		})
	}
	return rows, nil
}

// B2Row is one transaction-validation measurement.
type B2Row struct {
	ViolationRate float64
	Attempts      int
	RejectedEarly int
	LocalRejects  int
}

// B2 measures update validation: how many doomed subtransactions the
// global constraints stop before shipping.
func B2(attempts int, rates []float64) ([]B2Row, error) {
	var rows []B2Row
	for _, rate := range rates {
		p := workload.DefaultParams()
		p.LocalBooks, p.RemoteBooks = 500, 500
		local, remote := workload.Bibliographic(p)
		res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), local, remote, 1)
		if err != nil {
			return nil, err
		}
		e := view.New(res)
		row := B2Row{ViolationRate: rate, Attempts: attempts}
		for i := 0; i < attempts; i++ {
			doomed := float64(i%20)/20 < rate
			pub := object.Ref{DB: "Bookseller", OID: 2}
			ref := true
			if doomed {
				pub = object.Ref{DB: "Bookseller", OID: 1} // IEEE: oc1 demands ref?
				ref = false
			}
			attrs := map[string]object.Value{
				"title": object.Str(fmt.Sprintf("P%d", i)), "isbn": object.Str(fmt.Sprintf("tx-%d-%f", i, rate)),
				"publisher": pub,
				"shopprice": object.Real(30), "libprice": object.Real(25),
				"ref?": object.Bool(ref), "rating": object.Int(8),
			}
			if rejs := e.ValidateInsert("Proceedings", attrs); len(rejs) > 0 {
				row.RejectedEarly++
				continue
			}
			if err := e.ShipInsert(remote, "Proceedings", attrs); err != nil {
				row.LocalRejects++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// B3Row is one integration-scale measurement. Duration is the fully
// sequential, cache-free run; DurationPar the default run (GOMAXPROCS
// worker pool + memoized entailment) over a fresh store pair.
type B3Row struct {
	Books        int
	Overlap      float64
	Objects      int
	Merged       int
	Duration     time.Duration
	DurationPar  time.Duration
	CacheHitRate float64
}

// Speedup is the sequential/parallel wall-time ratio.
func (r B3Row) Speedup() float64 {
	if r.DurationPar <= 0 {
		return 0
	}
	return float64(r.Duration) / float64(r.DurationPar)
}

// B3 measures integration wall time across sizes and overlaps,
// sequential vs parallel.
func B3(sizes []int, overlaps []float64) ([]B3Row, error) {
	var rows []B3Row
	for _, n := range sizes {
		for _, ov := range overlaps {
			p := workload.DefaultParams()
			p.LocalBooks, p.RemoteBooks = n, n
			p.Overlap = ov
			local, remote := workload.Bibliographic(p)
			t0 := time.Now()
			res, err := core.IntegrateOptions(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(),
				local, remote, 1, core.Options{Parallelism: 1, NoMemo: true})
			if err != nil {
				return nil, err
			}
			d := time.Since(t0)
			merged := 0
			for _, g := range res.View.Objects {
				if g.Merged() {
					merged++
				}
			}
			localP, remoteP := workload.Bibliographic(p)
			t0 = time.Now()
			resP, err := core.IntegrateOptions(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(),
				localP, remoteP, 1, core.Options{})
			if err != nil {
				return nil, err
			}
			dPar := time.Since(t0)
			if resP.Report() != res.Report() {
				return nil, fmt.Errorf("B3 books=%d overlap=%v: parallel report diverged from sequential", n, ov)
			}
			rows = append(rows, B3Row{
				Books: n, Overlap: ov, Objects: len(res.View.Objects), Merged: merged,
				Duration: d, DurationPar: dPar,
				CacheHitRate: resP.Derivation.CacheStats().HitRate(),
			})
		}
	}
	return rows, nil
}

// B4Row is one derivation-cost measurement. Duration is sequential and
// cache-free; DurationPar the pooled, memoized run.
type B4Row struct {
	Constraints  int
	Duration     time.Duration
	DurationPar  time.Duration
	CacheHitRate float64
	Derived      int
}

// Speedup is the sequential/parallel wall-time ratio.
func (r B4Row) Speedup() float64 {
	if r.DurationPar <= 0 {
		return 0
	}
	return float64(r.Duration) / float64(r.DurationPar)
}

// B4 measures global-constraint derivation cost against the number of
// component constraints (synthetic single-class pair with k guarded
// bounds per side, all avg-fused).
func B4(counts []int) ([]B4Row, error) {
	var rows []B4Row
	for _, k := range counts {
		localSrc := &strings.Builder{}
		remoteSrc := &strings.Builder{}
		fmt.Fprintf(localSrc, "Database L\nClass C\n  attributes\n    k : string\n")
		fmt.Fprintf(remoteSrc, "Database R\nClass D\n  attributes\n    k : string\n")
		for i := 0; i < k; i++ {
			fmt.Fprintf(localSrc, "    p%d : int\n", i)
			fmt.Fprintf(remoteSrc, "    p%d : int\n", i)
		}
		fmt.Fprintf(localSrc, "  object constraints\n")
		fmt.Fprintf(remoteSrc, "  object constraints\n")
		for i := 0; i < k; i++ {
			fmt.Fprintf(localSrc, "    oc%d: p%d >= %d\n", i, i, i)
			fmt.Fprintf(remoteSrc, "    oc%d: p%d >= %d\n", i, i, i+2)
		}
		fmt.Fprintf(localSrc, "end C\n")
		fmt.Fprintf(remoteSrc, "end D\n")
		ispecSrc := &strings.Builder{}
		fmt.Fprintf(ispecSrc, "integration L imports R\nrule r1: Eq(A:C, B:D) <= A.k = B.k\npropeq(C.k, D.k, id, id, any)\n")
		for i := 0; i < k; i++ {
			fmt.Fprintf(ispecSrc, "propeq(C.p%d, D.p%d, id, id, avg)\n", i, i)
		}
		localSpec := tm.MustParseDatabase(localSrc.String())
		remoteSpec := tm.MustParseDatabase(remoteSrc.String())
		ispec := tm.MustParseIntegration(ispecSrc.String())
		ls := store.New(localSpec.Schema, nil)
		rs := store.New(remoteSpec.Schema, nil)
		t0 := time.Now()
		res, err := core.IntegrateOptions(localSpec, remoteSpec, ispec, ls, rs, 1,
			core.Options{Parallelism: 1, NoMemo: true})
		if err != nil {
			return nil, err
		}
		d := time.Since(t0)
		t0 = time.Now()
		resP, err := core.IntegrateOptions(localSpec, remoteSpec, ispec, ls, rs, 1, core.Options{})
		if err != nil {
			return nil, err
		}
		dPar := time.Since(t0)
		if resP.Report() != res.Report() {
			return nil, fmt.Errorf("B4 k=%d: parallel report diverged from sequential", k)
		}
		derived := 0
		for _, gc := range res.Derivation.Global {
			if strings.HasPrefix(gc.Derivation, "derived(") {
				derived++
			}
		}
		rows = append(rows, B4Row{
			Constraints: 2 * k, Duration: d, DurationPar: dPar,
			CacheHitRate: resP.Derivation.CacheStats().HitRate(), Derived: derived,
		})
	}
	return rows, nil
}

// B5Result compares against the baselines.
type B5Result struct {
	ClassBasedPrecision float64
	ClassBasedRecall    float64
	UnionAllFalseRej    int
	UnionAllTotal       int
}

// B5 compares instance-based, class-based and union-all handling.
func B5() (B5Result, error) {
	var out B5Result
	p := workload.DefaultParams()
	p.LocalBooks, p.RemoteBooks = 500, 500
	local, remote := workload.Bibliographic(p)
	res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration(), local, remote, 1)
	if err != nil {
		return out, err
	}
	cb := baseline.ClassBasedClassification(res, []baseline.ClassCorrespondence{
		{LocalClass: "RefereedPubl", RemoteClass: "Proceedings"},
		{LocalClass: "Publication", RemoteClass: "Item"},
	})
	q := baseline.CompareClassification(res, cb, []string{"RefereedPubl", "Publication"})
	out.ClassBasedPrecision = q.Precision()
	out.ClassBasedRecall = q.Recall()

	db1, db2 := workload.Personnel(workload.PersonnelParams{Seed: 7, DB1: 300, DB2: 300, Overlap: 0.5})
	pres, err := core.Integrate(tm.Personnel1(), tm.Personnel2(), tm.PersonnelIntegration(), db1, db2, 1)
	if err != nil {
		return out, err
	}
	out.UnionAllFalseRej, out.UnionAllTotal = baseline.FalseRejects(pres, "DB1.Employee")
	return out, nil
}

// B6Row is one conflict-detection measurement.
type B6Row struct {
	WeakenedConstraints int
	Conflicts           int
	Suggestions         int
}

// B6 injects progressively weakened constraints and counts detected
// conflicts and generated repair suggestions.
func B6() ([]B6Row, error) {
	replacements := [][2]string{
		{"oc2: ref? = true implies rating >= 7", "oc2: ref? = true implies rating >= 3"},
		{"oc3: publisher.name = 'ACM' implies rating >= 6", "oc3: publisher.name = 'ACM' implies rating >= 1"},
		{"oc1: publisher.name = 'IEEE' implies ref? = true", "oc1: publisher.name = 'IEEE' implies rating >= 1"},
	}
	var rows []B6Row
	for k := 0; k <= len(replacements); k++ {
		src := tm.FigureOneBookseller
		for i := 0; i < k; i++ {
			src = strings.Replace(src, replacements[i][0], replacements[i][1], 1)
		}
		bs := tm.MustParseDatabase(src)
		ls := store.New(tm.Figure1Library().Schema, tm.Figure1Library().Consts)
		rs := store.New(bs.Schema, nil)
		res, err := core.Integrate(tm.Figure1Library(), bs, tm.Figure1Integration(), ls, rs, 1)
		if err != nil {
			return nil, err
		}
		sugg := 0
		for _, c := range res.Derivation.Conflicts {
			sugg += len(c.Suggestions)
		}
		rows = append(rows, B6Row{WeakenedConstraints: k, Conflicts: len(res.Derivation.Conflicts), Suggestions: sugg})
	}
	return rows, nil
}

// B7Row is one query-serving measurement: the indexed+compiled fast
// path (extent indexes answer sargable conjuncts, the residual is a
// compiled predicate, key uniqueness probes an incremental index)
// against the pure interpreter scan on the same engine and extent.
type B7Row struct {
	Scale     int
	Extent    int           // extent size of the probed class
	Kind      string        // equality | range | validate-insert
	Detail    string        // query text or probe description
	ScanTime  time.Duration // per operation, UseIndexes = false
	FastTime  time.Duration // per operation, UseIndexes = true
	Rows      int           // result rows (queries only)
	Scanned   int           // objects evaluated on the fast path
	IndexHits int
}

// Speedup is the scan/fast wall-time ratio.
func (r B7Row) Speedup() float64 {
	if r.FastTime <= 0 {
		return 0
	}
	return float64(r.ScanTime) / float64(r.FastTime)
}

// B7 measures query serving and insert validation over the scaled
// Figure 1 fixture. Each operation runs iters times per mode; answers
// are cross-checked between modes before timing.
func B7(scales []int, iters int) ([]B7Row, error) {
	var rows []B7Row
	for _, scale := range scales {
		local, remote := fixture.Figure1Stores(fixture.Options{Scale: scale})
		res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), local, remote, 1)
		if err != nil {
			return nil, err
		}
		e := view.New(res)
		eqIsbn := fmt.Sprintf("vldb96-c%d", max(1, scale/2))
		if scale == 0 {
			eqIsbn = "vldb96"
		}
		queries := []view.Query{
			{Class: "Item", Where: expr.MustParse(fmt.Sprintf("isbn = '%s'", eqIsbn))},
			{Class: "Item", Where: expr.MustParse("shopprice <= 20")},
			{Class: "Proceedings", Where: expr.MustParse("rating >= 7 and shopprice < 75")},
		}
		kinds := []string{"equality", "range", "range"}
		for qi, q := range queries {
			e.UseIndexes = true
			fastRows, fastStats, err := e.Run(q)
			if err != nil {
				return nil, err
			}
			e.UseIndexes = false
			scanRows, _, err := e.Run(q)
			if err != nil {
				return nil, err
			}
			if len(fastRows) != len(scanRows) {
				return nil, fmt.Errorf("B7 scale=%d %q: indexed path changed answers: %d vs %d",
					scale, q.Where, len(fastRows), len(scanRows))
			}
			timeOp := func(useIdx bool) (time.Duration, error) {
				e.UseIndexes = useIdx
				t0 := time.Now()
				for i := 0; i < iters; i++ {
					if _, _, err := e.Run(q); err != nil {
						return 0, fmt.Errorf("B7 scale=%d %q: %w", scale, q.Where, err)
					}
				}
				return time.Since(t0) / time.Duration(iters), nil
			}
			scanT, err := timeOp(false)
			if err != nil {
				return nil, err
			}
			fastT, err := timeOp(true)
			if err != nil {
				return nil, err
			}
			e.UseIndexes = true
			rows = append(rows, B7Row{
				Scale: scale, Extent: len(res.View.Extent(q.Class)),
				Kind: kinds[qi], Detail: q.Where.String(),
				ScanTime: scanT, FastTime: fastT,
				Rows: len(fastRows), Scanned: fastStats.Scanned, IndexHits: fastStats.IndexHits,
			})
		}
		// Insert validation: O(1) key-index probe vs full extent copy.
		attrs := map[string]object.Value{
			"title": object.Str("B7 probe"), "isbn": object.Str("vldb96"), // duplicate key
			"shopprice": object.Real(10), "libprice": object.Real(5),
		}
		timeVal := func(useIdx bool) time.Duration {
			e.UseIndexes = useIdx
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				e.ValidateInsert("Item", attrs)
			}
			return time.Since(t0) / time.Duration(iters)
		}
		scanT := timeVal(false)
		fastT := timeVal(true)
		e.UseIndexes = true
		rows = append(rows, B7Row{
			Scale: scale, Extent: len(res.View.Extent("Item")),
			Kind: "validate-insert", Detail: "duplicate-key probe on Item",
			ScanTime: scanT, FastTime: fastT,
		})
	}
	return rows, nil
}

// B8Row is one mutation-throughput measurement over the scaled Figure 1
// fixture (DESIGN.md §7): shipping N singleton insert transactions versus
// one batched ShipTx (the local manager validates once per commit, so
// batching amortises the deferred CheckAll), and the constraint×row work
// of a delta-restricted ValidateUpdate versus exhaustive re-validation.
type B8Row struct {
	Scale int
	Mode  string // "singleton-inserts", "batched-tx", "validate-delta"
	Ops   int
	Total time.Duration
	PerOp time.Duration
	// Validation-work comparison, set on validate-delta rows only.
	DeltaPairs int
	FullPairs  int
}

// Throughput is the measured mutation rate in operations per second.
func (r B8Row) Throughput() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Total.Seconds()
}

// B8 measures the mutation lifecycle at each fixture scale. Both
// shipping modes run against fresh, identical integrations; the final
// extents are cross-checked before the timings are reported.
func B8(scales []int, batch int) ([]B8Row, error) {
	var rows []B8Row
	for _, scale := range scales {
		build := func() (*view.Engine, *store.Store, error) {
			local, remote := fixture.Figure1Stores(fixture.Options{Scale: scale})
			res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), local, remote, 1)
			if err != nil {
				return nil, nil, err
			}
			return view.New(res), remote, nil
		}
		mkAttrs := func(remote *store.Store, i int) map[string]object.Value {
			pub := remote.Extent("Publisher")[0]
			return map[string]object.Value{
				"title": object.Str(fmt.Sprintf("B8 insert %d", i)), "isbn": object.Str(fmt.Sprintf("b8-%d-%d", scale, i)),
				"publisher": object.Ref{DB: remote.Name(), OID: pub.OID()},
				"shopprice": object.Real(20), "libprice": object.Real(15),
			}
		}

		// Mode 1: N singleton transactions, one local commit (and one
		// deferred local validation) each.
		eS, remoteS, err := build()
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		for i := 0; i < batch; i++ {
			if err := eS.ShipInsert(remoteS, "Item", mkAttrs(remoteS, i)); err != nil {
				return nil, fmt.Errorf("B8 scale=%d singleton insert %d: %w", scale, i, err)
			}
		}
		singleton := time.Since(t0)

		// Mode 2: one batched transaction, one local commit total.
		eB, remoteB, err := build()
		if err != nil {
			return nil, err
		}
		ops := make([]view.Mutation, batch)
		for i := range ops {
			ops[i] = view.Mutation{Kind: view.MutInsert, Class: "Item", Attrs: mkAttrs(remoteB, i)}
		}
		t0 = time.Now()
		if err := eB.ShipTx(remoteB, ops); err != nil {
			return nil, fmt.Errorf("B8 scale=%d batched tx: %w", scale, err)
		}
		batched := time.Since(t0)

		// Both modes must converge to the same integrated state.
		nS := len(eS.Classes())
		nB := len(eB.Classes())
		if nS != nB {
			return nil, fmt.Errorf("B8 scale=%d: modes diverged: %d vs %d classes", scale, nS, nB)
		}
		sRows, _, err := eS.Run(view.Query{Class: "Item"})
		if err != nil {
			return nil, err
		}
		bRows, _, err := eB.Run(view.Query{Class: "Item"})
		if err != nil {
			return nil, err
		}
		if len(sRows) != len(bRows) {
			return nil, fmt.Errorf("B8 scale=%d: modes diverged: %d vs %d Item rows", scale, len(sRows), len(bRows))
		}

		// Validation work: delta-restricted update check vs full sweep.
		// Both are idempotent reads, so each is averaged over several
		// iterations — a single ~30µs sample is too noisy for the
		// benchcompare gate.
		var target int
		for _, g := range eB.Result().View.Extent("Proceedings") {
			if v, ok := g.Get("isbn"); ok && v.Equal(object.Str("vldb96")) {
				target = g.ID
			}
		}
		const deltaIters, fullIters = 20, 3
		var delta, full view.ValidateStats
		t0 = time.Now()
		for i := 0; i < deltaIters; i++ {
			_, delta, err = eB.ValidateUpdate("Proceedings", target, map[string]object.Value{"ref?": object.Bool(true)})
			if err != nil {
				return nil, fmt.Errorf("B8 scale=%d validate: %w", scale, err)
			}
		}
		deltaT := time.Since(t0) / deltaIters
		t0 = time.Now()
		for i := 0; i < fullIters; i++ {
			_, full = eB.CheckAll()
		}
		fullT := time.Since(t0) / fullIters

		rows = append(rows,
			B8Row{Scale: scale, Mode: "singleton-inserts", Ops: batch, Total: singleton, PerOp: singleton / time.Duration(batch)},
			B8Row{Scale: scale, Mode: "batched-tx", Ops: batch, Total: batched, PerOp: batched / time.Duration(batch)},
			B8Row{Scale: scale, Mode: "validate-delta", Ops: 1, Total: deltaT, PerOp: deltaT,
				DeltaPairs: delta.PairsChecked, FullPairs: full.PairsChecked},
			B8Row{Scale: scale, Mode: "validate-full", Ops: 1, Total: fullT, PerOp: fullT,
				DeltaPairs: delta.PairsChecked, FullPairs: full.PairsChecked},
		)
	}
	return rows, nil
}

// B9Row is one concurrent-serving measurement: aggregate query
// throughput with N reader goroutines hammering the lock-free snapshot
// path while a writer ships mutation batches, plus the plan-cache hit
// rate and residual solver work the readers induced.
type B9Row struct {
	Readers       int
	Ops           int           // total queries served
	Total         time.Duration // wall time for the reader pool
	PerOp         time.Duration // wall time × readers / ops (per-query cost)
	Mutations     int           // ShipTx batches committed during the run
	PlanHitRate   float64
	SolverQueries int64 // planner solver calls during the reader phase
}

// Throughput is the aggregate serving rate in queries per second.
func (r B9Row) Throughput() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Total.Seconds()
}

// B9 measures concurrent-reader serving over the scaled Figure 1
// fixture: reader goroutines run a fixed query mix against the
// published snapshot (Run takes no lock) while one writer ships ShipTx
// batches that republish it. Row answers are cross-checked against the
// single-threaded engine before timing; on a multi-core host the
// aggregate throughput scales with the reader count (CI is single-core,
// so only the correctness half is asserted there — wall-clock scaling
// is reported, not gated).
func B9(scale, readers, opsPerReader int) (B9Row, error) {
	row := B9Row{Readers: readers}
	local, remote := fixture.Figure1Stores(fixture.Options{Scale: scale})
	res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		return row, err
	}
	e := view.New(res)
	queries := []view.Query{
		{Class: "Item", Where: expr.MustParse("isbn = 'vldb96'")},
		{Class: "Item", Where: expr.MustParse("shopprice <= 20")},
		{Class: "Proceedings", Where: expr.MustParse("rating >= 7 and shopprice < 75")},
		{Class: "Proceedings", Where: expr.MustParse("rating in {5, 8}")},
		{Class: "Proceedings", Where: expr.MustParse("publisher.name = 'IEEE' and ref? = false")},
	}
	// Warm plans and pin the expected answer sizes single-threaded.
	want := make([]int, len(queries))
	for i, q := range queries {
		rows, _, err := e.Run(q)
		if err != nil {
			return row, err
		}
		want[i] = len(rows)
	}

	statsBefore := e.CacheStats()
	var readerWG, writerWG sync.WaitGroup
	errs := make(chan error, readers+1)
	stop := make(chan struct{})
	var mutations atomic.Int64

	// Writer: ship small insert batches until the readers finish. The
	// inserted items are priced outside every probed range, so the
	// readers' expected answers stay fixed across republications.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ops := []view.Mutation{{Kind: view.MutInsert, Class: "Item", Attrs: map[string]object.Value{
				"title":     object.Str(fmt.Sprintf("b9-%d-%d", readers, i)),
				"isbn":      object.Str(fmt.Sprintf("b9-%d-%d", readers, i)),
				"publisher": object.Ref{DB: remote.Name(), OID: 2},
				"shopprice": object.Real(50), "libprice": object.Real(40),
			}}}
			if err := e.ShipTx(remote, ops); err != nil {
				errs <- fmt.Errorf("B9 writer batch %d: %w", i, err)
				return
			}
			mutations.Add(1)
		}
	}()

	t0 := time.Now()
	for w := 0; w < readers; w++ {
		readerWG.Add(1)
		go func(w int) {
			defer readerWG.Done()
			for i := 0; i < opsPerReader; i++ {
				qi := (w + i) % len(queries)
				rows, _, err := e.Run(queries[qi])
				if err != nil {
					errs <- fmt.Errorf("B9 reader %d: %w", w, err)
					return
				}
				if len(rows) != want[qi] {
					errs <- fmt.Errorf("B9 reader %d: query %d served %d rows, want %d",
						w, qi, len(rows), want[qi])
					return
				}
			}
		}(w)
	}
	readerWG.Wait()
	row.Total = time.Since(t0)
	close(stop)
	writerWG.Wait()

	close(errs)
	for err := range errs {
		return row, err
	}
	row.Ops = readers * opsPerReader
	row.Mutations = int(mutations.Load())
	statsAfter := e.CacheStats()
	hits := statsAfter.PlanHits - statsBefore.PlanHits
	misses := statsAfter.PlanMisses - statsBefore.PlanMisses
	if hits+misses > 0 {
		row.PlanHitRate = float64(hits) / float64(hits+misses)
	}
	row.SolverQueries = statsAfter.SolverQueries - statsBefore.SolverQueries
	if row.Ops > 0 {
		row.PerOp = time.Duration(int64(row.Total) * int64(readers) / int64(row.Ops))
	}
	return row, nil
}

// B9VRow is one reader-scaling measurement over the multi-version
// snapshot ring: aggregate read throughput with N readers against a
// writer pinned to a FIXED write rate, plus the ring-health high-water
// marks sampled during the run. B9 lets its writer free-run, so its
// write pressure grows with the run length; B9V holds writes constant
// across reader counts, isolating reader-side scaling — on a multi-core
// host throughput grows near-linearly with the reader count, and the
// sampled reclaim depth stays bounded regardless.
type B9VRow struct {
	Readers int
	Ops     int           // total queries served
	Total   time.Duration // wall time for the reader pool
	PerOp   time.Duration // wall time × readers / ops (per-query cost)
	// Mutations counts the writes the ticker shipped during the reader
	// phase; WriteInterval is the fixed tick between them.
	Mutations     int
	WriteInterval time.Duration
	PlanHitRate   float64
	// MaxChainVersions is the sampled high-water mark of retired class
	// versions still chained (the reclaim depth); MaxLag the worst
	// sampled reader lag in versions. Both bounded by the epoch
	// protocol, not by the mutation count.
	MaxChainVersions int
	MaxLag           uint64
	// Coalesced / Truncated are the run's deltas of the ring's
	// publication-coalescing and version-excision counters.
	Coalesced int64
	Truncated int64
}

// Throughput is the aggregate serving rate in queries per second.
func (r B9VRow) Throughput() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Total.Seconds()
}

// B9V measures reader scaling at a fixed write rate over the scaled
// Figure 1 fixture: a ticker-driven writer ships one singleton insert
// per interval (republishing through the per-class delta path) while N
// reader goroutines run the B9 query mix against pinned snapshots; a
// sampler tracks the ring's reclaim depth and reader lag throughout.
// Row answers are cross-checked against the warmed single-threaded
// answers before timing, exactly like B9.
func B9V(scale, readers, opsPerReader int, writeInterval time.Duration) (B9VRow, error) {
	row := B9VRow{Readers: readers, WriteInterval: writeInterval}
	local, remote := fixture.Figure1Stores(fixture.Options{Scale: scale})
	res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		return row, err
	}
	e := view.New(res)
	queries := []view.Query{
		{Class: "Item", Where: expr.MustParse("isbn = 'vldb96'")},
		{Class: "Item", Where: expr.MustParse("shopprice <= 20")},
		{Class: "Proceedings", Where: expr.MustParse("rating >= 7 and shopprice < 75")},
		{Class: "Proceedings", Where: expr.MustParse("rating in {5, 8}")},
		{Class: "Proceedings", Where: expr.MustParse("publisher.name = 'IEEE' and ref? = false")},
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		rows, _, err := e.Run(q)
		if err != nil {
			return row, err
		}
		want[i] = len(rows)
	}

	statsBefore := e.CacheStats()
	ringBefore := e.RingStats()
	var readerWG, auxWG sync.WaitGroup
	errs := make(chan error, readers+1)
	stop := make(chan struct{})
	var mutations atomic.Int64

	// Writer: one insert per tick, priced outside every probed range so
	// the readers' expected answers stay fixed across republications.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		tick := time.NewTicker(writeInterval)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			attrs := map[string]object.Value{
				"title":     object.Str(fmt.Sprintf("b9v-%d-%d", readers, i)),
				"isbn":      object.Str(fmt.Sprintf("b9v-%d-%d", readers, i)),
				"publisher": object.Ref{DB: remote.Name(), OID: 2},
				"shopprice": object.Real(50), "libprice": object.Real(40),
			}
			if err := e.ShipInsert(remote, "Item", attrs); err != nil {
				errs <- fmt.Errorf("B9V writer insert %d: %w", i, err)
				return
			}
			mutations.Add(1)
		}
	}()

	// Sampler: ring-health high-water marks while the run is live.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			st := e.RingStats()
			if st.ChainVersions > row.MaxChainVersions {
				row.MaxChainVersions = st.ChainVersions
			}
			if st.MaxLag > row.MaxLag {
				row.MaxLag = st.MaxLag
			}
		}
	}()

	t0 := time.Now()
	for w := 0; w < readers; w++ {
		readerWG.Add(1)
		go func(w int) {
			defer readerWG.Done()
			for i := 0; i < opsPerReader; i++ {
				qi := (w + i) % len(queries)
				rows, _, err := e.Run(queries[qi])
				if err != nil {
					errs <- fmt.Errorf("B9V reader %d: %w", w, err)
					return
				}
				if len(rows) != want[qi] {
					errs <- fmt.Errorf("B9V reader %d: query %d served %d rows, want %d",
						w, qi, len(rows), want[qi])
					return
				}
			}
		}(w)
	}
	readerWG.Wait()
	row.Total = time.Since(t0)
	close(stop)
	auxWG.Wait()

	close(errs)
	for err := range errs {
		return row, err
	}
	row.Ops = readers * opsPerReader
	row.Mutations = int(mutations.Load())
	statsAfter := e.CacheStats()
	hits := statsAfter.PlanHits - statsBefore.PlanHits
	misses := statsAfter.PlanMisses - statsBefore.PlanMisses
	if hits+misses > 0 {
		row.PlanHitRate = float64(hits) / float64(hits+misses)
	}
	ringAfter := e.RingStats()
	row.Coalesced = ringAfter.Coalesced - ringBefore.Coalesced
	row.Truncated = ringAfter.Truncated - ringBefore.Truncated
	if row.Ops > 0 {
		row.PerOp = time.Duration(int64(row.Total) * int64(readers) / int64(row.Ops))
	}
	return row, nil
}

// B10Row is one federation membership-change measurement.
type B10Row struct {
	Scale int
	// Attach is the wall time of the incremental third-member attach:
	// the new pair's integration plus the graft and the single scoped
	// republication, against a live, warmed federation.
	Attach time.Duration
	// Reintegrate is the wall time of building the same three-member
	// federation from scratch (both pair integrations, fresh memo,
	// fresh engine).
	Reintegrate time.Duration
	// PlanSurvival is the fraction of warmed query shapes on classes
	// untouched by the attach that are still served from the plan cache
	// afterwards.
	PlanSurvival float64
	// AttachSolver counts the reasoning computations the incremental
	// attach performed; FullSolver the total a from-scratch rebuild
	// performs. Their gap is the derivation work membership scoping
	// avoids.
	AttachSolver int64
	FullSolver   int64
	// Publishes counts snapshots the membership change published
	// (always 1: readers see whole pre- or post-membership states).
	Publishes int64
}

// Speedup is the re-integration/attach wall-time ratio.
func (r B10Row) Speedup() float64 {
	if r.Attach <= 0 {
		return 0
	}
	return float64(r.Reintegrate) / float64(r.Attach)
}

// b10AttachArchive mirrors interopdb.Federation's incremental attach on
// internal state: integrate the CSLibrary/UnivArchive pair (sharing the
// federation memo when the typings agree) and graft it under the
// engine's Rebind. It returns the pair derivation's reasoning misses.
func b10AttachArchive(fs *core.FedState, e *view.Engine, lib, arch *store.Store, memo *logic.Memo, opts core.Options) (int64, error) {
	pspec, err := core.Compile(tm.Figure1Library(), tm.Figure1UnivArchive(), tm.Figure1ArchiveIntegration())
	if err != nil {
		return 0, err
	}
	pspec.Seed = 1
	conf, err := core.ConformOptions(pspec, lib, arch, opts)
	if err != nil {
		return 0, err
	}
	pv, err := core.Merge(conf)
	if err != nil {
		return 0, err
	}
	dopts := opts
	dopts.Memo = nil
	before := memo.Stats()
	if ck := fs.Res.Derivation.Checker; ck != nil && core.TypesCompatible(ck.Types, conf.Types) {
		dopts.Memo = memo
	}
	pairRes := &core.Result{Spec: pspec, Conformed: conf, View: pv, Derivation: core.DeriveOptions(pv, dopts)}
	solver := pairRes.Derivation.CacheStats().Misses
	if dopts.Memo != nil {
		solver -= before.Misses
	}
	err = e.Rebind(func() (changed, removed []string, err error) {
		changed, err = fs.AttachPair(pairRes, "UnivArchive", "CSLibrary")
		return changed, nil, err
	})
	return solver, err
}

// B10 measures federation membership changes on the scaled Figure 1
// fixture: incremental third-member attach against a live, warmed
// two-member federation versus a full three-member re-integration from
// scratch, the plan-cache survival rate for classes the attach does not
// touch, and the snapshot-publication count (one per membership
// change). The incremental and from-scratch federations are
// cross-checked to identical federated reports before timing.
func B10(scales []int) ([]B10Row, error) {
	var out []B10Row
	untouchedQs := []view.Query{
		{Class: "Publisher", Where: expr.MustParse("location = 'Berlin'")},
		{Class: "Publisher", Where: expr.MustParse("name = 'IEEE'")},
		{Class: "Monograph", Where: expr.MustParse("shopprice < 95")},
	}
	for _, scale := range scales {
		row := B10Row{Scale: scale}

		// Live two-member federation, plans warmed.
		memo := logic.NewMemo()
		opts := core.Options{Memo: memo}
		lib, bs := fixture.Figure1Stores(fixture.Options{Scale: scale})
		res, err := core.IntegrateOptions(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), lib, bs, 1, opts)
		if err != nil {
			return nil, err
		}
		pair1Solver := res.Derivation.CacheStats().Misses
		fs := core.NewFedState(res, "CSLibrary", opts, memo)
		e := view.New(res)
		for _, q := range untouchedQs {
			if _, _, err := e.Run(q); err != nil {
				return nil, err
			}
		}

		arch := fixture.ArchiveStore(fixture.Options{Scale: scale})
		pubBefore := e.CacheStats().Publishes
		t0 := time.Now()
		attachSolver, err := b10AttachArchive(fs, e, lib, arch, memo, opts)
		if err != nil {
			return nil, err
		}
		row.Attach = time.Since(t0)
		row.AttachSolver = attachSolver
		row.Publishes = e.CacheStats().Publishes - pubBefore

		surv := 0
		for _, q := range untouchedQs {
			_, st, err := e.Run(q)
			if err != nil {
				return nil, err
			}
			if st.PlanCached {
				surv++
			}
		}
		row.PlanSurvival = float64(surv) / float64(len(untouchedQs))

		// Full re-integration from scratch. The component stores are
		// built OUTSIDE the timed region — the incremental side starts
		// from existing stores too, and the comparison must time
		// integration work only.
		memo2 := logic.NewMemo()
		opts2 := core.Options{Memo: memo2}
		lib2, bs2 := fixture.Figure1Stores(fixture.Options{Scale: scale})
		arch2 := fixture.ArchiveStore(fixture.Options{Scale: scale})
		t0 = time.Now()
		res2, err := core.IntegrateOptions(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), lib2, bs2, 1, opts2)
		if err != nil {
			return nil, err
		}
		fs2 := core.NewFedState(res2, "CSLibrary", opts2, memo2)
		e2 := view.New(res2)
		fullSolver, err := b10AttachArchive(fs2, e2, lib2, arch2, memo2, opts2)
		if err != nil {
			return nil, err
		}
		row.Reintegrate = time.Since(t0)
		row.FullSolver = pair1Solver + fullSolver

		if got, want := fs.Report(), fs2.Report(); got != want {
			return nil, fmt.Errorf("B10 scale %d: incremental and from-scratch federations diverge", scale)
		}
		out = append(out, row)
	}
	return out, nil
}

// B12Result is the fault-tolerance serving measurement: a mixed
// cross-member workload under seeded transient commit faults, a full
// member outage with degraded serving, and the reconvergence cost once
// the member heals. The acceptance property is that transient faults at
// the configured rate are absorbed entirely by the retry layer — zero
// partial commits surface to callers — and that an outage past the
// retry budget degrades to fast-failing writes and snapshot reads
// instead of errors.
type B12Result struct {
	Scale   int
	Batches int
	Rate    float64

	// Faulty phase: seeded transient commit faults at Rate on the
	// library member, absorbed by capped-backoff retries.
	Injected        int           // faults the chaos wrapper injected
	Retries         int64         // commit retries the engine burned
	ClientErrors    int           // errors surfaced to callers, any kind
	PartialSurfaced int           // ErrPartialCommit surfaced to callers — must stay 0
	FaultyTotal     time.Duration // wall time of the faulted workload
	FaultFreeTotal  time.Duration // same workload, no injection

	// Outage phase: the library member stays down past the retry
	// budget, stranding one batch in the commit journal.
	DegradedReads  int // queries answered while the member was quarantined
	WriteFastFails int // writes refused with ErrMemberUnavailable, no peer commit

	// Reconvergence: the member heals and one reconcile pass completes
	// the stranded batch into the served view.
	Reconverge time.Duration
	Completed  int // journal entries the reconcile pass completed
}

// Overhead is the faulted/fault-free wall-time ratio for the same
// workload — the serving bill of absorbing the fault rate.
func (r B12Result) Overhead() float64 {
	if r.FaultFreeTotal <= 0 {
		return 0
	}
	return float64(r.FaultyTotal) / float64(r.FaultFreeTotal)
}

// b12Engine builds a two-member federation with the library member
// wrapped in a chaos backend, routed shipping bound, and retries that
// keep their capped-exponential shape but take no wall clock.
func b12Engine(scale int, libOpts chaos.Options) (*view.Engine, *chaos.Backend, string, int, error) {
	lib, bs := fixture.Figure1Stores(fixture.Options{Scale: scale})
	res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), lib, bs, 1)
	if err != nil {
		return nil, nil, "", 0, err
	}
	e := view.New(res)
	cb := chaos.Wrap(lib, libOpts)
	reg := store.NewRegistry()
	if err := reg.Add(cb); err != nil {
		return nil, nil, "", 0, err
	}
	if err := reg.Add(bs); err != nil {
		return nil, nil, "", 0, err
	}
	e.BindStores(reg)
	e.Retry = view.RetryPolicy{BaseDelay: time.Microsecond, MaxDelay: time.Microsecond, Sleep: func(time.Duration) {}}
	vldbID := -1
	for _, g := range res.View.Objects {
		if v, ok := g.Get("isbn"); ok && v.Equal(object.Str("vldb96")) {
			vldbID = g.ID
			break
		}
	}
	if vldbID < 0 {
		return nil, nil, "", 0, fmt.Errorf("B12: vldb96 not in the integrated view")
	}
	return e, cb, bs.Name(), vldbID, nil
}

// b12Batch is one cross-member batch: a bookseller-routed insert plus a
// title update of the merged vldb96 object, which fans to a constituent
// in BOTH members — the partial-commit shape.
func b12Batch(bsName string, vldbID int, prefix string, i int) []view.Mutation {
	key := fmt.Sprintf("%s-%d", prefix, i)
	return []view.Mutation{
		{Kind: view.MutInsert, Class: "Item", Attrs: map[string]object.Value{
			"title":     object.Str("B12 " + key),
			"isbn":      object.Str(key),
			"publisher": object.Ref{DB: bsName, OID: 2},
			"shopprice": object.Real(50), "libprice": object.Real(40),
		}},
		{Kind: view.MutUpdate, Class: "Item", ID: vldbID, Attrs: map[string]object.Value{
			"title": object.Str(fmt.Sprintf("VLDB 96 Proceedings %s", key)),
		}},
	}
}

// B12 measures serving under member faults on the scaled Figure 1
// fixture. Phase one ships cross-member batches while the library
// member's commits fail transiently at the seeded rate: the engine's
// retry layer must absorb every fault (zero partial commits surfaced),
// and the wall-time ratio against a fault-free run of the same workload
// is the absorption bill. Phase two forces the member down past the
// retry budget: the stranded batch is journaled, subsequent writes
// fast-fail before any peer commits, and reads keep serving from the
// last-good snapshot. Phase three heals the member and times the
// reconcile pass that completes the stranded batch into the view.
func B12(scale, batches int, rate float64) (B12Result, error) {
	r := B12Result{Scale: scale, Batches: batches, Rate: rate}
	ctx := context.Background()

	// Fault-free control run first: same engine shape, no injection.
	ce, _, cbs, cid, err := b12Engine(scale, chaos.Options{})
	if err != nil {
		return r, err
	}
	t0 := time.Now()
	for i := 0; i < batches; i++ {
		if err := ce.Ship(ctx, b12Batch(cbs, cid, "b12", i)); err != nil {
			return r, fmt.Errorf("B12 fault-free batch %d: %w", i, err)
		}
	}
	r.FaultFreeTotal = time.Since(t0)

	// Faulted run: seeded transient faults on library commit attempts.
	e, cb, bsName, vldbID, err := b12Engine(scale, chaos.Options{Seed: 12, TransientRate: rate})
	if err != nil {
		return r, err
	}
	fs0 := e.FaultStats()
	t0 = time.Now()
	for i := 0; i < batches; i++ {
		err := e.Ship(ctx, b12Batch(bsName, vldbID, "b12", i))
		if err != nil {
			r.ClientErrors++
			if errors.Is(err, view.ErrPartialCommit) {
				r.PartialSurfaced++
			}
		}
	}
	r.FaultyTotal = time.Since(t0)
	fs1 := e.FaultStats()
	r.Injected = cb.Stats().Transient
	r.Retries = fs1.Retries - fs0.Retries

	// The faulted and fault-free federations must have converged to the
	// same served extent — the faults were absorbed, not dropped.
	count := func(e *view.Engine) (int, error) {
		rows, _, err := e.Run(view.Query{Class: "Item"})
		return len(rows), err
	}
	nFaulty, err := count(e)
	if err != nil {
		return r, err
	}
	nClean, err := count(ce)
	if err != nil {
		return r, err
	}
	if nFaulty != nClean {
		return r, fmt.Errorf("B12: faulted run served %d items, fault-free %d — a fault was dropped", nFaulty, nClean)
	}

	// Outage: the next four library commit attempts fail, exhausting the
	// retry budget after the bookseller committed — one stranded batch.
	cb.ScheduleNext(chaos.FaultTransient, 4)
	err = e.Ship(ctx, b12Batch(bsName, vldbID, "b12-stranded", 0))
	if !errors.Is(err, view.ErrPartialCommit) {
		return r, fmt.Errorf("B12 outage batch: err = %v, want ErrPartialCommit", err)
	}
	for i := 0; i < 20; i++ {
		rows, st, err := e.Run(view.Query{Class: "Item"})
		if err != nil {
			return r, fmt.Errorf("B12 degraded read %d: %w", i, err)
		}
		if len(rows) != nFaulty {
			return r, fmt.Errorf("B12 degraded read %d served %d items, want the pre-outage %d", i, len(rows), nFaulty)
		}
		if i == 0 && len(st.Degraded) == 0 {
			return r, fmt.Errorf("B12: degraded read did not name the quarantined member")
		}
		r.DegradedReads++
	}
	for i := 0; i < 5; i++ {
		err := e.Ship(ctx, b12Batch(bsName, vldbID, "b12-refused", i))
		if !errors.Is(err, view.ErrMemberUnavailable) {
			return r, fmt.Errorf("B12 quarantined write %d: err = %v, want ErrMemberUnavailable", i, err)
		}
		r.WriteFastFails++
	}

	// Heal (the schedule is exhausted) and time the reconcile pass.
	t0 = time.Now()
	rs, err := e.Reconcile(ctx)
	if err != nil {
		return r, err
	}
	r.Reconverge = time.Since(t0)
	r.Completed = rs.Completed
	rep := e.Health()
	if !rep.Healthy || rep.JournalDepth != 0 {
		return r, fmt.Errorf("B12 after reconcile: healthy=%v journal=%d, want a drained healthy federation", rep.Healthy, rep.JournalDepth)
	}
	n, err := count(e)
	if err != nil {
		return r, err
	}
	if n != nFaulty+1 {
		return r, fmt.Errorf("B12 after reconcile: %d items served, want %d (stranded batch applied)", n, nFaulty+1)
	}
	return r, nil
}

// B13Result is the durability measurement: what logging every routed
// commit to a checksummed WAL costs at ship time (no log, log without
// fsync, log with an fsync per commit), and what the persisted derived
// state buys back at boot time (a warm start — checkpoint restore, WAL
// tail replay, memo import, plan re-warming — against a cold start that
// re-runs the solver and re-plans from nothing). The acceptance
// property is the warm-start contract: the recovered node serves the
// same extent as the never-crashed control, and its first client
// queries are plan-cache hits issuing zero solver queries.
type B13Result struct {
	Scale   int
	Batches int

	// Ship phase: the identical cross-member workload three ways.
	ShipBare      time.Duration // routed registry, no WAL
	ShipWALNoSync time.Duration // WAL append per commit, OS-buffered
	ShipWALSync   time.Duration // WAL append + fsync per commit

	// Boot phase, after the synced node "crashes" (no final checkpoint).
	ColdBoot time.Duration // fresh integration + first queries, cold caches
	WarmBoot time.Duration // full recovery + the same first queries

	ReplayedCommits int // WAL tail commits the warm boot replayed
	MemoEntries     int // entailment verdicts imported from the checkpoint
	PlansWarmed     int // plan shapes re-planned before serving

	// First post-recovery client queries: the warm-start contract.
	WarmPlanHits      int64 // must equal the query count
	WarmSolverQueries int64 // must be 0
}

// WALOverheadNoSync is the ship-time ratio of OS-buffered logging.
func (r B13Result) WALOverheadNoSync() float64 {
	if r.ShipBare <= 0 {
		return 0
	}
	return float64(r.ShipWALNoSync) / float64(r.ShipBare)
}

// WALOverheadSync is the ship-time ratio of fsync-per-commit logging —
// the full durability bill.
func (r B13Result) WALOverheadSync() float64 {
	if r.ShipBare <= 0 {
		return 0
	}
	return float64(r.ShipWALSync) / float64(r.ShipBare)
}

// BootSpeedup is cold/warm boot-to-serving time.
func (r B13Result) BootSpeedup() float64 {
	if r.WarmBoot <= 0 {
		return 0
	}
	return float64(r.ColdBoot) / float64(r.WarmBoot)
}

// b13Queries is the read workload whose plan shapes the checkpoint
// persists and a warm boot re-plans.
func b13Queries() []view.Query {
	return []view.Query{
		{Class: "Proceedings", Where: expr.MustParse("rating >= 7")},
		{Class: "Item", Where: expr.MustParse("shopprice <= 20")},
	}
}

// b13Bare builds the two-member Figure 1 federation with routed
// shipping bound and no WAL — the control engine.
func b13Bare(scale int) (*view.Engine, string, int, error) {
	lib, bs := fixture.Figure1Stores(fixture.Options{Scale: scale})
	res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), lib, bs, 1)
	if err != nil {
		return nil, "", 0, err
	}
	e := view.New(res)
	reg := store.NewRegistry()
	if err := reg.Add(lib); err != nil {
		return nil, "", 0, err
	}
	if err := reg.Add(bs); err != nil {
		return nil, "", 0, err
	}
	e.BindStores(reg)
	id, err := b13VLDB(res)
	return e, bs.Name(), id, err
}

func b13VLDB(res *core.Result) (int, error) {
	for _, g := range res.View.Objects {
		if v, ok := g.Get("isbn"); ok && v.Equal(object.Str("vldb96")) {
			return g.ID, nil
		}
	}
	return 0, fmt.Errorf("B13: vldb96 not in the integrated view")
}

// b13Node is a durable two-member node assembled from the store-layer
// primitives (the root package's Durability orchestration restated at
// this layer — experiments cannot import the root package without a
// cycle through the root benchmarks).
type b13Node struct {
	eng     *view.Engine
	res     *core.Result
	wal     *store.WAL
	memo    *logic.Memo
	members []*store.Store
	dir     string

	stats       store.ReplayStats
	memoEntries int
	plansWarmed int
}

// b13Boot performs the documented boot protocol, cold and warm alike:
// read the checkpoint, scan the WAL, replay into freshly built member
// stores, integrate with the imported memo, interpose WAL logging on
// every member, and re-plan the persisted shapes.
func b13Boot(dir string, scale int, sync store.SyncPolicy) (*b13Node, error) {
	ckpt, err := store.ReadCheckpoint(filepath.Join(dir, "checkpoint.db"))
	if err != nil && !errors.Is(err, store.ErrNoCheckpoint) {
		return nil, err
	}
	wal, recs, err := store.OpenWAL(filepath.Join(dir, "wal.log"), store.WALOptions{Sync: sync})
	if err != nil {
		return nil, err
	}
	rec := store.BuildRecovery(ckpt, recs, wal.Damage())
	n := &b13Node{wal: wal, dir: dir}

	memo := logic.NewMemo()
	n.memo = memo
	if sec, ok := rec.Derived("memo"); ok {
		if n.memoEntries, err = memo.Import(sec); err != nil {
			return nil, err
		}
	}
	lib, bs := fixture.Figure1Stores(fixture.Options{Scale: scale})
	n.members = []*store.Store{lib, bs}
	if n.stats, err = rec.Replay(map[string]*store.Store{lib.Name(): lib, bs.Name(): bs}); err != nil {
		return nil, err
	}
	res, err := core.IntegrateOptions(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1IntegrationRepaired(), lib, bs, 1, core.Options{Memo: memo})
	if err != nil {
		return nil, err
	}
	n.res = res
	if sec, ok := rec.Derived("derivation"); ok {
		if err := core.VerifyDerivation(res.Derivation, sec); err != nil {
			return nil, err
		}
	}
	e := view.New(res)
	reg := store.NewRegistry()
	set := store.NewDurableSet(wal)
	for _, s := range []*store.Store{lib, bs} {
		if err := reg.Add(s); err != nil {
			return nil, err
		}
		if err := reg.Swap(s.Name(), set.Wrap(s)); err != nil {
			return nil, err
		}
	}
	e.BindStores(reg)
	e.SetDurability(set)
	if sec, ok := rec.Derived("plans"); ok {
		if n.plansWarmed, _, err = e.WarmPlans(context.Background(), sec); err != nil {
			return nil, err
		}
	}
	n.eng = e
	return n, nil
}

// checkpoint snapshots the node (extents + memo + derivation + plans)
// under the engine's read lock and drops the redundant WAL prefix.
func (n *b13Node) checkpoint(memo *logic.Memo) error {
	ck := &store.Checkpoint{Derived: map[string]json.RawMessage{}}
	var capErr error
	n.eng.ReadLocked(func() {
		ck.LSN = n.wal.LastLSN()
		for _, s := range n.members {
			mc, err := store.SnapshotStore(s)
			if err != nil {
				capErr = err
				return
			}
			ck.Members = append(ck.Members, mc)
		}
		if ck.Derived["memo"], capErr = memo.Export(); capErr != nil {
			return
		}
		if ck.Derived["derivation"], capErr = core.ExportDerivation(n.res.Derivation); capErr != nil {
			return
		}
		ck.Derived["plans"], capErr = n.eng.ExportPlans()
	})
	if capErr != nil {
		return capErr
	}
	if err := store.WriteCheckpoint(filepath.Join(n.dir, "checkpoint.db"), ck); err != nil {
		return err
	}
	return n.wal.TruncateThrough(ck.LSN)
}

// B13 measures durability on the scaled Figure 1 fixture. The ship
// phase runs the same cross-member workload bare, WAL-logged without
// fsync, and WAL-logged with an fsync per commit — the write-side bill.
// The boot phase then crashes the synced node (no final checkpoint) and
// compares a cold start against the warm recovery: replay the tail,
// answer the integration's solver queries from the imported memo,
// verify the derivation, re-plan the persisted shapes, and serve —
// first queries hitting the plan cache with zero solver work.
func B13(scale, batches int) (B13Result, error) {
	r := B13Result{Scale: scale, Batches: batches}
	ctx := context.Background()
	queries := b13Queries()

	// Bare control.
	be, bbs, bid, err := b13Bare(scale)
	if err != nil {
		return r, err
	}
	t0 := time.Now()
	for i := 0; i < batches; i++ {
		if err := be.Ship(ctx, b12Batch(bbs, bid, "b13", i)); err != nil {
			return r, fmt.Errorf("B13 bare batch %d: %w", i, err)
		}
	}
	r.ShipBare = time.Since(t0)
	count := func(e *view.Engine) (int, error) {
		rows, _, err := e.Run(view.Query{Class: "Item"})
		return len(rows), err
	}
	nBare, err := count(be)
	if err != nil {
		return r, err
	}

	// WAL, no fsync.
	dirNoSync, err := os.MkdirTemp("", "b13-nosync-*")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(dirNoSync)
	nn, err := b13Boot(dirNoSync, scale, store.SyncNever)
	if err != nil {
		return r, err
	}
	id, err := b13VLDB(nn.res)
	if err != nil {
		return r, err
	}
	t0 = time.Now()
	for i := 0; i < batches; i++ {
		if err := nn.eng.Ship(ctx, b12Batch(nn.members[1].Name(), id, "b13", i)); err != nil {
			return r, fmt.Errorf("B13 nosync batch %d: %w", i, err)
		}
	}
	r.ShipWALNoSync = time.Since(t0)
	if err := nn.wal.Close(); err != nil {
		return r, err
	}

	// WAL, fsync per commit. Run the read workload first so the
	// checkpoint persists plan shapes, checkpoint, then ship — the
	// workload lands entirely in the WAL tail.
	dirSync, err := os.MkdirTemp("", "b13-sync-*")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(dirSync)
	ns, err := b13Boot(dirSync, scale, store.SyncAlways)
	if err != nil {
		return r, err
	}
	for _, q := range queries {
		if _, _, err := ns.eng.Run(q); err != nil {
			return r, err
		}
	}
	if err := ns.checkpoint(ns.memo); err != nil {
		return r, err
	}
	if id, err = b13VLDB(ns.res); err != nil {
		return r, err
	}
	t0 = time.Now()
	for i := 0; i < batches; i++ {
		if err := ns.eng.Ship(ctx, b12Batch(ns.members[1].Name(), id, "b13", i)); err != nil {
			return r, fmt.Errorf("B13 sync batch %d: %w", i, err)
		}
	}
	r.ShipWALSync = time.Since(t0)
	// Crash: close the log without a final checkpoint; the workload
	// survives only as the WAL tail.
	if err := ns.wal.Close(); err != nil {
		return r, err
	}

	// Cold boot control: integration from scratch, cold caches, first
	// queries planned and solver-checked from nothing.
	t0 = time.Now()
	ce, _, _, err := b13Bare(scale)
	if err != nil {
		return r, err
	}
	for _, q := range queries {
		if _, _, err := ce.Run(q); err != nil {
			return r, err
		}
	}
	r.ColdBoot = time.Since(t0)

	// Warm boot: full recovery of the crashed node plus the same first
	// queries.
	t0 = time.Now()
	nw, err := b13Boot(dirSync, scale, store.SyncAlways)
	if err != nil {
		return r, err
	}
	cs0 := nw.eng.CacheStats()
	for _, q := range queries {
		if _, _, err := nw.eng.Run(q); err != nil {
			return r, err
		}
	}
	r.WarmBoot = time.Since(t0)
	cs1 := nw.eng.CacheStats()
	r.ReplayedCommits = nw.stats.ReplayedCommits
	r.MemoEntries = nw.memoEntries
	r.PlansWarmed = nw.plansWarmed
	r.WarmPlanHits = cs1.PlanHits - cs0.PlanHits
	r.WarmSolverQueries = cs1.SolverQueries - cs0.SolverQueries
	if err := nw.wal.Close(); err != nil {
		return r, err
	}

	// The warm-start contract.
	if r.ReplayedCommits == 0 {
		return r, fmt.Errorf("B13: the crashed node's workload left no WAL tail to replay")
	}
	if r.WarmSolverQueries != 0 {
		return r, fmt.Errorf("B13: first post-recovery queries issued %d solver queries, want 0", r.WarmSolverQueries)
	}
	if r.WarmPlanHits != int64(len(queries)) {
		return r, fmt.Errorf("B13: first post-recovery queries recorded %d plan hits, want %d", r.WarmPlanHits, len(queries))
	}
	nWarm, err := count(nw.eng)
	if err != nil {
		return r, err
	}
	if nWarm != nBare {
		return r, fmt.Errorf("B13: recovered node serves %d items, never-crashed control %d", nWarm, nBare)
	}
	return r, nil
}

// Reasoner runs a micro-benchmark-sized workload through the logic
// checker (used by BenchmarkReasoner).
func Reasoner() logic.Verdict {
	c := &logic.Checker{Types: map[string]object.Type{"rating": object.RangeType{Lo: 1, Hi: 10}}}
	return c.Entails(
		[]expr.Node{expr.MustParse("ref? = true"), expr.MustParse("ref? = true implies rating >= 7")},
		expr.MustParse("rating >= 4"))
}
