package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestAllScenarioReproductionsPass locks the E-series: every worked
// example and figure of the paper must reproduce. This is the same check
// cmd/interopbench runs, kept in the test suite so a regression anywhere
// in the pipeline fails CI, not just the bench harness.
func TestAllScenarioReproductionsPass(t *testing.T) {
	results, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 11 {
		t.Fatalf("expected 11 experiments, got %d", len(results))
	}
	for _, r := range results {
		if !r.Passed() {
			t.Errorf("reproduction failed:\n%s", r)
		}
		if len(r.Checks) == 0 {
			t.Errorf("%s has no checks", r.ID)
		}
		// Every check documents both sides of the comparison.
		for _, c := range r.Checks {
			if c.Expected == "" || c.Measured == "" {
				t.Errorf("%s/%s: missing expected/measured text", r.ID, c.Name)
			}
		}
	}
}

func TestResultRendering(t *testing.T) {
	r := Result{ID: "EX", Title: "demo", Checks: []Check{
		{Name: "a", Expected: "1", Measured: "1", Pass: true},
		{Name: "b", Expected: "2", Measured: "3", Pass: false},
	}}
	s := r.String()
	if !strings.Contains(s, "EX FAIL") || !strings.Contains(s, "[FAIL] b") || !strings.Contains(s, "[ok] a") {
		t.Errorf("rendering: %q", s)
	}
	if r.Passed() {
		t.Error("Passed with a failing check")
	}
}

func TestB1Shapes(t *testing.T) {
	rows, err := B1(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The refuted query prunes; answers were verified equal inside B1.
	if !rows[0].Pruned || rows[0].OptScanned != 0 {
		t.Errorf("first query should prune: %+v", rows[0])
	}
	if rows[2].Pruned {
		t.Errorf("unconstrained query must not prune: %+v", rows[2])
	}
}

func TestB2Shapes(t *testing.T) {
	rows, err := B2(40, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].RejectedEarly != 0 {
		t.Errorf("zero violation rate: %+v", rows[0])
	}
	if rows[1].RejectedEarly != 20 {
		t.Errorf("half violation rate should reject 20/40: %+v", rows[1])
	}
	// Everything that shipped was accepted locally: validation is exact
	// on this workload.
	for _, r := range rows {
		if r.LocalRejects != 0 {
			t.Errorf("shipped inserts rejected locally: %+v", r)
		}
	}
}

func TestB3Monotone(t *testing.T) {
	rows, err := B3([]int{100, 400}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Objects >= rows[1].Objects {
		t.Errorf("object counts should grow with size: %+v", rows)
	}
	// Overlap 0.5 on equal sides: merged ≈ books/2 (+publishers).
	if rows[1].Merged < 200 || rows[1].Merged > 215 {
		t.Errorf("merged count off: %+v", rows[1])
	}
}

func TestB4DerivedCounts(t *testing.T) {
	rows, err := B4([]int{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Each avg-paired bound derives exactly one global constraint.
	if rows[0].Derived != 3 || rows[1].Derived != 9 {
		t.Errorf("derived counts: %+v", rows)
	}
}

func TestB5Shapes(t *testing.T) {
	r, err := B5()
	if err != nil {
		t.Fatal(err)
	}
	if r.ClassBasedPrecision >= 1 || r.ClassBasedPrecision <= 0 {
		t.Errorf("precision = %v", r.ClassBasedPrecision)
	}
	if r.UnionAllFalseRej == 0 || r.UnionAllFalseRej > r.UnionAllTotal {
		t.Errorf("union-all: %d/%d", r.UnionAllFalseRej, r.UnionAllTotal)
	}
}

func TestB6AlwaysSuggestsRepairs(t *testing.T) {
	rows, err := B6()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Conflicts > 0 && r.Suggestions == 0 {
			t.Errorf("conflicts without repairs: %+v", r)
		}
	}
	// Weakening oc2 below the obligation adds a conflict vs. baseline.
	if rows[1].Conflicts <= rows[0].Conflicts-1 {
		t.Errorf("weakened oc2 should add a conflict: %+v", rows[:2])
	}
}

// TestB9VSmoke runs the reader-scaling experiment at toy size: answers
// stay correct under the ticker-driven writer, the fixed write rate
// actually produced writes, and the sampled ring-health marks stay
// bounded (reclamation keeps up with the churn).
func TestB9VSmoke(t *testing.T) {
	r, err := B9V(1, 2, 60, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops != 2*60 {
		t.Errorf("ops = %d, want %d", r.Ops, 2*60)
	}
	if r.Total <= 0 || r.PerOp <= 0 {
		t.Errorf("degenerate timings: %+v", r)
	}
	if r.MaxChainVersions > 100 {
		t.Errorf("reclaim depth high-water mark %d is unbounded territory", r.MaxChainVersions)
	}
}

// TestB13Smoke runs the durability measurement at its smallest shape
// and checks the warm-start contract it enforces internally (replayed
// tail, zero post-recovery solver work, extent parity with the
// never-crashed control).
func TestB13Smoke(t *testing.T) {
	r, err := B13(1, 5)
	if err != nil {
		t.Fatalf("B13: %v", err)
	}
	if r.ReplayedCommits == 0 || r.WarmSolverQueries != 0 || r.PlansWarmed == 0 {
		t.Fatalf("B13 = %+v, want replayed tail, warmed plans, zero solver work", r)
	}
	if r.ShipBare <= 0 || r.ShipWALSync <= 0 || r.WarmBoot <= 0 || r.ColdBoot <= 0 {
		t.Fatalf("B13 timings incomplete: %+v", r)
	}
}
