package interopdb

import (
	"context"
	"fmt"
	"sync"

	"interopdb/internal/core"
	"interopdb/internal/logic"
	"interopdb/internal/store"
	"interopdb/internal/view"
)

// Federation is an N-member interoperation: autonomous component
// databases attached and detached at runtime, integrated pairwise
// against existing members, and served as ONE integrated view with one
// derived global constraint set.
//
// Membership changes are incremental. Attach runs the full pipeline —
// conformation, entity resolution, Sim classification, constraint
// derivation — for the NEW PAIR ONLY (reusing the federation's shared
// reasoning memo), then grafts the result onto the live combined state:
// objects already known keep their identity and gain the new member's
// constituents, the pair's constraints merge in with provenance tags,
// and the query engine republishes only the affected classes — every
// untouched class keeps its snapshot, extent indexes and cached query
// plans. Detach strips the member's constituents and classes, retracts
// every global constraint whose provenance empties, and reclassifies
// the merged objects it touched.
//
// Reads and mutations stay live across membership changes: Attach and
// Detach apply under the engine's write lock and publish exactly one
// snapshot, so concurrent Run/Validate*/Ship* callers observe whole
// pre- or post-membership states, never a torn mix.
//
// The first Attach seeds the federation (no integration spec); every
// later Attach supplies the integration spec pairing the new member
// with one existing member. A two-member federation is byte-identical
// to the pairwise Integrate — existing code and tests keep working
// unchanged on top of it.
type Federation struct {
	mu      sync.Mutex
	seed    int64
	opts    PipelineOptions
	memo    *logic.Memo
	stores  *store.Registry
	members []*FederationMember
	state   *core.FedState
	engine  *view.Engine
	// lastAttach records the reasoning work of the most recent Attach's
	// pair derivation; totalReason accumulates it across the
	// federation's lifetime.
	lastAttach  ReasonerCacheStats
	totalReason ReasonerCacheStats
}

// FederationMember records one attached component database.
type FederationMember struct {
	// Name is the member's database name (its schema's name).
	Name string
	// Spec is the member's parsed database specification.
	Spec *DatabaseSpec
	// Store is the member's component database.
	Store *Store
	// ISpec is the integration specification that attached the member
	// (nil for the seed).
	ISpec *IntegrationSpec
	// Base is the existing member ISpec paired the member with (empty
	// for the seed).
	Base string
}

// StoreRegistry is the federation's member-store registry, used by the
// engine's routed shipping (ShipTxRouted).
type StoreRegistry = store.Registry

// NewFederation creates an empty federation. seed drives the
// non-determinism of conflict-ignoring decision functions in every pair
// integration (as in Integrate); opts configures pipeline execution for
// all of them. All pair integrations share one reasoning memo, so
// entailment work done by one Attach is reused by the next.
func NewFederation(seed int64, opts PipelineOptions) *Federation {
	memo := logic.NewMemo()
	if opts.Memo == nil {
		opts.Memo = memo
	} else {
		memo = opts.Memo
	}
	return &Federation{
		seed:   seed,
		opts:   opts,
		memo:   memo,
		stores: store.NewRegistry(),
	}
}

// Attach is AttachContext with context.Background() — a documented
// wrapper kept for in-process callers with no deadline to propagate.
func (f *Federation) Attach(spec *DatabaseSpec, st *Store, is *IntegrationSpec) error {
	return f.AttachContext(context.Background(), spec, st, is)
}

// AttachContext adds a component database to the federation. The first
// call seeds it (is must be nil); every later call requires an
// integration specification pairing the new member (spec's database)
// with one existing member, in either header orientation. The second
// Attach runs the ordinary pairwise pipeline — its Result is
// byte-identical to Integrate on the same inputs. From the third member
// on, Attach integrates the new pair only and grafts it onto the live
// combined state under the engine's write lock; concurrent readers
// never observe a partial membership.
//
// The context is checked between pipeline stages (compile, conform,
// merge, derive) — each can cost unbounded solver work on large specs —
// and once more before the graft: cancellation aborts with ctx.Err()
// and leaves the membership unchanged. Once the graft begins it runs to
// completion.
func (f *Federation) AttachContext(ctx context.Context, spec *DatabaseSpec, st *Store, is *IntegrationSpec) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name := spec.Schema.Name
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("attach %s: %w", name, err)
	}
	if st == nil {
		return fmt.Errorf("attach %s: nil store", name)
	}
	if st.Name() != name {
		return fmt.Errorf("attach %s: store is %s", name, st.Name())
	}
	for _, m := range f.members {
		if m.Name == name {
			return fmt.Errorf("attach %s: member already attached", name)
		}
	}

	// Seed member.
	if len(f.members) == 0 {
		if is != nil {
			return fmt.Errorf("attach %s: the seed member takes no integration spec", name)
		}
		f.addMember(&FederationMember{Name: name, Spec: spec, Store: st})
		return nil
	}

	if is == nil {
		return fmt.Errorf("attach %s: an integration spec pairing it with an existing member is required", name)
	}
	pair := is.Pair()
	base, ok := pair.Other(name)
	if !ok {
		return fmt.Errorf("attach %s: integration spec relates %s, not the new member", name, pair)
	}
	baseMember := f.memberByName(base)
	if baseMember == nil {
		return fmt.Errorf("attach %s: base member %s is not part of the federation", name, base)
	}

	// Orient the pair pipeline to the spec header.
	localSpec, remoteSpec, localStore, remoteStore := spec, baseMember.Spec, st, baseMember.Store
	if pair.Local == base {
		localSpec, remoteSpec = baseMember.Spec, spec
		localStore, remoteStore = baseMember.Store, st
	}

	// Second member: the founding pair, integrated with the ordinary
	// pairwise pipeline (Result byte-identical to Integrate).
	if len(f.members) == 1 {
		before := f.memo.Stats()
		res, err := core.IntegrateOptions(localSpec, remoteSpec, is, localStore, remoteStore, f.seed, f.opts)
		if err != nil {
			return fmt.Errorf("attach %s: %w", name, err)
		}
		f.noteAttachCost(res.Derivation.CacheStats(), before, f.opts.Memo != nil)
		f.state = core.NewFedState(res, f.members[0].Name, f.opts, f.memo)
		f.engine = view.New(res)
		// The registry pointer is stable for the federation's lifetime
		// (Attach/Detach mutate it in place), so one bind enables the
		// engine's unified Ship across all later membership changes.
		f.engine.BindStores(f.stores)
		f.addMember(&FederationMember{Name: name, Spec: spec, Store: st, ISpec: is, Base: base})
		return nil
	}

	// Third member on: integrate the new pair only (solver work scoped
	// to the classes its integration spec touches), outside any lock…
	pspec, err := core.Compile(localSpec, remoteSpec, is)
	if err != nil {
		return fmt.Errorf("attach %s: compile: %w", name, err)
	}
	pspec.Seed = f.seed
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("attach %s: %w", name, err)
	}
	conf, err := core.ConformOptions(pspec, localStore, remoteStore, f.opts)
	if err != nil {
		return fmt.Errorf("attach %s: conform: %w", name, err)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("attach %s: %w", name, err)
	}
	pview, err := core.Merge(conf)
	if err != nil {
		return fmt.Errorf("attach %s: merge: %w", name, err)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("attach %s: %w", name, err)
	}
	dopts := f.opts
	dopts.Memo = nil
	if ck := f.state.Res.Derivation.Checker; ck != nil && core.TypesCompatible(ck.Types, conf.Types) {
		// The shared memo is only sound when the pair's attribute typing
		// agrees with the federation's on every common path.
		dopts.Memo = f.memo
	}
	before := f.memo.Stats()
	pairRes := &core.Result{
		Spec:       pspec,
		Conformed:  conf,
		View:       pview,
		Derivation: core.DeriveOptions(pview, dopts),
	}
	f.noteAttachCost(pairRes.Derivation.CacheStats(), before, dopts.Memo != nil)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("attach %s: %w", name, err)
	}

	// …then graft it onto the live combined state under the engine's
	// write lock, publishing one snapshot for the whole change.
	err = f.engine.Rebind(func() (changed, removed []string, err error) {
		changed, err = f.state.AttachPair(pairRes, name, base)
		return changed, nil, err
	})
	if err != nil {
		return fmt.Errorf("attach %s: %w", name, err)
	}
	f.addMember(&FederationMember{Name: name, Spec: spec, Store: st, ISpec: is, Base: base})
	return nil
}

// Detach is DetachContext with context.Background() — a documented
// wrapper kept for in-process callers with no deadline to propagate.
func (f *Federation) Detach(name string) error {
	return f.DetachContext(context.Background(), name)
}

// DetachContext removes a member from the federation: its objects and
// constituents leave the integrated view (the component store itself is
// untouched — the database is autonomous), its classes are deregistered
// once empty, every global constraint whose provenance empties is
// retracted, and affected merged objects are reclassified against the
// remaining rules. Untouched classes keep their snapshot indexes and
// cached plans. The member must not be the base of another attached
// member, and the federation keeps serving an integrated pair — a
// two-member federation cannot shrink further.
//
// The context is checked before the retraction begins; once it begins
// it runs to completion (a half-detached member would leave the view
// inconsistent).
func (f *Federation) DetachContext(ctx context.Context, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("detach %s: %w", name, err)
	}
	m := f.memberByName(name)
	if m == nil {
		return fmt.Errorf("detach %s: not a member", name)
	}
	if len(f.members) <= 2 {
		return fmt.Errorf("detach %s: a federation keeps serving an integrated pair (%d members attached)", name, len(f.members))
	}
	err := f.engine.Rebind(func() (changed, removed []string, err error) {
		return f.state.DetachMember(name)
	})
	if err != nil {
		return fmt.Errorf("detach %s: %w", name, err)
	}
	f.stores.Remove(name)
	for i, mm := range f.members {
		if mm.Name == name {
			f.members = append(f.members[:i], f.members[i+1:]...)
			break
		}
	}
	return nil
}

// noteAttachCost records one pair derivation's reasoning work. When the
// pair shared the federation memo its stats are cumulative, so the
// pre-derivation snapshot is subtracted; a pair that could not share
// (attribute-typing mismatch) reports its private table directly.
func (f *Federation) noteAttachCost(after, before ReasonerCacheStats, shared bool) {
	if shared {
		after.Hits -= before.Hits
		after.Misses -= before.Misses
		after.Entries -= before.Entries
		after.Collisions -= before.Collisions
	}
	f.lastAttach = after
	f.totalReason.Hits += after.Hits
	f.totalReason.Misses += after.Misses
	f.totalReason.Entries += after.Entries
	f.totalReason.Collisions += after.Collisions
}

// LastAttachReasoning reports the reasoning work (entailment/
// satisfiability computations and memo hits) the most recent Attach's
// pair derivation performed — the incremental cost of the membership
// change. Detach performs none: retraction is provenance bookkeeping.
func (f *Federation) LastAttachReasoning() ReasonerCacheStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastAttach
}

// TotalReasoning reports the cumulative reasoning work of every Attach
// this federation has performed — the quantity a full re-integration
// from scratch would have to repeat.
func (f *Federation) TotalReasoning() ReasonerCacheStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.totalReason
}

func (f *Federation) addMember(m *FederationMember) {
	f.members = append(f.members, m)
	// Registry add cannot collide: member names are checked above.
	_ = f.stores.Add(m.Store)
}

func (f *Federation) memberByName(name string) *FederationMember {
	for _, m := range f.members {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Members lists the attached members' database names in attach order.
func (f *Federation) Members() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.members))
	for i, m := range f.members {
		out[i] = m.Name
	}
	return out
}

// Member returns an attached member's record.
func (f *Federation) Member(name string) (*FederationMember, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.memberByName(name)
	return m, m != nil
}

// Stores returns the federation's member-store registry (live: Attach
// and Detach update it), for use with the engine's ShipTxRouted.
func (f *Federation) Stores() *StoreRegistry { return f.stores }

// Engine returns the query engine serving the federation's integrated
// view, nil until two members are attached. The engine survives
// membership changes — handles stay valid across Attach and Detach.
func (f *Federation) Engine() *QueryEngine {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.engine
}

// Result returns the combined integration result, nil until two members
// are attached. With exactly two members it is the pairwise pipeline's
// Result verbatim; from the third member on it is the same object,
// evolved in place by membership changes.
func (f *Federation) Result() *Result {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.state == nil {
		return nil
	}
	return f.state.Res
}

// Report renders an account of the federation: the pairwise report for
// a two-member federation that never grew (byte-identical to
// Integrate's), the federated report — members, classes, lattice,
// constraints with pair provenance — otherwise.
func (f *Federation) Report() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.state == nil {
		if len(f.members) == 1 {
			return fmt.Sprintf("=== Federation: %s (seed only, nothing integrated) ===\n", f.members[0].Name)
		}
		return "=== Federation: empty ===\n"
	}
	var out string
	f.engine.ReadLocked(func() {
		if f.state.Res.Conformed.Fed == nil {
			out = f.state.Res.Report()
		} else {
			out = f.state.Report()
		}
	})
	return out
}
