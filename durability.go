package interopdb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"interopdb/internal/core"
	"interopdb/internal/logic"
	"interopdb/internal/store"
)

// Crash-safe durability (DESIGN.md §13). A Durability handle owns one
// node's data directory: an append-only checksummed write-ahead log
// plus periodic checkpoints snapshotting the member extents AND the
// derived artifacts — the entailment memo, the derived global
// constraint set, and the plan-cache shapes. A restarted node replays
// `checkpoint + WAL tail` into freshly built member stores, re-derives
// the federation with the imported memo (every solver query a cache
// hit), verifies the re-derived constraints against the persisted set,
// and re-plans the persisted shapes — reaching steady-state plan-hit
// serving without re-running the solver.
//
// The boot protocol, cold and warm alike:
//
//	dur, err := interopdb.OpenDurability(dir, interopdb.DurabilityOptions{})
//	// build + seed the member stores exactly as a cold boot would
//	err = dur.RestoreStores(local, remote)        // checkpoint + WAL replay
//	fed := interopdb.NewFederation(seed, interopdb.PipelineOptions{Memo: dur.Memo()})
//	// Attach the members…
//	info, err := dur.Finish(ctx, fed)             // verify, warm, enable logging
//
// After Finish, every batch shipped through the federation's routed
// path (QueryEngine.Ship / ShipTxRouted) is durable before it is
// acknowledged. Writes that bypass the registry — ShipTx against a bare
// *Store, or direct component-store mutations, which the autonomy model
// permits — are NOT logged; they belong to the component database, and
// a warm start rebuilds them only if the caller's store construction
// re-creates them (the "built exactly as the original boot built it"
// contract of RestoreStores).

const (
	walFileName        = "wal.log"
	checkpointFileName = "checkpoint.db"
)

// DurabilityOptions configures a node's persistence.
type DurabilityOptions struct {
	// Sync is the WAL fsync policy: store.SyncAlways (default) fsyncs
	// every append before the commit acknowledges; store.SyncNever
	// leaves syncing to the OS and to explicit flush points (tests,
	// benchmarks isolating append cost).
	Sync store.SyncPolicy
	// WrapWAL, when set, wraps the log file before any append — the
	// chaos disk-fault hook (store/chaos.WrapDisk).
	WrapWAL func(store.WALFile) store.WALFile
}

// SyncPolicy re-exports the WAL fsync policy.
type SyncPolicy = store.SyncPolicy

// WAL fsync policies.
const (
	SyncAlways = store.SyncAlways
	SyncNever  = store.SyncNever
)

// RecoveryInfo reports what a boot's recovery did.
type RecoveryInfo struct {
	// ColdStart is true when the data directory held no prior state.
	ColdStart bool
	// Replay reports checkpoint restoration and WAL-tail replay.
	Replay store.ReplayStats
	// TailDamage is non-nil when the crash tore the log's tail; the
	// damaged suffix was cut at the last valid record.
	TailDamage *store.TailDamage
	// MemoEntries counts entailment verdicts imported from the
	// checkpoint; MemoDiscarded is true when the persisted memo could
	// not be decoded (version drift) and the boot fell back to a cold
	// solver cache — a performance regression, never a refusal to boot.
	MemoEntries   int
	MemoDiscarded bool
	// DerivationVerified is true when the checkpoint carried the derived
	// constraint set and the re-derived federation matched it.
	DerivationVerified bool
	// PlansWarmed / PlansSkipped report plan-shape re-planning.
	PlansWarmed  int
	PlansSkipped int
}

// Durability is one node's persistence handle. It is not safe for
// concurrent use with itself (Checkpoint serializes against the serving
// path internally, but callers must not race Checkpoint/Finish/Close
// with each other).
type Durability struct {
	dir      string
	wal      *store.WAL
	set      *store.DurableSet
	rec      *store.RecoveredState
	memo     *logic.Memo
	info     RecoveryInfo
	finished bool
}

// OpenDurability opens (creating if needed) a node's data directory,
// reads its checkpoint, and scans its WAL. A torn WAL tail is cut at
// the last valid record and reported in Info().TailDamage; a damaged
// checkpoint — checksummed and atomically replaced, so damage means
// storage corruption, not a crash — is a hard error.
func OpenDurability(dir string, opts DurabilityOptions) (*Durability, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durability: %w", err)
	}
	ckpt, err := store.ReadCheckpoint(filepath.Join(dir, checkpointFileName))
	if err != nil && !errors.Is(err, store.ErrNoCheckpoint) {
		return nil, fmt.Errorf("durability: %w", err)
	}
	wal, recs, err := store.OpenWAL(filepath.Join(dir, walFileName), store.WALOptions{
		Sync:     opts.Sync,
		WrapFile: opts.WrapWAL,
	})
	if err != nil {
		return nil, fmt.Errorf("durability: %w", err)
	}
	rec := store.BuildRecovery(ckpt, recs, wal.Damage())
	d := &Durability{
		dir:  dir,
		wal:  wal,
		set:  store.NewDurableSet(wal),
		rec:  rec,
		memo: logic.NewMemo(),
	}
	d.info.ColdStart = !rec.HasState()
	d.info.TailDamage = rec.Damage
	if sec, ok := rec.Derived("memo"); ok {
		n, ierr := d.memo.Import(sec)
		if ierr != nil {
			d.memo = logic.NewMemo()
			d.info.MemoDiscarded = true
		} else {
			d.info.MemoEntries = n
		}
	}
	return d, nil
}

// Memo returns the recovered entailment memo (empty on a cold start).
// Pass it as PipelineOptions.Memo so the boot's derivations answer
// their solver queries from the pre-crash cache.
func (d *Durability) Memo() *logic.Memo { return d.memo }

// HasState reports whether the directory held anything to recover.
func (d *Durability) HasState() bool { return d.rec.HasState() }

// Info reports what recovery did so far (final after Finish).
func (d *Durability) Info() RecoveryInfo { return d.info }

// WAL returns the node's log (tests and the serving layer's health
// endpoint inspect seal state and damage through it).
func (d *Durability) WAL() *store.WAL { return d.wal }

// RestoreStores replays `checkpoint + WAL tail` into the member
// stores, which must be built (and, for members that predate the first
// checkpoint, seeded) exactly as the original boot built them. Safe on
// a cold start (no-op). Call before attaching the stores to a
// federation: replay bypasses constraint re-checking — everything in
// the log was validated before it was recorded — and the pipeline must
// integrate the recovered extents.
func (d *Durability) RestoreStores(stores ...*Store) error {
	m := make(map[string]*store.Store, len(stores))
	for _, s := range stores {
		m[s.Name()] = s
	}
	stats, err := d.rec.Replay(m)
	d.info.Replay = stats
	if err != nil {
		return fmt.Errorf("durability: %w", err)
	}
	return nil
}

// Finish completes a boot: verifies the re-derived constraint set
// against the checkpoint's (a mismatch means the code or specs changed
// under the data directory — surfaced, not served), re-plans the
// persisted plan shapes so the first client query is already a
// plan-cache hit, interposes WAL logging on every member backend in the
// federation's registry, binds the routing-level intent/resolve
// logging, and writes a fresh checkpoint so the replayed tail is folded
// in and a crash during the NEXT epoch replays only its own writes.
func (d *Durability) Finish(ctx context.Context, f *Federation) (RecoveryInfo, error) {
	if d.finished {
		return d.info, fmt.Errorf("durability: Finish called twice")
	}
	f.mu.Lock()
	engine := f.engine
	names := make([]string, 0, len(f.members))
	for _, m := range f.members {
		names = append(names, m.Name)
	}
	var state *core.FedState = f.state
	f.mu.Unlock()
	if engine == nil || state == nil {
		return d.info, fmt.Errorf("durability: federation is not integrated (fewer than two members)")
	}

	if sec, ok := d.rec.Derived("derivation"); ok {
		if err := core.VerifyDerivation(state.Res.Derivation, sec); err != nil {
			return d.info, fmt.Errorf("durability: %w", err)
		}
		d.info.DerivationVerified = true
	}
	if sec, ok := d.rec.Derived("plans"); ok {
		warmed, skipped, err := engine.WarmPlans(ctx, sec)
		if err != nil {
			return d.info, fmt.Errorf("durability: %w", err)
		}
		d.info.PlansWarmed, d.info.PlansSkipped = warmed, skipped
	}

	for _, name := range names {
		b, ok := f.stores.Get(name)
		if !ok {
			return d.info, fmt.Errorf("durability: member %s missing from registry", name)
		}
		if err := f.stores.Swap(name, d.set.Wrap(b)); err != nil {
			return d.info, fmt.Errorf("durability: %w", err)
		}
	}
	engine.SetDurability(d.set)
	d.finished = true

	if err := d.Checkpoint(f); err != nil {
		return d.info, err
	}
	return d.info, nil
}

// Checkpoint writes an atomic snapshot of the node — member extents,
// entailment memo, derived constraint set, plan shapes — and drops the
// WAL prefix it makes redundant. The capture runs under the engine's
// read lock, which excludes Ship commits, so the extents and the log
// cut are one consistent state; the file writes happen after the lock
// is released.
func (d *Durability) Checkpoint(f *Federation) error {
	f.mu.Lock()
	engine := f.engine
	members := append([]*FederationMember{}, f.members...)
	state := f.state
	memo := f.memo
	f.mu.Unlock()
	if engine == nil || state == nil {
		return fmt.Errorf("durability: checkpoint: federation is not integrated")
	}

	ck := &store.Checkpoint{Derived: map[string]json.RawMessage{}}
	var capErr error
	engine.ReadLocked(func() {
		ck.LSN = d.wal.LastLSN()
		for _, m := range members {
			mc, err := store.SnapshotStore(m.Store)
			if err != nil {
				capErr = fmt.Errorf("durability: checkpoint %s: %w", m.Name, err)
				return
			}
			ck.Members = append(ck.Members, mc)
		}
		sections := []struct {
			name   string
			export func() ([]byte, error)
		}{
			{"memo", memo.Export},
			{"derivation", func() ([]byte, error) { return core.ExportDerivation(state.Res.Derivation) }},
			{"plans", engine.ExportPlans},
		}
		for _, s := range sections {
			b, err := s.export()
			if err != nil {
				capErr = fmt.Errorf("durability: checkpoint %s: %w", s.name, err)
				return
			}
			ck.Derived[s.name] = b
		}
	})
	if capErr != nil {
		return capErr
	}

	if err := store.WriteCheckpoint(filepath.Join(d.dir, checkpointFileName), ck); err != nil {
		return fmt.Errorf("durability: %w", err)
	}
	if err := d.wal.TruncateThrough(ck.LSN); err != nil {
		return fmt.Errorf("durability: %w", err)
	}
	return nil
}

// Close flushes and closes the log. It does NOT checkpoint; a graceful
// drain calls Checkpoint first (see Shutdown) so a clean shutdown
// restarts with zero replay, while a plain Close preserves the
// checkpoint + tail for the next boot to replay.
func (d *Durability) Close() error {
	return d.wal.Close()
}

// Shutdown is the graceful-drain exit: flush the log, write a final
// checkpoint (folding every acknowledged write, so the next boot
// replays nothing), and close. With a sealed or damaged log the
// checkpoint is skipped — the on-disk `checkpoint + tail` is the
// durable truth and the next boot replays it.
func (d *Durability) Shutdown(f *Federation) error {
	var firstErr error
	if err := d.wal.Sync(); err != nil {
		firstErr = err
	}
	if firstErr == nil && f != nil {
		if err := d.Checkpoint(f); err != nil {
			firstErr = err
		}
	}
	if err := d.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
