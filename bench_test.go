package interopdb

// One benchmark per reproduced artifact (DESIGN.md §6): the E-series
// regenerates every worked example and figure of the paper, the B-series
// measures the motivating performance claims on synthetic workloads, and
// the micro-benchmarks cover the substrates. Regenerate the numbers with:
//
//	go test -bench=. -benchmem .
//
// cmd/interopbench prints the same experiments with paper-vs-measured
// annotations (the source of EXPERIMENTS.md).

import (
	"testing"

	"interopdb/internal/experiments"
	"interopdb/internal/expr"
	"interopdb/internal/logic"
	"interopdb/internal/object"
	"interopdb/internal/tm"
	"interopdb/internal/view"
	"interopdb/internal/workload"

	"interopdb/internal/core"
	"interopdb/internal/fixture"
)

// benchE runs one E-series scenario per iteration, failing the benchmark
// if the reproduction check fails.
func benchE(b *testing.B, fn func() (experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatalf("reproduction failed:\n%s", r)
		}
	}
}

func BenchmarkE1_IntroPersonnel(b *testing.B)     { benchE(b, experiments.E1) }
func BenchmarkE2_Figure1Parse(b *testing.B)       { benchE(b, experiments.E2) }
func BenchmarkE3_DerivedConstraints(b *testing.B) { benchE(b, experiments.E3) }
func BenchmarkE4_Conformation(b *testing.B)       { benchE(b, experiments.E4) }
func BenchmarkE5_SubjectivityCheck(b *testing.B)  { benchE(b, experiments.E5) }
func BenchmarkE6_EqualityDerivation(b *testing.B) { benchE(b, experiments.E6) }
func BenchmarkE7_StrictSimCheck(b *testing.B)     { benchE(b, experiments.E7) }
func BenchmarkE8_ApproxSim(b *testing.B)          { benchE(b, experiments.E8) }
func BenchmarkE9_ClassKeyRules(b *testing.B)      { benchE(b, experiments.E9) }
func BenchmarkE10_GlobalLattice(b *testing.B)     { benchE(b, experiments.E10) }
func BenchmarkE11_FullPipeline(b *testing.B)      { benchE(b, experiments.E11) }

// B1: query optimisation with and without derived global constraints.
func BenchmarkB1_QueryOptimization(b *testing.B) {
	p := workload.DefaultParams()
	p.LocalBooks, p.RemoteBooks = 1000, 1000
	local, remote := workload.Bibliographic(p)
	res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(),
		tm.Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := view.Query{Class: "Proceedings", Where: expr.MustParse("publisher.name = 'IEEE' and ref? = false")}
	b.Run("withConstraints", func(b *testing.B) {
		e := view.New(res)
		for i := 0; i < b.N; i++ {
			if _, st, err := e.Run(q); err != nil || !st.PrunedEmpty {
				b.Fatalf("expected pruned run: %+v %v", st, err)
			}
		}
	})
	b.Run("baselineDropAll", func(b *testing.B) {
		e := view.New(res)
		e.UseConstraints = false
		for i := 0; i < b.N; i++ {
			if _, st, err := e.Run(q); err != nil || st.PrunedEmpty {
				b.Fatalf("baseline must scan: %+v %v", st, err)
			}
		}
	})
}

// B2: update validation catching doomed subtransactions early.
func BenchmarkB2_TxnValidation(b *testing.B) {
	p := workload.DefaultParams()
	p.LocalBooks, p.RemoteBooks = 500, 500
	local, remote := workload.Bibliographic(p)
	res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(),
		tm.Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		b.Fatal(err)
	}
	e := view.New(res)
	doomed := map[string]object.Value{
		"title": object.Str("x"), "isbn": object.Str("bench-tx"),
		"publisher": object.Ref{DB: "Bookseller", OID: 1}, // IEEE
		"shopprice": object.Real(30), "libprice": object.Real(25),
		"ref?": object.Bool(false), "rating": object.Int(8),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rejs := e.ValidateInsert("Proceedings", doomed); len(rejs) == 0 {
			b.Fatal("doomed insert not caught")
		}
	}
}

// B3: integration wall time across sizes and overlap fractions, run
// both fully sequential/uncached and with the default worker pool +
// memoized entailment. Compare the seq/par sub-benchmark pairs for the
// parallel speedup; the par runs report the cache hit rate.
func BenchmarkB3_IntegrationScale(b *testing.B) {
	for _, n := range []int{200, 1000, 2000} {
		for _, ov := range []float64{0.1, 0.9} {
			p := workload.DefaultParams()
			p.LocalBooks, p.RemoteBooks = n, n
			p.Overlap = ov
			name := "books=" + itoa(n) + "/overlap=" + ftoa(ov)
			for _, mode := range []struct {
				tag  string
				opts core.Options
			}{
				{"seq", core.Options{Parallelism: 1, NoMemo: true}},
				{"par", core.Options{}},
			} {
				b.Run(name+"/"+mode.tag, func(b *testing.B) {
					var hitRate float64
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						local, remote := workload.Bibliographic(p)
						b.StartTimer()
						res, err := core.IntegrateOptions(tm.Figure1Library(), tm.Figure1Bookseller(),
							tm.Figure1Integration(), local, remote, 1, mode.opts)
						if err != nil {
							b.Fatal(err)
						}
						hitRate = res.Derivation.CacheStats().HitRate()
					}
					b.ReportMetric(100*hitRate, "cache-hit-%")
				})
			}
		}
	}
}

// B4: global-constraint derivation cost against constraint count
// (experiments.B4 itself times sequential and parallel runs and checks
// their reports agree).
func BenchmarkB4_DerivationCost(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		b.Run("constraints="+itoa(2*k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.B4([]int{k}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Full pipeline over the scaled Figure 1 fixture (fixture.Options.Scale
// grows extents and merged pairs linearly), sequential vs parallel.
func BenchmarkFixtureScalePipeline(b *testing.B) {
	for _, mode := range []struct {
		tag  string
		opts core.Options
	}{
		{"seq", core.Options{Parallelism: 1, NoMemo: true}},
		{"par", core.Options{}},
	} {
		b.Run("scale=50/"+mode.tag, func(b *testing.B) {
			local, remote := fixture.Figure1Stores(fixture.Options{Scale: 50})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.IntegrateOptions(tm.Figure1Library(), tm.Figure1Bookseller(),
					tm.Figure1Integration(), local, remote, 1, mode.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Memoized vs uncached entailment on the repeated-query stream the
// sibling-class integration pattern produces.
func BenchmarkMemoizedEntailment(b *testing.B) {
	prem := []Expr{
		expr.MustParse("ref? = true"),
		expr.MustParse("ref? = true implies rating >= 7"),
	}
	conc := expr.MustParse("rating >= 4")
	types := map[string]object.Type{"rating": object.RangeType{Lo: 1, Hi: 10}}
	b.Run("uncached", func(b *testing.B) {
		c := &logic.Checker{Types: types, NoMemo: true}
		for i := 0; i < b.N; i++ {
			if c.Entails(prem, conc) != logic.Yes {
				b.Fatal("entailment failed")
			}
		}
	})
	b.Run("memoized", func(b *testing.B) {
		c := &logic.Checker{Types: types}
		for i := 0; i < b.N; i++ {
			if c.Entails(prem, conc) != logic.Yes {
				b.Fatal("entailment failed")
			}
		}
		b.ReportMetric(100*c.CacheStats().HitRate(), "cache-hit-%")
	})
}

// --- serving fast path: extent indexes + compiled predicates --------------

// serveEngine builds a query engine over the scaled Figure 1 fixture.
func serveEngine(b *testing.B, scale int) *view.Engine {
	b.Helper()
	local, remote := fixture.Figure1Stores(fixture.Options{Scale: scale})
	res, err := core.Integrate(tm.Figure1Library(), tm.Figure1Bookseller(),
		tm.Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		b.Fatal(err)
	}
	return view.New(res)
}

// benchServe times one query with the indexed+compiled fast path against
// the pure interpreter scan on the same engine.
func benchServe(b *testing.B, q view.Query, wantRows int) {
	e := serveEngine(b, 50)
	for _, mode := range []struct {
		tag string
		idx bool
	}{{"indexed", true}, {"scan", false}} {
		b.Run(mode.tag, func(b *testing.B) {
			b.ReportAllocs()
			e.UseIndexes = mode.idx
			// Warm the lazily-built indexes and the entailment memo
			// outside the timed region.
			if _, _, err := e.Run(q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, _, err := e.Run(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != wantRows {
					b.Fatalf("rows = %d, want %d", len(rows), wantRows)
				}
			}
		})
	}
}

// BenchmarkServeEquality: selective equality query at Scale 50 — the
// hash index answers it with one probe.
func BenchmarkServeEquality(b *testing.B) {
	benchServe(b, view.Query{Class: "Item", Where: expr.MustParse("isbn = 'vldb96-c25'")}, 1)
}

// BenchmarkServeRange: selective range query at Scale 50 — the ordered
// index narrows the candidates, the compiled residual filters them.
func BenchmarkServeRange(b *testing.B) {
	benchServe(b, view.Query{Class: "Proceedings",
		Where: expr.MustParse("rating >= 7 and shopprice < 75")}, 1)
}

// BenchmarkServeParallel: the lock-free claim under load — every
// GOMAXPROCS worker serves the same plan-cached queries from the
// published snapshot concurrently. Run never takes the engine lock, so
// on a multi-core host ns/op drops with the worker count; on the
// single-core CI runner this is a correctness smoke (the workers must
// keep agreeing on the answer).
func BenchmarkServeParallel(b *testing.B) {
	e := serveEngine(b, 50)
	q := view.Query{Class: "Proceedings", Where: expr.MustParse("rating >= 7 and shopprice < 75")}
	rows, _, err := e.Run(q) // warm the plan cache
	if err != nil {
		b.Fatal(err)
	}
	want := len(rows)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rows, _, err := e.Run(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != want {
				b.Fatalf("rows = %d, want %d", len(rows), want)
			}
		}
	})
}

// BenchmarkServeValidateInsert: duplicate-key validation across extent
// sizes — the indexed probe is O(1) while the reference path copies and
// scans the extent per insert.
func BenchmarkServeValidateInsert(b *testing.B) {
	for _, scale := range []int{5, 50} {
		e := serveEngine(b, scale)
		doomed := map[string]object.Value{
			"title": object.Str("dup"), "isbn": object.Str("vldb96"),
			"shopprice": object.Real(10), "libprice": object.Real(5),
		}
		for _, mode := range []struct {
			tag string
			idx bool
		}{{"indexed", true}, {"scan", false}} {
			b.Run("scale="+itoa(scale)+"/"+mode.tag, func(b *testing.B) {
				b.ReportAllocs()
				e.UseIndexes = mode.idx
				if rejs := e.ValidateInsert("Item", doomed); len(rejs) == 0 {
					b.Fatal("duplicate key not caught")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if rejs := e.ValidateInsert("Item", doomed); len(rejs) == 0 {
						b.Fatal("duplicate key not caught")
					}
				}
			})
		}
	}
}

// B5: baseline comparison (class-based precision, union-all rejections).
func BenchmarkB5_BaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.B5()
		if err != nil {
			b.Fatal(err)
		}
		if r.ClassBasedPrecision >= 1 {
			b.Fatal("class-based baseline should over-assign")
		}
		if r.UnionAllFalseRej == 0 {
			b.Fatal("union-all should falsely reject merged states")
		}
	}
}

// B6: conflict detection and repair suggestion under injected weakenings.
func BenchmarkB6_ConflictRepair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.B6()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Conflicts > 0 && r.Suggestions == 0 {
				b.Fatal("conflicts without suggestions")
			}
		}
	}
}

// --- substrate micro-benchmarks -------------------------------------------

func BenchmarkParserFigure1Constraint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Parse("publisher.name = 'IEEE' implies ref? = true"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReasonerEntailment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Reasoner() != logic.Yes {
			b.Fatal("entailment failed")
		}
	}
}

func BenchmarkStoreInsert(b *testing.B) {
	spec := tm.Personnel1()
	tariffs := []object.Value{object.Int(10), object.Int(20)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%10000 == 0 {
			b.StopTimer()
			// Fresh store to bound the key-check extension size.
			s := NewStore(spec)
			b.StartTimer()
			benchStore = s
		}
		_, err := benchStore.Insert("Employee", map[string]object.Value{
			"ssn":        object.Str("s" + itoa(i)),
			"salary":     object.Real(1000),
			"trav_reimb": tariffs[i%2],
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

var benchStore *Store

func BenchmarkEntityResolutionMerge(b *testing.B) {
	p := workload.DefaultParams()
	p.LocalBooks, p.RemoteBooks = 1000, 1000
	local, remote := workload.Bibliographic(p)
	spec := core.MustCompile(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration())
	conf, err := core.Conform(spec, local, remote)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Merge(conf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConformPhase(b *testing.B) {
	local, remote := fixture.Figure1Stores(fixture.Options{})
	spec := core.MustCompile(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Conform(spec, local, remote); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	switch f {
	case 0.1:
		return "0.1"
	case 0.5:
		return "0.5"
	case 0.9:
		return "0.9"
	default:
		return "x"
	}
}

// BenchmarkB8_MutationThroughput runs the mutation-lifecycle experiment
// once per iteration (batched ShipTx vs singleton inserts, delta vs full
// validation) at the base fixture scale.
func BenchmarkB8_MutationThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.B8([]int{1}, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkB10_FederationAttach runs the federation membership-change
// experiment (incremental attach vs full re-integration) at scale 1,
// cross-checking the incremental and from-scratch states each
// iteration; CI smokes it at 1x.
func BenchmarkB10_FederationAttach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.B10([]int{1}); err != nil {
			b.Fatal(err)
		}
	}
}
