package interopdb

import (
	"testing"
)

// TestFederationAttachSolverScoped pins the incremental-derivation
// claim: attaching a third member performs only the NEW PAIR's solver
// work (conformation + integratePair + Sim checking against the classes
// its integration spec touches), strictly less than re-integrating the
// whole federation, and a Detach performs ZERO solver computations —
// retraction is pure provenance bookkeeping.
func TestFederationAttachSolverScoped(t *testing.T) {
	scale := 10
	fed := buildFigure1Federation(t, scale, false)
	pair1Cost := fed.LastAttachReasoning().Misses
	if pair1Cost <= 0 {
		t.Fatal("founding pair performed no reasoning — suspicious")
	}

	if err := fed.Attach(Figure1UnivArchive(), ArchiveStore(FixtureOptions{Scale: scale}), Figure1ArchiveIntegration()); err != nil {
		t.Fatal(err)
	}
	attachCost := fed.LastAttachReasoning().Misses
	if attachCost <= 0 {
		t.Fatalf("attach performed no solver work at all (misses %d) — suspicious", attachCost)
	}

	// A full re-integration repeats every pair's derivation; the
	// incremental attach pays only the new pair's.
	fullCost := fed.TotalReasoning().Misses
	if fullCost != pair1Cost+attachCost {
		t.Fatalf("total reasoning %d != pair1 %d + attach %d", fullCost, pair1Cost, attachCost)
	}
	if attachCost >= fullCost {
		t.Fatalf("incremental attach solver cost %d not below full re-integration cost %d", attachCost, fullCost)
	}

	// Detach retracts by provenance: no solver computation at all —
	// neither on the shared memo nor in the federation's totals.
	preMemo := fed.Result().Derivation.CacheStats()
	preTotal := fed.TotalReasoning()
	if err := fed.Detach("UnivArchive"); err != nil {
		t.Fatal(err)
	}
	postMemo := fed.Result().Derivation.CacheStats()
	if d := postMemo.Misses - preMemo.Misses; d != 0 {
		t.Fatalf("detach performed %d solver computations, want 0", d)
	}
	if got := fed.TotalReasoning(); got != preTotal {
		t.Fatalf("detach changed the reasoning totals: %v -> %v", preTotal, got)
	}
}

// TestFederationPlanSurvival pins the scoped-republication contract on
// the serving engine: a membership change publishes exactly ONE
// snapshot, classes untouched by the new member's integration spec keep
// their cached plans (the repeated query is a plan-cache hit with zero
// solver queries and zero compilations), while classes the attach
// touched are replanned.
func TestFederationPlanSurvival(t *testing.T) {
	fed := buildFigure1Federation(t, 10, false)
	e := fed.Engine()

	untouched := Query{Class: "Publisher", Where: MustParseExpr("location = 'Berlin'")}
	untouched2 := Query{Class: "Monograph", Where: MustParseExpr("shopprice < 95")}
	touched := Query{Class: "Proceedings", Where: MustParseExpr("rating >= 7")}
	warm := func(q Query) {
		t.Helper()
		if _, _, err := e.Run(q); err != nil {
			t.Fatal(err)
		}
	}
	warm(untouched)
	warm(untouched2)
	warm(touched)

	pre := e.CacheStats()
	if err := fed.Attach(Figure1UnivArchive(), ArchiveStore(FixtureOptions{Scale: 10}), Figure1ArchiveIntegration()); err != nil {
		t.Fatal(err)
	}
	post := e.CacheStats()
	if d := post.Publishes - pre.Publishes; d != 1 {
		t.Fatalf("attach published %d snapshots, want exactly 1", d)
	}

	// Untouched classes: plans survived — hits, no misses, no solver.
	runStats := func(q Query) QueryStats {
		t.Helper()
		_, s, err := e.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s0 := e.CacheStats()
	st := runStats(untouched)
	if !st.PlanCached {
		t.Fatal("Publisher plan did not survive the attach")
	}
	st = runStats(untouched2)
	if !st.PlanCached {
		t.Fatal("Monograph plan did not survive the attach")
	}
	s1 := e.CacheStats()
	if s1.PlanHits-s0.PlanHits != 2 || s1.PlanMisses != s0.PlanMisses {
		t.Fatalf("untouched-class queries: hits %d misses %d, want 2 hits 0 misses",
			s1.PlanHits-s0.PlanHits, s1.PlanMisses-s0.PlanMisses)
	}
	if s1.SolverQueries != s0.SolverQueries || s1.Compiles != s0.Compiles {
		t.Fatal("untouched-class queries performed solver or compile work")
	}

	// Touched class: the attach changed its serving state (the merged
	// VLDB objects moved), so its plan was dropped and rebuilt.
	st = runStats(touched)
	if st.PlanCached {
		t.Fatal("Proceedings plan survived the attach despite its extent changing")
	}

	// Same contract across Detach.
	warm(touched)
	pre = e.CacheStats()
	if err := fed.Detach("UnivArchive"); err != nil {
		t.Fatal(err)
	}
	post = e.CacheStats()
	if d := post.Publishes - pre.Publishes; d != 1 {
		t.Fatalf("detach published %d snapshots, want exactly 1", d)
	}
	if st = runStats(untouched); !st.PlanCached {
		t.Fatal("Publisher plan did not survive the detach")
	}
	if st = runStats(touched); st.PlanCached {
		t.Fatal("Proceedings plan survived the detach despite its extent changing")
	}
}
