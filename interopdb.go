// Package interopdb is a constraint-aware database interoperation engine:
// a from-scratch Go reproduction of
//
//	M.W.W. Vermeer and P.M.G. Apers,
//	"The Role of Integrity Constraints in Database Interoperation",
//	Proceedings of the 22nd VLDB Conference, 1996.
//
// The engine integrates autonomous component databases instance-by-
// instance (objects, not classes, are the unit of integration) and puts
// the component databases' integrity constraints to the paper's two uses:
//
//  1. Derivation — a set of constraints valid on the integrated view is
//     derived from the locally enforced ones, enabling global query
//     optimisation and update-transaction validation.
//  2. Validation — the local constraints act as a semantic check on the
//     integration specification itself; conflicts are detected and
//     concrete repairs (re-marking constraints, strengthening comparison
//     rules, adding approximate-similarity fallbacks, changing decision
//     functions) are suggested.
//
// # Quick start
//
//	lib := interopdb.MustParseDatabase(interopdb.FigureOneCSLibrary)
//	bs := interopdb.MustParseDatabase(interopdb.FigureOneBookseller)
//	is := interopdb.MustParseIntegration(interopdb.FigureOneIntegration)
//	local, remote := interopdb.Figure1Stores(interopdb.FixtureOptions{})
//	res, err := interopdb.Integrate(lib, bs, is, local, remote, 1)
//	if err != nil { ... }
//	fmt.Println(res.Report())
//
// # Federation
//
// Membership is dynamic: NewFederation attaches component databases at
// runtime (each integrated pairwise against an existing member and
// grafted incrementally onto the live combined view) and detaches them
// again, retracting their constraints by provenance — see Federation
// and DESIGN.md §9.
//
// See the examples/ directory for complete programs, DESIGN.md for the
// architecture, and PAPERMAP.md for a section-by-section map from the
// paper to the code.
package interopdb

import (
	"interopdb/internal/baseline"
	"interopdb/internal/core"
	"interopdb/internal/expr"
	"interopdb/internal/fixture"
	"interopdb/internal/logic"
	"interopdb/internal/object"
	"interopdb/internal/schema"
	"interopdb/internal/store"
	"interopdb/internal/tm"
	"interopdb/internal/view"
	"interopdb/internal/workload"
)

// ---------------------------------------------------------------------------
// Specification language (internal/tm)

// DatabaseSpec is a parsed TM-style database specification.
type DatabaseSpec = tm.DatabaseSpec

// IntegrationSpec is a parsed integration specification (comparison
// rules, property equivalences, constraint marks).
type IntegrationSpec = tm.IntegrationSpec

// ParseDatabase parses and validates a TM-style database specification.
func ParseDatabase(src string) (*DatabaseSpec, error) { return tm.ParseDatabase(src) }

// MustParseDatabase parses a database specification and panics on error.
func MustParseDatabase(src string) *DatabaseSpec { return tm.MustParseDatabase(src) }

// ParseIntegration parses an integration specification.
func ParseIntegration(src string) (*IntegrationSpec, error) { return tm.ParseIntegration(src) }

// MustParseIntegration parses an integration specification, panicking on
// error.
func MustParseIntegration(src string) *IntegrationSpec { return tm.MustParseIntegration(src) }

// The paper's running examples, embedded as canonical sources.
const (
	// FigureOneCSLibrary is the CSLibrary database of Figure 1.
	FigureOneCSLibrary = tm.FigureOneCSLibrary
	// FigureOneBookseller is the Bookseller database of Figure 1.
	FigureOneBookseller = tm.FigureOneBookseller
	// FigureOneIntegration is the §2.2 integration specification.
	FigureOneIntegration = tm.FigureOneIntegration
	// FigureOneIntegrationRepaired is the conflict-free variant with the
	// engine's suggested repairs applied (r5 as approximate similarity).
	FigureOneIntegrationRepaired = tm.FigureOneIntegrationRepaired
	// FigureOneUnivArchive is the third bibliographic source used by the
	// N-way federation scenarios.
	FigureOneUnivArchive = tm.FigureOneUnivArchive
	// FigureOneArchiveIntegration pairs UnivArchive with CSLibrary.
	FigureOneArchiveIntegration = tm.FigureOneArchiveIntegration
	// IntroPersonnelDB1 is department database DB1 of the introduction.
	IntroPersonnelDB1 = tm.IntroPersonnelDB1
	// IntroPersonnelDB2 is department database DB2 of the introduction.
	IntroPersonnelDB2 = tm.IntroPersonnelDB2
	// IntroPersonnelIntegration integrates the two departments.
	IntroPersonnelIntegration = tm.IntroPersonnelIntegration
)

// ---------------------------------------------------------------------------
// Component database engine (internal/store)

// Store is an in-memory component database enforcing its schema's
// object, class and database constraints.
type Store = store.Store

// StoredObject is an object held by a Store.
type StoredObject = store.Obj

// StoreBackend is the serving-time surface of a member database:
// transactional writes, point reads and liveness probes. *Store
// satisfies it; the federation registry holds members through it so a
// member can be served via a wrapper (e.g. fault injection).
type StoreBackend = store.Backend

// StoreTxn is a member-local deferred-validation transaction.
type StoreTxn = store.Txn

// ErrStoreUnavailable marks transient member failures worth retrying
// (the routed shipping path retries them with backoff automatically).
var ErrStoreUnavailable = store.ErrUnavailable

// Violation describes one constraint violation found by a Store.
type Violation = store.Violation

// NewStore creates a component database over a parsed specification.
func NewStore(spec *DatabaseSpec) *Store { return store.New(spec.Schema, spec.Consts) }

// ---------------------------------------------------------------------------
// Values (internal/object)

// Value is a database value (Int, Real, Str, Bool, Set, Ref, Null).
type Value = object.Value

// Convenience value constructors and types.
type (
	// Int is a 64-bit integer value.
	Int = object.Int
	// Real is a double-precision value.
	Real = object.Real
	// Str is a string value.
	Str = object.Str
	// Bool is a boolean value.
	Bool = object.Bool
	// Ref is an object reference.
	Ref = object.Ref
	// Null is the absent value.
	Null = object.Null
	// Set is a finite set value.
	Set = object.Set
	// OID identifies an object within a component database.
	OID = object.OID
)

// NewSet builds a set value from elements.
func NewSet(elems ...Value) Set { return object.NewSet(elems...) }

// ---------------------------------------------------------------------------
// Integration pipeline (internal/core)

// Result bundles the artifacts of a full integration run (Figure 3's
// stages): compiled spec, conformed world, merged global view, and the
// derived constraints with conflicts.
type Result = core.Result

// Spec is a compiled integration specification with its subjectivity
// assignment.
type Spec = core.Spec

// Conformed is the output of the conformation phase (§4).
type Conformed = core.Conformed

// GlobalView is the merged integrated view (§2.3).
type GlobalView = core.GlobalView

// GlobalObject is one object of the integrated view.
type GlobalObject = core.GObj

// Derivation carries the global constraint set and detected conflicts
// (§3, §5.2).
type Derivation = core.Derivation

// GlobalConstraint is a constraint on the integrated view.
type GlobalConstraint = core.GlobalConstraint

// Conflict is a detected inconsistency between local constraints and the
// integration specification.
type Conflict = core.Conflict

// Suggestion is a concrete repair proposal for a conflict.
type Suggestion = core.Suggestion

// SpecIssue is a non-fatal specification finding (consistency-law
// violations and downgrades, §5.1.3).
type SpecIssue = core.SpecIssue

// Compile validates an integration specification against its component
// databases and computes the subjectivity assignment (§5.1).
func Compile(local, remote *DatabaseSpec, is *IntegrationSpec) (*Spec, error) {
	return core.Compile(local, remote, is)
}

// Integrate runs the full pipeline: compile → conform → merge → derive.
// seed drives the non-determinism of conflict-ignoring decision functions.
// It executes with default options: a GOMAXPROCS-sized worker pool over
// the reasoning-heavy stages and memoized entailment. The result is
// deterministic regardless of parallelism.
func Integrate(local, remote *DatabaseSpec, is *IntegrationSpec, ls, rs *Store, seed int64) (*Result, error) {
	return core.Integrate(local, remote, is, ls, rs, seed)
}

// PipelineOptions configures pipeline execution: Parallelism bounds the
// worker pool (0 = GOMAXPROCS, 1 = sequential), NoMemo disables the
// reasoner's entailment cache. Output is byte-identical for every
// setting; the knobs trade wall time only.
type PipelineOptions = core.Options

// IntegrateOptions runs the full pipeline under explicit execution
// options.
func IntegrateOptions(local, remote *DatabaseSpec, is *IntegrationSpec, ls, rs *Store, seed int64, opts PipelineOptions) (*Result, error) {
	return core.IntegrateOptions(local, remote, is, ls, rs, seed, opts)
}

// ReasonerCacheStats reports entailment-cache effectiveness; retrieve a
// run's stats with res.Derivation.CacheStats().
type ReasonerCacheStats = logic.CacheStats

// Conflict kinds (§3, §5.2.1).
const (
	ConflictRuleVsConstraint = core.ConflictRuleVsConstraint
	ConflictExplicit         = core.ConflictExplicit
	ConflictImplicit         = core.ConflictImplicit
	ConflictStrictSim        = core.ConflictStrictSim
)

// Repair suggestion kinds (§5.2.1's options plus the approximate-
// similarity fallback).
const (
	SuggestMarkSubjective = core.SuggestMarkSubjective
	SuggestStrengthenRule = core.SuggestStrengthenRule
	SuggestAddApproxRule  = core.SuggestAddApproxRule
	SuggestChangeDecision = core.SuggestChangeDecision
)

// Constraint scopes on the integrated view.
const (
	ScopeAll        = core.ScopeAll
	ScopeMerged     = core.ScopeMerged
	ScopeLocalOnly  = core.ScopeLocalOnly
	ScopeRemoteOnly = core.ScopeRemoteOnly
)

// ---------------------------------------------------------------------------
// Constraint language and reasoning (internal/expr, internal/logic)

// Expr is a parsed constraint formula.
type Expr = expr.Node

// ParseExpr parses a constraint formula.
func ParseExpr(src string) (Expr, error) { return expr.Parse(src) }

// MustParseExpr parses a formula and panics on error.
func MustParseExpr(src string) Expr { return expr.MustParse(src) }

// Checker answers satisfiability and entailment queries over the
// decidable constraint fragment.
type Checker = logic.Checker

// Verdict is the tri-state answer of a reasoning query.
type Verdict = logic.Verdict

// Reasoning verdicts.
const (
	Yes     = logic.Yes
	No      = logic.No
	Unknown = logic.Unknown
)

// ---------------------------------------------------------------------------
// Integrated-view query engine (internal/view)

// QueryEngine runs queries over an integration result, using the derived
// global constraints to prune provably-empty subqueries, and validates
// updates before they are shipped to the component databases.
type QueryEngine = view.Engine

// Query is a select-from-where over a global class.
type Query = view.Query

// QueryStats reports what the optimiser did.
type QueryStats = view.Stats

// Row is one query result.
type Row = view.Row

// NewQueryEngine builds a query engine over an integration result.
func NewQueryEngine(res *Result) *QueryEngine { return view.New(res) }

// Rejection explains why a mutation was rejected before shipping; it
// carries the violated global constraint and minimal-change repair
// proposals. It implements error and matches ErrRejected via errors.Is.
type Rejection = view.Rejection

// Rejections is a batch of constraint rejections as one error value:
// errors.Is matches ErrRejected, errors.As recovers the full slice with
// every repair proposal intact — the form internal/server returns over
// the wire.
type Rejections = view.Rejections

// Typed failure sentinels for the serving API (errors.Is). The engine's
// context-aware entrypoints — RunContext, Validate, Ship and the
// *Context variants of the legacy names — wrap their failures so
// transport layers map them to responses without string matching.
var (
	// ErrRejected marks mutations refused by the derived global
	// constraints.
	ErrRejected = view.ErrRejected
	// ErrUnknownClass marks references to global classes the integrated
	// view does not serve.
	ErrUnknownClass = view.ErrUnknownClass
	// ErrUnknownObject marks update/delete targets that do not exist in
	// the integrated view.
	ErrUnknownObject = view.ErrUnknownObject
	// ErrPartialCommit marks a cross-member batch that failed after at
	// least one autonomous member database had committed. The batch must
	// not be retried wholesale; the committed prefix is journaled and
	// QueryEngine.Reconcile completes or compensates it when the failed
	// member heals (errors.As recovers *PartialCommitError).
	ErrPartialCommit = view.ErrPartialCommit
	// ErrMemberUnavailable marks writes refused before any member
	// committed, because a target member is down or quarantined by its
	// circuit breaker. Retry wholesale after the hinted backoff
	// (errors.As recovers *MemberUnavailableError).
	ErrMemberUnavailable = view.ErrMemberUnavailable
)

// MemberUnavailableError carries the quarantined member and the
// Retry-After hint behind ErrMemberUnavailable.
type MemberUnavailableError = view.MemberUnavailableError

// PartialCommitError carries the committed/pending member split and the
// journal position behind ErrPartialCommit.
type PartialCommitError = view.PartialCommitError

// RetryPolicy bounds transient member-commit retries on the routed
// shipping path (QueryEngine.Retry).
type RetryPolicy = view.RetryPolicy

// HealthReport is the engine's fault-handling state: breaker positions,
// pending commit journal, last reconcile pass (QueryEngine.Health).
type HealthReport = view.HealthReport

// MemberHealth is one member's circuit-breaker entry in a HealthReport.
type MemberHealth = view.MemberHealth

// ReconcileStats reports one QueryEngine.Reconcile pass.
type ReconcileStats = view.ReconcileStats

// FaultStats snapshots the engine's fault-handling counters.
type FaultStats = view.FaultStats

// Repair is one verified minimal-change proposal attached to a
// Rejection: the smallest attribute adjustment, or a tuple deletion for
// key conflicts.
type Repair = view.Repair

// RepairKind discriminates Repair proposals.
type RepairKind = view.RepairKind

// Repair proposal kinds.
const (
	RepairSetAttr     = view.RepairSetAttr
	RepairDeleteTuple = view.RepairDeleteTuple
)

// Mutation is one staged operation of a batch transaction against the
// integrated view, validated by Engine.Validate and shipped by
// Engine.Ship (the ValidateTx/ShipTx/ShipTxRouted names remain as
// wrappers).
type Mutation = view.Mutation

// MutationKind discriminates Mutation operations.
type MutationKind = view.MutationKind

// Mutation kinds.
const (
	MutInsert = view.MutInsert
	MutUpdate = view.MutUpdate
	MutDelete = view.MutDelete
)

// ValidateStats counts the constraint×row work a validation performed,
// making the delta restriction's saving over a full CheckAll observable.
type ValidateStats = view.ValidateStats

// ParseQuery parses the textual query form, e.g.
// "select title, rating from Proceedings where rating >= 7".
func ParseQuery(src string) (Query, error) { return view.ParseQuery(src) }

// ---------------------------------------------------------------------------
// Fixtures, workloads, baselines

// FixtureOptions tweak the Figure 1 instance population.
type FixtureOptions = fixture.Options

// Figure1Stores populates the paper's Figure 1 databases with the worked
// examples' instances.
func Figure1Stores(opt FixtureOptions) (local, remote *Store) { return fixture.Figure1Stores(opt) }

// PersonnelStores populates the introduction's department databases.
func PersonnelStores() (db1, db2 *Store) { return fixture.PersonnelStores() }

// ArchiveStore populates the UnivArchive database — the third member of
// the federation scenarios.
func ArchiveStore(opt FixtureOptions) *Store { return fixture.ArchiveStore(opt) }

// Figure1Library returns the parsed CSLibrary specification.
func Figure1Library() *DatabaseSpec { return tm.Figure1Library() }

// Figure1UnivArchive returns the parsed UnivArchive specification (the
// third bibliographic source of the federation scenarios).
func Figure1UnivArchive() *DatabaseSpec { return tm.Figure1UnivArchive() }

// Figure1ArchiveIntegration returns the parsed CSLibrary/UnivArchive
// integration specification.
func Figure1ArchiveIntegration() *IntegrationSpec { return tm.Figure1ArchiveIntegration() }

// Figure1Bookseller returns the parsed Bookseller specification.
func Figure1Bookseller() *DatabaseSpec { return tm.Figure1Bookseller() }

// Figure1Integration returns the parsed §2.2 integration specification.
func Figure1Integration() *IntegrationSpec { return tm.Figure1Integration() }

// Figure1IntegrationRepaired returns the conflict-free variant of the
// §2.2 specification (the engine's suggested repairs applied).
func Figure1IntegrationRepaired() *IntegrationSpec { return tm.Figure1IntegrationRepaired() }

// Personnel1 returns the introduction's DB1 specification.
func Personnel1() *DatabaseSpec { return tm.Personnel1() }

// Personnel2 returns the introduction's DB2 specification.
func Personnel2() *DatabaseSpec { return tm.Personnel2() }

// PersonnelIntegration returns the introduction's integration spec.
func PersonnelIntegration() *IntegrationSpec { return tm.PersonnelIntegration() }

// WorkloadParams controls the synthetic bibliographic generator.
type WorkloadParams = workload.Params

// DefaultWorkloadParams returns a mid-sized bibliographic workload.
func DefaultWorkloadParams() WorkloadParams { return workload.DefaultParams() }

// BibliographicWorkload generates seeded synthetic component databases
// over the Figure 1 schemas.
func BibliographicWorkload(p WorkloadParams) (local, remote *Store) {
	return workload.Bibliographic(p)
}

// PersonnelWorkloadParams controls the personnel generator.
type PersonnelWorkloadParams = workload.PersonnelParams

// PersonnelWorkload generates the introduction's departments at scale.
func PersonnelWorkload(p PersonnelWorkloadParams) (db1, db2 *Store) {
	return workload.Personnel(p)
}

// ClassCorrespondence asserts a [BLN86]-style class-level equivalence
// for the class-based baseline.
type ClassCorrespondence = baseline.ClassCorrespondence

// ClassBasedClassification classifies remote objects wholesale through
// class correspondences (the traditional baseline).
func ClassBasedClassification(res *Result, corrs []ClassCorrespondence) map[Ref][]string {
	return baseline.ClassBasedClassification(res, corrs)
}

// CompareClassification measures a class-based classification against the
// instance-based ground truth.
func CompareClassification(res *Result, cb map[Ref][]string, localClasses []string) baseline.ClassificationQuality {
	return baseline.CompareClassification(res, cb, localClasses)
}

// UnionAllFalseRejects counts valid integrated states the naive
// all-constraints-objective baseline would reject.
func UnionAllFalseRejects(res *Result, class string) (falseRejects, total int) {
	return baseline.FalseRejects(res, class)
}

// SchemaDatabase is a structural schema (classes, attributes, isa).
type SchemaDatabase = schema.Database
