// Command interopd serves federations over HTTP/JSON: multi-tenant
// hosting of integrated views with constraint-optimised queries,
// validated transactions, runtime attach/detach, admission control,
// /metrics and pprof.
//
// Quick start:
//
//	interopd -addr :7070
//	curl -s localhost:7070/v1/figure1/query -d '{"q":"select title from Item where shopprice < 50"}'
//	curl -s localhost:7070/v1/figure1/tx -d '{"ops":[{"kind":"insert","class":"Item","attrs":{
//	    "title":{"t":"str","v":"New"},"isbn":{"t":"str","v":"x-1"},
//	    "shopprice":{"t":"real","v":30},"libprice":{"t":"real","v":25}}}]}'
//	curl -s localhost:7070/metrics
//
// With -data-dir the server is durable: each tenant keeps a
// write-ahead log and checkpoints under <data-dir>/<tenant>, every
// acknowledged transaction is fsynced before the response, and a
// restart with the same flags recovers each tenant — member extents,
// solver memo, derived constraints, and query plans — so the first
// post-restart query is already a plan-cache hit:
//
//	interopd -addr :7070 -data-dir /var/lib/interopd
//	curl -s localhost:7070/v1/figure1/health | jq .durability
//
// By default the server boots hosting two tenants — figure1 (the
// paper's bibliographic pair) and personnel (the introduction's
// departments) — so it is immediately queryable; -tenant trims or
// extends the preload list. SIGINT/SIGTERM drain gracefully: new
// requests are refused with 503 while in-flight queries and enqueued
// transaction batches finish; a durable server then writes each
// tenant's final checkpoint so the next boot replays nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"interopdb/internal/server"
	"interopdb/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	wireAddr := flag.String("wire-addr", "",
		"binary transport listen address (e.g. :7071); empty disables the framed protocol listener")
	maxInFlight := flag.Int("max-inflight", server.DefaultMaxInFlight, "admitted concurrent /v1 requests (excess get 429)")
	tenants := flag.String("tenant", "figure1=figure1,personnel=personnel",
		"comma-separated name=fixture preload list (fixtures: figure1, personnel); empty boots no tenants")
	quiet := flag.Bool("quiet", false, "suppress request logging")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
	reconcileInterval := flag.Duration("reconcile-interval", server.DefaultReconcileInterval,
		"background partial-commit reconcile cadence (0 uses the default, negative disables)")
	dataDir := flag.String("data-dir", "",
		"durable data directory; each tenant gets <data-dir>/<name> with a write-ahead log and checkpoints, and restarts recover it (empty serves ephemerally)")
	checkpointInterval := flag.Duration("checkpoint-interval", server.DefaultCheckpointInterval,
		"durable-tenant checkpoint cadence bounding crash-recovery replay (0 uses the default, negative leaves only the drain-time checkpoint)")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := server.New(server.Config{
		MaxInFlight:        *maxInFlight,
		Logf:               logf,
		ReconcileInterval:  *reconcileInterval,
		DataDir:            *dataDir,
		CheckpointInterval: *checkpointInterval,
	})

	if *tenants != "" {
		for _, spec := range strings.Split(*tenants, ",") {
			name, fixture, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "interopd: bad -tenant entry %q (want name=fixture)\n", spec)
				os.Exit(2)
			}
			if err := srv.AddTenant(name, fixture); err != nil {
				fmt.Fprintf(os.Stderr, "interopd: preloading tenant %s: %v\n", name, err)
				os.Exit(1)
			}
			switch info, durable := srv.TenantRecovery(name); {
			case durable && !info.ColdStart:
				logf("tenant %s recovered (fixture %s): %d object(s) restored, %d commit(s) replayed, %d memo entr(ies), %d plan(s) warmed",
					name, fixture, info.Replay.RestoredObjects, info.Replay.ReplayedCommits, info.MemoEntries, info.PlansWarmed)
			case durable:
				logf("tenant %s ready (fixture %s, durable cold start)", name, fixture)
			default:
				logf("tenant %s ready (fixture %s)", name, fixture)
			}
		}
	}

	// ReadHeaderTimeout bounds slowloris header dribble; IdleTimeout
	// reclaims keep-alive connections parked between requests. (The
	// binary listener enforces the analogous per-frame deadlines itself.)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	var ws *wire.Server
	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "interopd: wire listen: %v\n", err)
			os.Exit(1)
		}
		ws = srv.WireServer()
		go func() { errc <- ws.Serve(ln) }()
		logf("binary transport listening on %s", ln.Addr())
	}
	logf("interopd listening on %s (%d tenants, max %d in flight)", *addr, len(srv.Tenants()), *maxInFlight)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "interopd: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		logf("received %v, draining", s)
	}

	// Drain order matters: refuse new work, let http.Server wait out
	// in-flight handlers (tenant batchers must still be running for
	// enqueued transactions to ship), then stop the batchers.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "interopd: shutdown: %v\n", err)
	}
	if ws != nil {
		if err := ws.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "interopd: wire shutdown: %v\n", err)
		}
	}
	srv.Close()
	logf("drained, exiting")
}
