// Command interopbench runs the full reproduction suite: the E1–E11
// scenario reproductions (every worked example and figure of the paper)
// and the B1–B6 measurements (query optimisation, transaction validation,
// scale sweeps, derivation cost, baseline comparison, conflict
// detection). Its output is the source of EXPERIMENTS.md.
//
// Usage:
//
//	interopbench            # everything
//	interopbench -only E    # scenario reproductions only
//	interopbench -only B    # measurements only
//	interopbench -quick     # smaller B-series sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"interopdb/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run only E or B series")
	quick := flag.Bool("quick", false, "smaller measurement sweeps")
	flag.Parse()

	failed := false
	if *only == "" || strings.EqualFold(*only, "E") {
		fmt.Println("==================== E-series: scenario reproductions ====================")
		results, err := experiments.All()
		exitOn(err)
		for _, r := range results {
			fmt.Print(r)
			if !r.Passed() {
				failed = true
			}
		}
	}

	if *only == "" || strings.EqualFold(*only, "B") {
		fmt.Println("==================== B-series: measurements ====================")
		runB(*quick)
	}
	if failed {
		os.Exit(1)
	}
}

func runB(quick bool) {
	books := 2000
	sizes := []int{1000, 5000, 20000}
	counts := []int{4, 16, 64, 256}
	if quick {
		books = 500
		sizes = []int{500, 2000}
		counts = []int{4, 16, 64}
	}

	fmt.Printf("\nB1: query optimisation (%d+%d books)\n", books, books)
	rows, err := experiments.B1(books)
	exitOn(err)
	for _, r := range rows {
		speedup := "-"
		if r.OptScanned < r.BaseScanned {
			speedup = fmt.Sprintf("%.0fx fewer objects", float64(r.BaseScanned)/float64(max(1, r.OptScanned)))
		}
		fmt.Printf("  %-62s opt: %6d scanned %10v | base: %6d scanned %10v | pruned=%-5v %s\n",
			r.Query, r.OptScanned, r.OptTime, r.BaseScanned, r.BaseTime, r.Pruned, speedup)
	}

	fmt.Println("\nB2: transaction validation (rejected before shipping)")
	b2, err := experiments.B2(200, []float64{0, 0.25, 0.5, 0.75})
	exitOn(err)
	for _, r := range b2 {
		fmt.Printf("  violation rate %.2f: %3d/%3d rejected early, %d reached the local manager and were rejected there\n",
			r.ViolationRate, r.RejectedEarly, r.Attempts, r.LocalRejects)
	}

	fmt.Println("\nB3: integration scale sweep")
	b3, err := experiments.B3(sizes, []float64{0.1, 0.5, 0.9})
	exitOn(err)
	for _, r := range b3 {
		fmt.Printf("  books=%6d overlap=%.1f: %6d global objects (%6d merged) in %v\n",
			r.Books, r.Overlap, r.Objects, r.Merged, r.Duration)
	}

	fmt.Println("\nB4: derivation cost vs constraint count")
	b4, err := experiments.B4(counts)
	exitOn(err)
	for _, r := range b4 {
		fmt.Printf("  %4d component constraints → %4d derived global constraints in %v\n",
			r.Constraints, r.Derived, r.Duration)
	}

	fmt.Println("\nB5: baseline comparison")
	b5, err := experiments.B5()
	exitOn(err)
	fmt.Printf("  class-based [BLN86-style] classification: precision %.2f, recall %.2f (instance-based = 1.00/1.00 by construction)\n",
		b5.ClassBasedPrecision, b5.ClassBasedRecall)
	fmt.Printf("  union-all [AQF95/RPG95-style] constraints: %d/%d valid merged states falsely rejected (derived constraints: 0)\n",
		b5.UnionAllFalseRej, b5.UnionAllTotal)

	fmt.Println("\nB6: conflict detection under injected weakenings")
	b6, err := experiments.B6()
	exitOn(err)
	for _, r := range b6 {
		fmt.Printf("  %d weakened constraints → %2d conflicts, %2d repair suggestions\n",
			r.WeakenedConstraints, r.Conflicts, r.Suggestions)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "interopbench:", err)
		os.Exit(1)
	}
}
