// Command interopbench runs the full reproduction suite: the E1–E11
// scenario reproductions (every worked example and figure of the paper)
// and the B1–B9 measurements (query optimisation, transaction validation,
// scale sweeps, derivation cost, baseline comparison, conflict
// detection, indexed query serving, mutation throughput, concurrent
// lock-free serving). Its output is the source of EXPERIMENTS.md. The
// scale and derivation sweeps (B3, B4) measure sequential vs parallel
// pipeline execution and report the reasoner's cache hit rate; B7
// measures the indexed+compiled serving fast path against the pure
// interpreter scan; B8 measures batched ShipTx against singleton insert
// transactions and delta-restricted update validation against a full
// CheckAll; B1 reports cold (planning + cost-gated constraint phase)
// against steady-state (plan-cached) serving; B9 measures concurrent
// readers against the snapshot path under a mutating writer, with the
// plan-cache hit rate; B10 measures incremental attach against full
// re-integration; B11 drives the same mixed workload through
// interopd's HTTP surface and reports the wire overhead against the
// in-process engine; B12 measures serving under injected member faults
// and the reconvergence cost after an outage; B13 measures the
// durability bill (write-ahead logging per routed commit, with and
// without fsync) and the warm-start payoff (cold vs recovered boot to
// plan-hit serving).
//
// Usage:
//
//	interopbench                  # everything
//	interopbench -only E          # scenario reproductions only
//	interopbench -only B          # measurements only
//	interopbench -only b11 -serve-url http://localhost:7070
//	                              # drive a running interopd
//	interopbench -quick           # smaller B-series sweeps
//	interopbench -json BENCH.json # also write machine-readable results
//	interopbench -cpuprofile cpu.pprof -memprofile mem.pprof
//	                              # pprof output (see `make profile`)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"interopdb/internal/experiments"
	"interopdb/internal/server"
)

// report is the machine-readable result file (-json): one baseline per
// PR, diffable across the repo's history.
type report struct {
	GoMaxProcs int                   `json:"gomaxprocs"`
	Quick      bool                  `json:"quick"`
	EResults   []eResult             `json:"e_results,omitempty"`
	B1         []experiments.B1Row   `json:"b1,omitempty"`
	B2         []experiments.B2Row   `json:"b2,omitempty"`
	B3         []b3JSON              `json:"b3,omitempty"`
	B4         []b4JSON              `json:"b4,omitempty"`
	B5         *experiments.B5Result `json:"b5,omitempty"`
	B6         []experiments.B6Row   `json:"b6,omitempty"`
	B7         []b7JSON              `json:"b7,omitempty"`
	B8         []b8JSON              `json:"b8,omitempty"`
	B9         []b9JSON              `json:"b9,omitempty"`
	B9V        []b9vJSON             `json:"b9v,omitempty"`
	B10        []b10JSON             `json:"b10,omitempty"`
	B11        []b11JSON             `json:"b11,omitempty"`
	B12        []b12JSON             `json:"b12,omitempty"`
	B13        []b13JSON             `json:"b13,omitempty"`
}

type eResult struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Passed bool   `json:"passed"`
}

// b3JSON flattens B3Row with derived metrics for trend tracking.
type b3JSON struct {
	Books        int     `json:"books"`
	Overlap      float64 `json:"overlap"`
	Objects      int     `json:"objects"`
	Merged       int     `json:"merged"`
	SeqNanos     int64   `json:"seq_ns"`
	ParNanos     int64   `json:"par_ns"`
	Speedup      float64 `json:"speedup"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// b7JSON flattens B7Row for trend tracking across baselines.
type b7JSON struct {
	Scale     int     `json:"scale"`
	Extent    int     `json:"extent"`
	Kind      string  `json:"kind"`
	Detail    string  `json:"detail"`
	ScanNanos int64   `json:"scan_ns"`
	FastNanos int64   `json:"fast_ns"`
	Speedup   float64 `json:"speedup"`
	Rows      int     `json:"rows"`
	Scanned   int     `json:"scanned"`
	IndexHits int     `json:"index_hits"`
}

// b8JSON flattens B8Row for trend tracking across baselines.
type b8JSON struct {
	Scale      int     `json:"scale"`
	Mode       string  `json:"mode"`
	Ops        int     `json:"ops"`
	TotalNanos int64   `json:"total_ns"`
	PerOpNanos int64   `json:"per_op_ns"`
	Throughput float64 `json:"throughput_ops_per_s"`
	DeltaPairs int     `json:"delta_pairs,omitempty"`
	FullPairs  int     `json:"full_pairs,omitempty"`
}

// b9JSON flattens B9Row for trend tracking across baselines.
type b9JSON struct {
	Readers       int     `json:"readers"`
	Ops           int     `json:"ops"`
	TotalNanos    int64   `json:"total_ns"`
	PerOpNanos    int64   `json:"per_op_ns"`
	Throughput    float64 `json:"throughput_qps"`
	Mutations     int     `json:"mutations"`
	PlanHitRate   float64 `json:"plan_hit_rate"`
	SolverQueries int64   `json:"solver_queries"`
}

// b9vJSON flattens B9VRow for trend tracking across baselines.
type b9vJSON struct {
	Readers          int     `json:"readers"`
	Ops              int     `json:"ops"`
	TotalNanos       int64   `json:"total_ns"`
	PerOpNanos       int64   `json:"per_op_ns"`
	Throughput       float64 `json:"throughput_qps"`
	Mutations        int     `json:"mutations"`
	WriteIntervalNs  int64   `json:"write_interval_ns"`
	PlanHitRate      float64 `json:"plan_hit_rate"`
	MaxChainVersions int     `json:"max_chain_versions"`
	MaxLag           uint64  `json:"max_lag"`
	Coalesced        int64   `json:"coalesced"`
	Truncated        int64   `json:"truncated"`
}

// b10JSON flattens B10Row for trend tracking across baselines.
type b10JSON struct {
	Scale           int     `json:"scale"`
	AttachNanos     int64   `json:"attach_ns"`
	ReintegrateNans int64   `json:"reintegrate_ns"`
	Speedup         float64 `json:"speedup"`
	PlanSurvival    float64 `json:"plan_survival"`
	AttachSolver    int64   `json:"attach_solver"`
	FullSolver      int64   `json:"full_solver"`
	Publishes       int64   `json:"publishes"`
}

// b11JSON flattens server.LoadResult for trend tracking across
// baselines: wire serving (HTTP + JSON codec) against the in-process
// engine on the same workload.
type b11JSON struct {
	Transport    string  `json:"transport"`
	Readers      int     `json:"readers"`
	Ops          int     `json:"ops"`
	WireQPS      float64 `json:"wire_qps"`
	WirePerOp    int64   `json:"wire_per_op_ns"`
	P50          int64   `json:"p50_ns"`
	P95          int64   `json:"p95_ns"`
	P99          int64   `json:"p99_ns"`
	Mutations    int64   `json:"mutations"`
	InprocPerOp  int64   `json:"inproc_per_op_ns"`
	WireOverhead float64 `json:"wire_overhead_x"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// b12JSON flattens B12Result for trend tracking across baselines:
// serving under injected member faults, degraded-mode behaviour during
// an outage, and the reconvergence cost after healing.
type b12JSON struct {
	Scale           int     `json:"scale"`
	Batches         int     `json:"batches"`
	Rate            float64 `json:"rate"`
	Injected        int     `json:"injected"`
	Retries         int64   `json:"retries"`
	ClientErrors    int     `json:"client_errors"`
	PartialSurfaced int     `json:"partial_surfaced"`
	FaultyNanos     int64   `json:"faulty_ns"`
	FaultFreeNanos  int64   `json:"fault_free_ns"`
	OverheadX       float64 `json:"overhead_x"`
	DegradedReads   int     `json:"degraded_reads"`
	WriteFastFails  int     `json:"write_fast_fails"`
	ReconvergeNanos int64   `json:"reconverge_ns"`
	Completed       int     `json:"completed"`
}

// b13JSON flattens B13Result for trend tracking across baselines: the
// write-side durability bill (bare vs WAL vs WAL+fsync shipping) and
// the boot-side payoff (cold vs warm recovery to plan-hit serving).
type b13JSON struct {
	Scale             int     `json:"scale"`
	Batches           int     `json:"batches"`
	ShipBareNanos     int64   `json:"ship_bare_ns"`
	ShipWALNanos      int64   `json:"ship_wal_ns"`
	ShipWALSyncNanos  int64   `json:"ship_wal_sync_ns"`
	WALOverheadX      float64 `json:"wal_overhead_x"`
	WALSyncOverheadX  float64 `json:"wal_sync_overhead_x"`
	ColdBootNanos     int64   `json:"cold_boot_ns"`
	WarmBootNanos     int64   `json:"warm_boot_ns"`
	BootSpeedup       float64 `json:"boot_speedup"`
	ReplayedCommits   int     `json:"replayed_commits"`
	MemoEntries       int     `json:"memo_entries"`
	PlansWarmed       int     `json:"plans_warmed"`
	WarmPlanHits      int64   `json:"warm_plan_hits"`
	WarmSolverQueries int64   `json:"warm_solver_queries"`
}

type b4JSON struct {
	Constraints  int     `json:"constraints"`
	Derived      int     `json:"derived"`
	SeqNanos     int64   `json:"seq_ns"`
	ParNanos     int64   `json:"par_ns"`
	Speedup      float64 `json:"speedup"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

func main() {
	only := flag.String("only", "", "run only E or B series, or just b11 (wire serving)")
	quick := flag.Bool("quick", false, "smaller measurement sweeps")
	serveURL := flag.String("serve-url", "", "B11: drive a running interopd at this base URL instead of self-hosting")
	serveWire := flag.String("wire-addr", "", "B11: the same daemon's binary-transport address (interopd -wire-addr); with -serve-url, empty skips the binary arm")
	transport := flag.String("transport", "", "B11: limit to one transport (http or binary); empty runs both")
	jsonPath := flag.String("json", "", "write machine-readable results to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		// Flushed explicitly on every exit path: os.Exit skips defers,
		// and a truncated profile is most painful exactly when a run
		// fails. StopCPUProfile is a no-op once profiling is stopped.
		defer pprof.StopCPUProfile()
	}

	rep := report{GoMaxProcs: runtime.GOMAXPROCS(0), Quick: *quick}
	failed := false
	if *only == "" || strings.EqualFold(*only, "E") {
		fmt.Println("==================== E-series: scenario reproductions ====================")
		results, err := experiments.All()
		exitOn(err)
		for _, r := range results {
			fmt.Print(r)
			if !r.Passed() {
				failed = true
			}
			rep.EResults = append(rep.EResults, eResult{ID: r.ID, Title: r.Title, Passed: r.Passed()})
		}
	}

	if *only == "" || strings.EqualFold(*only, "B") {
		fmt.Println("==================== B-series: measurements ====================")
		runB(*quick, &rep)
	}
	if *only == "" || strings.EqualFold(*only, "B") || strings.EqualFold(*only, "b11") {
		runB11(*quick, *serveURL, *serveWire, *transport, &rep)
	}
	if *only == "" || strings.EqualFold(*only, "B") || strings.EqualFold(*only, "b12") {
		runB12(*quick, &rep)
	}
	if *only == "" || strings.EqualFold(*only, "B") || strings.EqualFold(*only, "b13") {
		runB13(*quick, &rep)
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		exitOn(err)
		exitOn(os.WriteFile(*jsonPath, append(buf, '\n'), 0o644))
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		exitOn(err)
		runtime.GC()
		exitOn(pprof.WriteHeapProfile(f))
		exitOn(f.Close())
	}
	if failed {
		pprof.StopCPUProfile()
		os.Exit(1)
	}
}

func runB(quick bool, rep *report) {
	books := 2000
	sizes := []int{1000, 5000, 20000}
	counts := []int{4, 16, 64, 256}
	if quick {
		books = 500
		sizes = []int{500, 2000}
		counts = []int{4, 16, 64}
	}

	fmt.Printf("\nB1: query optimisation (%d+%d books; cold = planning, steady = plan-cached)\n", books, books)
	rows, err := experiments.B1(books)
	exitOn(err)
	for _, r := range rows {
		speedup := "-"
		if r.OptScanned < r.BaseScanned {
			speedup = fmt.Sprintf("%.0fx fewer objects", float64(r.BaseScanned)/float64(max(1, r.OptScanned)))
		}
		fmt.Printf("  %-62s cold opt %10v / base %10v | steady opt %8v / base %8v | pruned=%-5v gated=%-5v %s\n",
			r.Query, r.OptColdTime, r.BaseColdTime, r.OptTime, r.BaseTime, r.Pruned, r.Gated, speedup)
	}
	rep.B1 = rows

	fmt.Println("\nB2: transaction validation (rejected before shipping)")
	b2, err := experiments.B2(200, []float64{0, 0.25, 0.5, 0.75})
	exitOn(err)
	for _, r := range b2 {
		fmt.Printf("  violation rate %.2f: %3d/%3d rejected early, %d reached the local manager and were rejected there\n",
			r.ViolationRate, r.RejectedEarly, r.Attempts, r.LocalRejects)
	}
	rep.B2 = b2

	fmt.Println("\nB3: integration scale sweep (sequential vs parallel pipeline)")
	b3, err := experiments.B3(sizes, []float64{0.1, 0.5, 0.9})
	exitOn(err)
	for _, r := range b3 {
		fmt.Printf("  books=%6d overlap=%.1f: %6d global objects (%6d merged) seq %10v | par %10v | %.2fx | cache %4.1f%%\n",
			r.Books, r.Overlap, r.Objects, r.Merged, r.Duration, r.DurationPar, r.Speedup(), 100*r.CacheHitRate)
		rep.B3 = append(rep.B3, b3JSON{
			Books: r.Books, Overlap: r.Overlap, Objects: r.Objects, Merged: r.Merged,
			SeqNanos: r.Duration.Nanoseconds(), ParNanos: r.DurationPar.Nanoseconds(),
			Speedup: r.Speedup(), CacheHitRate: r.CacheHitRate,
		})
	}

	fmt.Println("\nB4: derivation cost vs constraint count (sequential vs parallel)")
	b4, err := experiments.B4(counts)
	exitOn(err)
	for _, r := range b4 {
		fmt.Printf("  %4d component constraints → %4d derived global constraints seq %10v | par %10v | %.2fx | cache %4.1f%%\n",
			r.Constraints, r.Derived, r.Duration, r.DurationPar, r.Speedup(), 100*r.CacheHitRate)
		rep.B4 = append(rep.B4, b4JSON{
			Constraints: r.Constraints, Derived: r.Derived,
			SeqNanos: r.Duration.Nanoseconds(), ParNanos: r.DurationPar.Nanoseconds(),
			Speedup: r.Speedup(), CacheHitRate: r.CacheHitRate,
		})
	}

	fmt.Println("\nB5: baseline comparison")
	b5, err := experiments.B5()
	exitOn(err)
	fmt.Printf("  class-based [BLN86-style] classification: precision %.2f, recall %.2f (instance-based = 1.00/1.00 by construction)\n",
		b5.ClassBasedPrecision, b5.ClassBasedRecall)
	fmt.Printf("  union-all [AQF95/RPG95-style] constraints: %d/%d valid merged states falsely rejected (derived constraints: 0)\n",
		b5.UnionAllFalseRej, b5.UnionAllTotal)
	rep.B5 = &b5

	fmt.Println("\nB6: conflict detection under injected weakenings")
	b6, err := experiments.B6()
	exitOn(err)
	for _, r := range b6 {
		fmt.Printf("  %d weakened constraints → %2d conflicts, %2d repair suggestions\n",
			r.WeakenedConstraints, r.Conflicts, r.Suggestions)
	}
	rep.B6 = b6

	scales := []int{1, 10, 50}
	serveIters := 200
	if quick {
		scales = []int{1, 10}
		serveIters = 50
	}
	fmt.Println("\nB7: indexed query serving vs pure scan (scaled Figure 1 fixture)")
	b7, err := experiments.B7(scales, serveIters)
	exitOn(err)
	for _, r := range b7 {
		fmt.Printf("  scale=%3d extent=%4d %-15s %-40s scan %10v | indexed %10v | %6.1fx | rows=%d scanned=%d hits=%d\n",
			r.Scale, r.Extent, r.Kind, r.Detail, r.ScanTime, r.FastTime, r.Speedup(), r.Rows, r.Scanned, r.IndexHits)
		rep.B7 = append(rep.B7, b7JSON{
			Scale: r.Scale, Extent: r.Extent, Kind: r.Kind, Detail: r.Detail,
			ScanNanos: r.ScanTime.Nanoseconds(), FastNanos: r.FastTime.Nanoseconds(),
			Speedup: r.Speedup(), Rows: r.Rows, Scanned: r.Scanned, IndexHits: r.IndexHits,
		})
	}

	batch := 100
	if quick {
		batch = 50
	}
	fmt.Printf("\nB8: mutation throughput — batched ShipTx vs singleton inserts, delta vs full validation (%d ops)\n", batch)
	b8, err := experiments.B8(scales, batch)
	exitOn(err)
	for _, r := range b8 {
		extra := ""
		if r.Mode == "validate-delta" || r.Mode == "validate-full" {
			extra = fmt.Sprintf(" | pairs delta=%d full=%d", r.DeltaPairs, r.FullPairs)
		}
		fmt.Printf("  scale=%3d %-18s ops=%4d total %12v | per-op %12v | %9.0f ops/s%s\n",
			r.Scale, r.Mode, r.Ops, r.Total, r.PerOp, r.Throughput(), extra)
		rep.B8 = append(rep.B8, b8JSON{
			Scale: r.Scale, Mode: r.Mode, Ops: r.Ops,
			TotalNanos: r.Total.Nanoseconds(), PerOpNanos: r.PerOp.Nanoseconds(),
			Throughput: r.Throughput(), DeltaPairs: r.DeltaPairs, FullPairs: r.FullPairs,
		})
	}

	b9Scale, b9Ops := 50, 2000
	if quick {
		b9Scale, b9Ops = 10, 500
	}
	readerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		readerCounts = append(readerCounts, n)
	}
	fmt.Printf("\nB9: concurrent lock-free serving (scale %d, %d queries/reader, writer shipping batches)\n", b9Scale, b9Ops)
	for _, readers := range readerCounts {
		r, err := experiments.B9(b9Scale, readers, b9Ops)
		exitOn(err)
		fmt.Printf("  readers=%2d ops=%6d wall %12v | per-query %8v | %9.0f q/s | %4d mutation batches | plan-hit %5.1f%% | solver %d\n",
			r.Readers, r.Ops, r.Total, r.PerOp, r.Throughput(), r.Mutations, 100*r.PlanHitRate, r.SolverQueries)
		rep.B9 = append(rep.B9, b9JSON{
			Readers: r.Readers, Ops: r.Ops,
			TotalNanos: r.Total.Nanoseconds(), PerOpNanos: r.PerOp.Nanoseconds(),
			Throughput: r.Throughput(), Mutations: r.Mutations,
			PlanHitRate: r.PlanHitRate, SolverQueries: r.SolverQueries,
		})
	}

	// B9v: reader scaling at a FIXED write rate over the multi-version
	// ring. Unlike B9's free-running writer, the write pressure here is
	// identical at every reader count, so per-query cost across 1/2/4/8
	// readers isolates reader-side scaling; the ring-health high-water
	// marks show reclamation keeping up under the same churn. On this
	// single-core CI host wall-clock scaling is reported, not gated
	// (the PR 1 precedent) — the correctness half is asserted inline.
	b9vOps, b9vInterval := 2000, 2*time.Millisecond
	if quick {
		b9vOps = 500
	}
	fmt.Printf("\nB9v: reader scaling at a fixed write rate (scale %d, %d queries/reader, one insert per %v)\n",
		b9Scale, b9vOps, b9vInterval)
	for _, readers := range []int{1, 2, 4, 8} {
		r, err := experiments.B9V(b9Scale, readers, b9vOps, b9vInterval)
		exitOn(err)
		fmt.Printf("  readers=%2d ops=%6d wall %12v | per-query %8v | %9.0f q/s | %4d writes | plan-hit %5.1f%% | chain hwm %d | lag hwm %d\n",
			r.Readers, r.Ops, r.Total, r.PerOp, r.Throughput(), r.Mutations, 100*r.PlanHitRate, r.MaxChainVersions, r.MaxLag)
		rep.B9V = append(rep.B9V, b9vJSON{
			Readers: r.Readers, Ops: r.Ops,
			TotalNanos: r.Total.Nanoseconds(), PerOpNanos: r.PerOp.Nanoseconds(),
			Throughput: r.Throughput(), Mutations: r.Mutations,
			WriteIntervalNs:  r.WriteInterval.Nanoseconds(),
			PlanHitRate:      r.PlanHitRate,
			MaxChainVersions: r.MaxChainVersions, MaxLag: r.MaxLag,
			Coalesced: r.Coalesced, Truncated: r.Truncated,
		})
	}

	b10Scales := []int{1, 10, 50}
	if quick {
		b10Scales = []int{1, 10}
	}
	fmt.Println("\nB10: federation membership change — incremental attach vs full re-integration")
	b10, err := experiments.B10(b10Scales)
	exitOn(err)
	for _, r := range b10 {
		fmt.Printf("  scale=%3d attach %12v | re-integrate %12v | %5.1fx | plan survival %5.1f%% | solver %d vs %d | publishes %d\n",
			r.Scale, r.Attach, r.Reintegrate, r.Speedup(), 100*r.PlanSurvival, r.AttachSolver, r.FullSolver, r.Publishes)
		rep.B10 = append(rep.B10, b10JSON{
			Scale: r.Scale, AttachNanos: r.Attach.Nanoseconds(), ReintegrateNans: r.Reintegrate.Nanoseconds(),
			Speedup: r.Speedup(), PlanSurvival: r.PlanSurvival,
			AttachSolver: r.AttachSolver, FullSolver: r.FullSolver, Publishes: r.Publishes,
		})
	}
}

// runB11 measures serving the federation over the wire: the B9 query
// mix driven through interopd's transports (self-hosted on loopback
// unless -serve-url points at a running daemon), reported next to the
// same workload on an in-process engine. The gap is the transport bill;
// the binary arm (framed protocol + prepared queries) shows how much of
// the HTTP/JSON bill is codec rather than network.
func runB11(quick bool, serveURL, wireAddr, only string, rep *report) {
	ops := 200
	if quick {
		ops = 50
	}
	readerCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 && !quick {
		readerCounts = append(readerCounts, n)
	}
	transports := []string{"http", "binary"}
	if only != "" {
		transports = []string{only}
	}
	if serveURL != "" && wireAddr == "" {
		// A remote daemon without -wire-addr can only serve HTTP.
		transports = []string{"http"}
	}
	target := "self-hosted loopback"
	if serveURL != "" {
		target = serveURL
	}
	fmt.Printf("\nB11: wire serving, HTTP/JSON vs binary framed (%s; %d queries/reader, writer shipping inserts)\n", target, ops)
	for _, tr := range transports {
		for _, readers := range readerCounts {
			r, err := server.RunLoad(server.LoadOptions{
				BaseURL:      serveURL,
				WireAddr:     wireAddr,
				Transport:    tr,
				Readers:      readers,
				OpsPerReader: ops,
			})
			exitOn(err)
			fmt.Printf("  %-6s readers=%2d ops=%6d %9.0f q/s | per-op %10v (in-proc %10v, %5.1fx) | p50 %8v p95 %8v p99 %8v | %5.0f allocs/op | %d mutations\n",
				r.Transport, r.Readers, r.Ops, r.WireQPS, r.WirePerOp, r.InprocPerOp, r.WireOverhead, r.P50, r.P95, r.P99, r.AllocsPerOp, r.Mutations)
			rep.B11 = append(rep.B11, b11JSON{
				Transport: r.Transport,
				Readers:   r.Readers, Ops: r.Ops, WireQPS: r.WireQPS,
				WirePerOp: r.WirePerOp.Nanoseconds(),
				P50:       r.P50.Nanoseconds(), P95: r.P95.Nanoseconds(), P99: r.P99.Nanoseconds(),
				Mutations: r.Mutations, InprocPerOp: r.InprocPerOp.Nanoseconds(),
				WireOverhead: r.WireOverhead,
				AllocsPerOp:  r.AllocsPerOp,
			})
		}
	}
}

// runB12 measures fault-tolerant serving: cross-member batches under a
// seeded transient-fault rate on one member (the retry layer must
// absorb every fault — zero partial commits reach callers), then a
// forced outage with degraded serving, then the reconcile pass that
// completes the stranded batch once the member heals.
func runB12(quick bool, rep *report) {
	scales := []int{1, 10, 50}
	batches := 200
	if quick {
		scales = []int{1, 10}
		batches = 50
	}
	const rate = 0.05
	fmt.Printf("\nB12: serving under member faults (%d cross-member batches, %.0f%% transient commit-fault rate)\n", batches, 100*rate)
	for _, scale := range scales {
		r, err := experiments.B12(scale, batches, rate)
		exitOn(err)
		fmt.Printf("  scale=%3d injected=%3d retries=%3d surfaced partials=%d | faulted %12v vs clean %12v (%.2fx) | outage: %d reads served, %d writes fast-failed | reconverge %10v (%d completed)\n",
			r.Scale, r.Injected, r.Retries, r.PartialSurfaced, r.FaultyTotal, r.FaultFreeTotal, r.Overhead(),
			r.DegradedReads, r.WriteFastFails, r.Reconverge, r.Completed)
		rep.B12 = append(rep.B12, b12JSON{
			Scale: r.Scale, Batches: r.Batches, Rate: r.Rate,
			Injected: r.Injected, Retries: r.Retries,
			ClientErrors: r.ClientErrors, PartialSurfaced: r.PartialSurfaced,
			FaultyNanos: r.FaultyTotal.Nanoseconds(), FaultFreeNanos: r.FaultFreeTotal.Nanoseconds(),
			OverheadX:     r.Overhead(),
			DegradedReads: r.DegradedReads, WriteFastFails: r.WriteFastFails,
			ReconvergeNanos: r.Reconverge.Nanoseconds(), Completed: r.Completed,
		})
	}
}

// runB13 measures durability: the same routed workload shipped bare,
// WAL-logged, and WAL-logged with an fsync per commit, then a crash of
// the synced node and the cold-vs-warm boot race back to plan-hit
// serving.
func runB13(quick bool, rep *report) {
	scales := []int{1, 10, 50}
	batches := 200
	if quick {
		scales = []int{1, 10}
		batches = 50
	}
	fmt.Printf("\nB13: durability — WAL ship overhead and warm-start recovery (%d cross-member batches)\n", batches)
	for _, scale := range scales {
		r, err := experiments.B13(scale, batches)
		exitOn(err)
		fmt.Printf("  scale=%3d ship: bare %12v | wal %12v (%.2fx) | wal+fsync %12v (%.2fx) | boot: cold %12v vs warm %12v (%.2fx, %d commits replayed, %d memo, %d plans, %d solver queries)\n",
			r.Scale, r.ShipBare, r.ShipWALNoSync, r.WALOverheadNoSync(), r.ShipWALSync, r.WALOverheadSync(),
			r.ColdBoot, r.WarmBoot, r.BootSpeedup(), r.ReplayedCommits, r.MemoEntries, r.PlansWarmed, r.WarmSolverQueries)
		rep.B13 = append(rep.B13, b13JSON{
			Scale: r.Scale, Batches: r.Batches,
			ShipBareNanos: r.ShipBare.Nanoseconds(), ShipWALNanos: r.ShipWALNoSync.Nanoseconds(),
			ShipWALSyncNanos: r.ShipWALSync.Nanoseconds(),
			WALOverheadX:     r.WALOverheadNoSync(), WALSyncOverheadX: r.WALOverheadSync(),
			ColdBootNanos: r.ColdBoot.Nanoseconds(), WarmBootNanos: r.WarmBoot.Nanoseconds(),
			BootSpeedup:     r.BootSpeedup(),
			ReplayedCommits: r.ReplayedCommits, MemoEntries: r.MemoEntries, PlansWarmed: r.PlansWarmed,
			WarmPlanHits: r.WarmPlanHits, WarmSolverQueries: r.WarmSolverQueries,
		})
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func exitOn(err error) {
	if err != nil {
		pprof.StopCPUProfile() // flush a partial CPU profile, if any
		fmt.Fprintln(os.Stderr, "interopbench:", err)
		os.Exit(1)
	}
}
