// Command interop runs the constraint-aware integration pipeline over two
// TM-style database specifications and an integration specification, and
// prints the stage-by-stage report of the paper's Figure 3: specification
// issues (§5.1.3 consistency law), property subjectivity (§5.1.2),
// conformed constraints (§4), the emergent global class lattice (§2.3),
// the derived global constraint set (§5.2), and detected conflicts with
// repair suggestions.
//
// Usage:
//
//	interop -demo figure1            # the paper's Figure 1 scenario
//	interop -demo personnel          # the introduction's example
//	interop -local lib.tm -remote shop.tm -spec integ.tm
//
// With file arguments the stores start empty: the report covers the
// design-time analysis (constraint conformation, derivation on the rule
// classes, conflicts), which is exactly what the paper's envisioned
// design tool surfaces.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"interopdb"
)

func main() {
	demo := flag.String("demo", "", "run an embedded scenario: figure1 or personnel")
	localPath := flag.String("local", "", "local database specification file")
	remotePath := flag.String("remote", "", "remote database specification file")
	specPath := flag.String("spec", "", "integration specification file")
	seed := flag.Int64("seed", 1, "seed for conflict-ignoring decision functions")
	failOnConflict := flag.Bool("check", false, "exit nonzero if conflicts are detected")
	query := flag.String("query", "", "run a query against the integrated view, e.g. 'select title from Proceedings where rating >= 7'")
	flag.Parse()

	var (
		local, remote *interopdb.DatabaseSpec
		ispec         *interopdb.IntegrationSpec
		ls, rs        *interopdb.Store
		err           error
	)
	switch *demo {
	case "figure1":
		local, remote = interopdb.Figure1Library(), interopdb.Figure1Bookseller()
		ispec = interopdb.Figure1Integration()
		ls, rs = interopdb.Figure1Stores(interopdb.FixtureOptions{})
	case "personnel":
		local, remote = interopdb.Personnel1(), interopdb.Personnel2()
		ispec = interopdb.PersonnelIntegration()
		ls, rs = interopdb.PersonnelStores()
	case "":
		if *localPath == "" || *remotePath == "" || *specPath == "" {
			fmt.Fprintln(os.Stderr, "need -demo, or all of -local, -remote, -spec")
			flag.Usage()
			os.Exit(2)
		}
		local, err = parseFile(*localPath)
		exitOn(err)
		remote, err = parseFile(*remotePath)
		exitOn(err)
		src, err := os.ReadFile(*specPath)
		exitOn(err)
		ispec, err = interopdb.ParseIntegration(string(src))
		exitOn(err)
		ls, rs = interopdb.NewStore(local), interopdb.NewStore(remote)
	default:
		fmt.Fprintf(os.Stderr, "unknown demo %q\n", *demo)
		os.Exit(2)
	}

	res, err := interopdb.Integrate(local, remote, ispec, ls, rs, *seed)
	exitOn(err)

	if *query != "" {
		q, err := interopdb.ParseQuery(*query)
		exitOn(err)
		engine := interopdb.NewQueryEngine(res)
		rows, stats, err := engine.Run(q)
		exitOn(err)
		for _, r := range rows {
			fmt.Println(rowString(r, q.Select))
		}
		fmt.Fprintf(os.Stderr, "%d rows (scanned %d, pruned=%v, dropped conjuncts=%d)\n",
			len(rows), stats.Scanned, stats.PrunedEmpty, stats.DroppedConjuncts)
		return
	}

	fmt.Println(res.Report())

	if *failOnConflict && len(res.Derivation.Conflicts) > 0 {
		fmt.Fprintf(os.Stderr, "%d conflicts detected\n", len(res.Derivation.Conflicts))
		os.Exit(1)
	}
}

// rowString renders a row with the projection's column order when given.
func rowString(r interopdb.Row, sel []string) string {
	if len(sel) == 0 {
		keys := make([]string, 0, len(r))
		for k := range r {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sel = keys
	}
	parts := make([]string, 0, len(sel))
	for _, k := range sel {
		if v, ok := r[k]; ok {
			parts = append(parts, k+"="+v.String())
		}
	}
	return strings.Join(parts, "  ")
}

func parseFile(path string) (*interopdb.DatabaseSpec, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return interopdb.ParseDatabase(string(src))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "interop:", err)
		os.Exit(1)
	}
}
