// Command benchcompare diffs two interopbench -json reports (e.g. the
// committed BENCH_3.json baseline against BENCH_4.json): E-series
// pass/fail changes, shared B-series timing metrics with relative
// deltas, and sections present in only one report. It is wired into
// `make bench-compare` and the CI benchmark smoke step, where it GATES:
// a shared timing metric regressing beyond -max-regress fails the
// build, so serve/mutation regressions cannot land silently.
//
// Usage:
//
//	benchcompare -max-regress 100 OLD.json NEW.json    # exit 1 on >100% slowdown
//	benchcompare -max-regress 50 -regress-floor 20000 OLD.json NEW.json
//
// -max-regress is required: an ungated comparison hides regressions
// behind green CI. Sub-floor rows (default 10µs baseline) are reported
// but never gated — single-run sub-10µs wall times jitter far beyond
// any sensible threshold, and gating them would only teach people to
// ignore the gate. E-series pass→fail drift always counts as a
// regression, regardless of thresholds.
//
// A second mode de-noises baselines before they are committed:
//
//	benchcompare -merge BENCH_8.json r1.json r2.json r3.json
//
// merges N runs of the same suite into one report, taking the per-row
// MINIMUM of every gated timing metric (min-of-N is the standard
// estimator for one-shot wall times: the min is the run the scheduler
// and GC interfered with least, so a stall landing in one run's
// measurement window cannot poison the committed baseline). E-series
// pass flags are ANDed — a scenario must pass in every run to be
// recorded as passing. All non-timing fields come from the first run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type eResult struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Passed bool   `json:"passed"`
}

// row is one generic B-series measurement: identity fields are compared
// for matching, nanosecond fields for deltas.
type row map[string]any

type report struct {
	GoMaxProcs int       `json:"gomaxprocs"`
	Quick      bool      `json:"quick"`
	EResults   []eResult `json:"e_results"`
	Sections   map[string][]row
}

// sections lists the B-series arrays with their identity keys (used to
// match rows across reports), their timing keys (compared in ns with
// the -regress-floor noise floor), and their count keys (unit-less
// metrics — allocations per op, overhead ratios — gated with the
// -count-floor instead, since a 10µs floor would exempt every count).
// idDefaults fills identity keys absent from older baselines so rows
// keep matching across a schema change (BENCH_9's b11 rows predate the
// transport field and were all HTTP).
var sections = []struct {
	name       string
	idKeys     []string
	idDefaults map[string]any
	nsKeys     []string
	countKeys  []string
}{
	{"b1", []string{"Query"}, nil, []string{"OptTime", "BaseTime", "OptColdTime", "BaseColdTime"}, nil},
	{"b3", []string{"books", "overlap"}, nil, []string{"seq_ns", "par_ns"}, nil},
	{"b4", []string{"constraints"}, nil, []string{"seq_ns", "par_ns"}, nil},
	{"b7", []string{"scale", "kind", "detail"}, nil, []string{"scan_ns", "fast_ns"}, nil},
	{"b8", []string{"scale", "mode"}, nil, []string{"per_op_ns"}, nil},
	{"b9", []string{"readers"}, nil, []string{"per_op_ns"}, nil},
	{"b9v", []string{"readers"}, nil, []string{"per_op_ns"}, nil},
	{"b10", []string{"scale"}, nil, []string{"attach_ns", "reintegrate_ns"}, nil},
	{"b11", []string{"transport", "readers"}, map[string]any{"transport": "http"},
		[]string{"wire_per_op_ns", "p50_ns"}, []string{"allocs_per_op", "wire_overhead_x"}},
	{"b12", []string{"scale"}, nil, []string{"faulty_ns", "reconverge_ns"}, nil},
	{"b13", []string{"scale"}, nil, []string{"ship_wal_sync_ns", "warm_boot_ns"}, nil},
}

func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rep.Sections = map[string][]row{}
	for _, s := range sections {
		if msg, ok := raw[s.name]; ok {
			var rows []row
			if err := json.Unmarshal(msg, &rows); err != nil {
				return nil, fmt.Errorf("%s section %s: %w", path, s.name, err)
			}
			rep.Sections[s.name] = rows
		}
	}
	return &rep, nil
}

func ident(r row, keys []string, defaults map[string]any) string {
	out := ""
	for _, k := range keys {
		v := r[k]
		if v == nil {
			v = defaults[k]
		}
		out += fmt.Sprintf("%v|", v)
	}
	return out
}

func main() {
	maxRegress := flag.Float64("max-regress", 0, "REQUIRED: exit 1 when a shared timing metric slows down by more than this percentage")
	regressFloor := flag.Float64("regress-floor", 10000, "ignore rows whose baseline is below this many nanoseconds (noise floor)")
	countFloor := flag.Float64("count-floor", 10, "ignore count metrics (allocs/op, overhead ratios) whose baseline is below this (noise floor)")
	mergeOut := flag.String("merge", "", "merge N run reports into this output file (per-metric min, E-series pass ANDed) instead of comparing")
	flag.Parse()
	if *mergeOut != "" {
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "usage: benchcompare -merge OUT.json RUN1.json RUN2.json [RUN3.json ...]")
			os.Exit(2)
		}
		exitOn(mergeRuns(*mergeOut, flag.Args()))
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare -max-regress pct [-regress-floor ns] OLD.json NEW.json")
		os.Exit(2)
	}
	if *maxRegress <= 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: -max-regress is required (a positive percentage); an ungated comparison hides regressions")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	exitOn(err)
	newRep, err := load(flag.Arg(1))
	exitOn(err)

	fmt.Printf("comparing %s (gomaxprocs=%d quick=%v) → %s (gomaxprocs=%d quick=%v)\n",
		flag.Arg(0), oldRep.GoMaxProcs, oldRep.Quick, flag.Arg(1), newRep.GoMaxProcs, newRep.Quick)

	// E-series: pass/fail drift is always a finding.
	regressions := 0
	oldE := map[string]bool{}
	for _, e := range oldRep.EResults {
		oldE[e.ID] = e.Passed
	}
	for _, e := range newRep.EResults {
		was, ok := oldE[e.ID]
		switch {
		case !ok:
			fmt.Printf("  %s: new scenario (passed=%v)\n", e.ID, e.Passed)
		case was && !e.Passed:
			fmt.Printf("  %s: REGRESSED pass→fail\n", e.ID)
			regressions++
		case !was && e.Passed:
			fmt.Printf("  %s: fixed fail→pass\n", e.ID)
		}
	}

	for _, s := range sections {
		oldRows, newRows := oldRep.Sections[s.name], newRep.Sections[s.name]
		switch {
		case oldRows == nil && newRows == nil:
			continue
		case oldRows == nil:
			fmt.Printf("%s: new section (%d rows) — no baseline to compare\n", s.name, len(newRows))
			continue
		case newRows == nil:
			fmt.Printf("%s: section dropped (was %d rows)\n", s.name, len(oldRows))
			continue
		}
		byID := map[string]row{}
		for _, r := range oldRows {
			byID[ident(r, s.idKeys, s.idDefaults)] = r
		}
		fmt.Printf("%s:\n", s.name)
		for _, nr := range newRows {
			id := ident(nr, s.idKeys, s.idDefaults)
			or, ok := byID[id]
			if !ok {
				fmt.Printf("  %-52s new row\n", id)
				continue
			}
			compare := func(k string, floor float64, unit string) {
				ov, ook := asFloat(or[k])
				nv, nok := asFloat(nr[k])
				if !ook || !nok || ov <= 0 {
					return
				}
				pct := 100 * (nv - ov) / ov
				marker := ""
				switch {
				case ov < floor:
					if pct > *maxRegress {
						marker = "  (sub-floor: not gated)"
					}
				case pct > *maxRegress:
					marker = "  << REGRESSION"
					regressions++
				}
				fmt.Printf("  %-52s %-14s %12.0f%s → %12.0f%s  %+6.1f%%%s\n", id, k, ov, unit, nv, unit, pct, marker)
			}
			for _, k := range s.nsKeys {
				compare(k, *regressFloor, "ns")
			}
			for _, k := range s.countKeys {
				compare(k, *countFloor, "")
			}
		}
	}

	if regressions > 0 {
		fmt.Printf("%d regression(s) beyond %.0f%%\n", regressions, *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("gate passed: no shared timing metric regressed beyond %.0f%% (floor %.0fns)\n", *maxRegress, *regressFloor)
}

// mergeRuns combines N interopbench reports of the same suite into one:
// every gated timing metric becomes the minimum observed across runs
// (rows matched by their section identity keys), E-series pass flags
// are ANDed, and everything else — metadata, counters, sections this
// tool doesn't know — is carried from the first run verbatim.
func mergeRuns(outPath string, inPaths []string) error {
	reports := make([]map[string]any, len(inPaths))
	for i, p := range inPaths {
		buf, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(buf, &reports[i]); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
	}
	base := reports[0]

	// E-series: a scenario passes only if it passed in every run.
	if eList, ok := base["e_results"].([]any); ok {
		for _, rep := range reports[1:] {
			other, _ := rep["e_results"].([]any)
			passed := map[string]bool{}
			for _, e := range other {
				if m, ok := e.(map[string]any); ok {
					passed[fmt.Sprint(m["id"])], _ = m["passed"].(bool)
				}
			}
			for _, e := range eList {
				m, ok := e.(map[string]any)
				if !ok {
					continue
				}
				if p, seen := passed[fmt.Sprint(m["id"])]; seen && !p {
					m["passed"] = false
				}
			}
		}
	}

	merged := 0
	for _, s := range sections {
		baseRows, ok := base[s.name].([]any)
		if !ok {
			continue
		}
		for _, rep := range reports[1:] {
			otherRows, _ := rep[s.name].([]any)
			byID := map[string]map[string]any{}
			for _, r := range otherRows {
				if m, ok := r.(map[string]any); ok {
					byID[ident(m, s.idKeys, s.idDefaults)] = m
				}
			}
			for _, r := range baseRows {
				m, ok := r.(map[string]any)
				if !ok {
					continue
				}
				o := byID[ident(m, s.idKeys, s.idDefaults)]
				if o == nil {
					continue
				}
				for k := range m {
					if !isGatedKey(s.nsKeys, s.countKeys, k) {
						continue
					}
					bv, bok := asFloat(m[k])
					ov, ook := asFloat(o[k])
					if bok && ook && ov > 0 && ov < bv {
						m[k] = ov
						merged++
					}
				}
			}
		}
	}

	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("merged %d runs → %s (%d timing metrics took a later run's minimum)\n",
		len(inPaths), outPath, merged)
	return nil
}

// isGatedKey reports whether k is one of the section's gated metrics
// (timing or count), or follows the _ns naming convention (covers
// ungated timing fields like total_ns so merged rows stay
// self-consistent).
func isGatedKey(nsKeys, countKeys []string, k string) bool {
	for _, nk := range nsKeys {
		if k == nk {
			return true
		}
	}
	for _, ck := range countKeys {
		if k == ck {
			return true
		}
	}
	return strings.HasSuffix(k, "_ns")
}

func asFloat(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
}
