module interopdb

go 1.22
