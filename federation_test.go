package interopdb

import (
	"fmt"
	"strings"
	"testing"
)

// buildFigure1Federation attaches CSLibrary (seed), Bookseller and —
// when third is true — UnivArchive, at the given fixture scale.
func buildFigure1Federation(t *testing.T, scale int, third bool) *Federation {
	t.Helper()
	local, remote := Figure1Stores(FixtureOptions{Scale: scale})
	fed := NewFederation(1, PipelineOptions{})
	if err := fed.Attach(Figure1Library(), local, nil); err != nil {
		t.Fatal(err)
	}
	if err := fed.Attach(Figure1Bookseller(), remote, Figure1IntegrationRepaired()); err != nil {
		t.Fatal(err)
	}
	if third {
		if err := fed.Attach(Figure1UnivArchive(), ArchiveStore(FixtureOptions{Scale: scale}), Figure1ArchiveIntegration()); err != nil {
			t.Fatal(err)
		}
	}
	return fed
}

// TestFederationPairDifferential pins the compatibility contract: a
// two-member federation built via Attach+Attach produces a Result whose
// Report is byte-identical to the pairwise Integrate on the same
// inputs, for the Figure 1 and Personnel fixtures across scales.
func TestFederationPairDifferential(t *testing.T) {
	for _, scale := range []int{1, 10, 50} {
		t.Run(fmt.Sprintf("figure1/scale%d", scale), func(t *testing.T) {
			local, remote := Figure1Stores(FixtureOptions{Scale: scale})
			want, err := Integrate(Figure1Library(), Figure1Bookseller(), Figure1IntegrationRepaired(), local, remote, 1)
			if err != nil {
				t.Fatal(err)
			}
			l2, r2 := Figure1Stores(FixtureOptions{Scale: scale})
			fed := NewFederation(1, PipelineOptions{})
			if err := fed.Attach(Figure1Library(), l2, nil); err != nil {
				t.Fatal(err)
			}
			if err := fed.Attach(Figure1Bookseller(), r2, Figure1IntegrationRepaired()); err != nil {
				t.Fatal(err)
			}
			if got := fed.Result().Report(); got != want.Report() {
				t.Fatalf("federation report differs from pairwise Integrate:\n--- federation\n%s\n--- integrate\n%s", got, want.Report())
			}
			if got := fed.Report(); got != want.Report() {
				t.Fatalf("fed.Report() not pairwise for a two-member federation")
			}
		})
	}
	for _, scale := range []int{1, 10, 50} {
		t.Run(fmt.Sprintf("personnel/scale%d", scale), func(t *testing.T) {
			p := PersonnelWorkloadParams{DB1: 20 * scale, DB2: 20 * scale, Overlap: 0.4, Seed: 7}
			db1, db2 := PersonnelWorkload(p)
			want, err := Integrate(Personnel1(), Personnel2(), PersonnelIntegration(), db1, db2, 1)
			if err != nil {
				t.Fatal(err)
			}
			e1, e2 := PersonnelWorkload(p)
			fed := NewFederation(1, PipelineOptions{})
			if err := fed.Attach(Personnel1(), e1, nil); err != nil {
				t.Fatal(err)
			}
			if err := fed.Attach(Personnel2(), e2, PersonnelIntegration()); err != nil {
				t.Fatal(err)
			}
			if got := fed.Result().Report(); got != want.Report() {
				t.Fatalf("federation report differs from pairwise Integrate at scale %d", scale)
			}
		})
	}
}

// TestFederationThirdMember pins the three-member semantics: cross-pair
// constraint derivation (the archive pair's constraints land on the
// combined view with provenance, key propagation dedups across pairs)
// and Sim-classification across pairs (archive conference records join
// ScholarlyLike next to the library's scientific publications; the
// shared-ISBN records merge three ways).
func TestFederationThirdMember(t *testing.T) {
	fed := buildFigure1Federation(t, 0, true)
	res := fed.Result()

	if got := fed.Members(); len(got) != 3 {
		t.Fatalf("members = %v", got)
	}

	// The VLDB proceedings is now one object with constituents in all
	// three stores.
	e := fed.Engine()
	rows, _, err := e.Run(Query{Class: "Record", Where: MustParseExpr("isbn = 'vldb96'")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("Record[isbn=vldb96] rows = %d", len(rows))
	}
	var vldb *GlobalObject
	for _, g := range res.View.Objects {
		if v, ok := g.Get("isbn"); ok && v.String() == "'vldb96'" {
			if g.Classes["Record"] {
				vldb = g
				break
			}
		}
	}
	if vldb == nil {
		t.Fatal("no merged vldb96 object holding class Record")
	}
	sides := 0
	for _, ms := range vldb.Parts {
		if len(ms) > 0 {
			sides++
		}
	}
	if sides != 3 {
		t.Fatalf("vldb96 object spans %d members, want 3 (parts: %v)", sides, vldb.Parts)
	}
	if !vldb.Classes["Proceedings"] || !vldb.Classes["Publication"] {
		t.Fatalf("vldb96 lost pair-1 classes: %v", vldb.Classes)
	}

	// Sim-classification across pairs: ScholarlyLike ⊇ ScientificPubl's
	// extension plus the well-scored archive records (the merged VLDB
	// and SIGMOD records and the archive-only symposium digest — but
	// NOT the score-40 workshop record).
	scholarly := res.View.Extent("ScholarlyLike")
	sci := res.View.Extent("ScientificPubl")
	if len(scholarly) == 0 {
		t.Fatal("ScholarlyLike is empty")
	}
	inScholarly := map[int]bool{}
	for _, g := range scholarly {
		inScholarly[g.ID] = true
	}
	for _, g := range sci {
		if !inScholarly[g.ID] {
			t.Fatalf("ScientificPubl member g%d missing from ScholarlyLike", g.ID)
		}
	}
	for _, g := range res.View.Extent("ConfRecord") {
		score, _ := g.Get("score")
		want := score.String() != "40"
		if inScholarly[g.ID] != want {
			t.Fatalf("ConfRecord g%d (score %s) ScholarlyLike membership = %v, want %v",
				g.ID, score, inScholarly[g.ID], want)
		}
	}

	// Cross-pair constraint derivation: the archive pair's objective
	// constraint surfaces on ConfRecord; the approximate-similarity
	// disjunction lands on ScholarlyLike; the key constraint on
	// Publication is contributed by BOTH pairs (provenance union).
	var sawConf, sawDisj bool
	for _, gc := range res.Derivation.Global {
		for _, cls := range gc.Classes {
			if cls == "ConfRecord" && gc.Derivation == "objective" {
				sawConf = true
			}
			if cls == "ScholarlyLike" && gc.Derivation == "disjunction(approx-sim)" {
				sawDisj = true
			}
		}
		if gc.Derivation == "key-propagation" && len(gc.Classes) == 1 && gc.Classes[0] == "Publication" {
			if len(gc.Provenance) != 2 {
				t.Fatalf("Publication key constraint provenance = %v, want both pairs", gc.Provenance)
			}
		}
	}
	if !sawConf {
		t.Fatal("archive objective constraint on ConfRecord not derived")
	}
	if !sawDisj {
		t.Fatal("ScholarlyLike disjunction constraint not derived")
	}

	// The federated report names all members and the provenance.
	rep := fed.Report()
	for _, want := range []string{
		"=== Federation: CSLibrary + Bookseller + UnivArchive ===",
		"UnivArchive via CSLibrary+UnivArchive",
		"ScholarlyLike",
		"(via UnivArchive)",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("federated report missing %q:\n%s", want, rep)
		}
	}
}

// TestFederationDetachRoundTrip pins the retraction rule end to end:
// detaching the archive returns the combined state to the two-member
// report byte for byte (constraints retracted by provenance, classes
// deregistered, merged objects reclassified), and re-attaching it
// reproduces the three-member report.
func TestFederationDetachRoundTrip(t *testing.T) {
	fed := buildFigure1Federation(t, 1, false)
	before := fed.Result().Report()

	archive := ArchiveStore(FixtureOptions{Scale: 1})
	if err := fed.Attach(Figure1UnivArchive(), archive, Figure1ArchiveIntegration()); err != nil {
		t.Fatal(err)
	}
	threeWay := fed.Report()

	if err := fed.Detach("UnivArchive"); err != nil {
		t.Fatal(err)
	}
	if got := fed.Result().Report(); got != before {
		t.Fatalf("detach did not restore the two-member state:\n--- before attach\n%s\n--- after detach\n%s", before, got)
	}
	if got := fed.Members(); len(got) != 2 {
		t.Fatalf("members after detach = %v", got)
	}
	if _, ok := fed.Stores().Get("UnivArchive"); ok {
		t.Fatal("archive store still registered after detach")
	}

	// Re-attach: the three-member federated report reproduces.
	if err := fed.Attach(Figure1UnivArchive(), archive, Figure1ArchiveIntegration()); err != nil {
		t.Fatal(err)
	}
	if got := fed.Report(); got != threeWay {
		t.Fatalf("re-attach did not reproduce the three-member state:\n--- first attach\n%s\n--- re-attach\n%s", threeWay, got)
	}
}

// TestFederationShipTxRouted pins per-member transaction routing: one
// mixed batch whose operations land in three different member stores —
// an insert routed to its origin member, an update fanned to every
// store holding a constituent of a three-way merged object, a delete of
// an archive-only object — committed one deferred-validation
// transaction per member and applied to the view atomically.
func TestFederationShipTxRouted(t *testing.T) {
	fed := buildFigure1Federation(t, 0, true)
	e := fed.Engine()
	res := fed.Result()

	var vldb, thesis *GlobalObject
	for _, g := range res.View.Objects {
		isbn, ok := g.Get("isbn")
		if !ok {
			continue
		}
		switch isbn.String() {
		case "'vldb96'":
			if g.Classes["Record"] && g.Classes["Item"] {
				vldb = g
			}
		case "'thesis1'":
			thesis = g
		}
	}
	if vldb == nil || thesis == nil {
		t.Fatal("fixture objects not found in the combined view")
	}

	lib, _ := fed.Stores().Get("CSLibrary")
	bs, _ := fed.Stores().Get("Bookseller")
	arch, _ := fed.Stores().Get("UnivArchive")
	archBefore := arch.Count()

	ops := []Mutation{
		{Kind: MutInsert, Class: "Record", Attrs: map[string]Value{
			"title": Str("Newly Archived Volume"), "isbn": Str("newvol1"),
			"keeper": Str("Annex"), "price": Real(15), "pages": Int(300),
		}},
		{Kind: MutUpdate, Class: "Publication", ID: vldb.ID, Attrs: map[string]Value{
			"title": Str("Proceedings of the 22nd VLDB Conference (2nd printing)"),
		}},
		{Kind: MutDelete, Class: "ThesisRecord", ID: thesis.ID},
	}
	if rejs, _, err := e.ValidateTx(ops); err != nil {
		t.Fatal(err)
	} else if len(rejs) != 0 {
		t.Fatalf("validation rejected the batch: %v", rejs)
	}
	if err := e.ShipTxRouted(fed.Stores(), ops); err != nil {
		t.Fatal(err)
	}

	// Insert landed in the archive, delete removed the thesis there.
	if got := arch.Count(); got != archBefore {
		t.Fatalf("archive count %d, want %d (one insert, one delete)", got, archBefore)
	}
	// The title update reached every member holding a constituent.
	for _, st := range []StoreBackend{lib, bs, arch} {
		found := false
		for _, ms := range vldb.Parts {
			for _, m := range ms {
				if m.Src.DB != st.Name() {
					continue
				}
				obj, ok := st.Get(m.Src.OID)
				if !ok {
					t.Fatalf("constituent %v gone from %s", m.Src, st.Name())
				}
				if v, _ := obj.Get("title"); v.String() != "'Proceedings of the 22nd VLDB Conference (2nd printing)'" {
					t.Fatalf("%s constituent title not updated: %s", st.Name(), v)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("no constituent of the merged object in %s", st.Name())
		}
	}
	// The view reflects the batch.
	rows, _, err := e.Run(Query{Class: "Record", Where: MustParseExpr("isbn = 'newvol1'")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("routed insert not served: %d rows", len(rows))
	}
	rows, _, err = e.Run(Query{Class: "ThesisRecord"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("deleted thesis still served: %d rows", len(rows))
	}
	// Routing error: a member store missing from the registry.
	fed.Stores().Remove("UnivArchive")
	err = e.ShipTxRouted(fed.Stores(), []Mutation{{Kind: MutInsert, Class: "Record", Attrs: map[string]Value{
		"title": Str("x"), "isbn": Str("x1"), "keeper": Str("k"), "price": Real(1), "pages": Int(1),
	}}})
	if err == nil || !strings.Contains(err.Error(), "no store registered for member UnivArchive") {
		t.Fatalf("missing-store routing error = %v", err)
	}
}

// TestFederationDetachGuards pins the membership invariants: the seed
// and the base of an attached pair cannot leave, and a federation keeps
// serving an integrated pair.
func TestFederationDetachGuards(t *testing.T) {
	fed := buildFigure1Federation(t, 0, true)
	if err := fed.Detach("CSLibrary"); err == nil {
		t.Fatal("detaching the seed (base of both pairs) succeeded")
	}
	if err := fed.Detach("NoSuchDB"); err == nil {
		t.Fatal("detaching a non-member succeeded")
	}
	if err := fed.Detach("UnivArchive"); err != nil {
		t.Fatal(err)
	}
	if err := fed.Detach("Bookseller"); err == nil {
		t.Fatal("shrinking below two members succeeded")
	}
	// Attach validation.
	if err := fed.Attach(Figure1Bookseller(), ArchiveStore(FixtureOptions{}), nil); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
}
