package interopdb

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// hash-join entity resolution and the type-informed reasoning.

import (
	"testing"

	"interopdb/internal/core"
	"interopdb/internal/expr"
	"interopdb/internal/logic"
	"interopdb/internal/object"
	"interopdb/internal/tm"
	"interopdb/internal/workload"
)

// BenchmarkAblation_EntityResolution quantifies the hash join: with it,
// entity resolution is O(n); the nested-loop fallback is O(n²).
func BenchmarkAblation_EntityResolution(b *testing.B) {
	p := workload.DefaultParams()
	p.LocalBooks, p.RemoteBooks = 800, 800
	local, remote := workload.Bibliographic(p)
	for _, disable := range []bool{false, true} {
		name := "hashJoin"
		if disable {
			name = "nestedLoop"
		}
		b.Run(name, func(b *testing.B) {
			spec := core.MustCompile(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration())
			spec.DisableHashJoin = disable
			conf, err := core.Conform(spec, local, remote)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Merge(conf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestAblationNestedLoopSameAnswer: the ablation toggle must not change
// the result, only the cost.
func TestAblationNestedLoopSameAnswer(t *testing.T) {
	p := workload.DefaultParams()
	p.LocalBooks, p.RemoteBooks = 150, 150
	render := func(disable bool) int {
		local, remote := workload.Bibliographic(p)
		spec := core.MustCompile(tm.Figure1Library(), tm.Figure1Bookseller(), tm.Figure1Integration())
		spec.DisableHashJoin = disable
		conf, err := core.Conform(spec, local, remote)
		if err != nil {
			t.Fatal(err)
		}
		v, err := core.Merge(conf)
		if err != nil {
			t.Fatal(err)
		}
		merged := 0
		for _, g := range v.Objects {
			if g.Merged() {
				merged++
			}
		}
		return merged
	}
	if a, b := render(false), render(true); a != b {
		t.Fatalf("hash join changed the merge result: %d vs %d", a, b)
	}
}

// BenchmarkAblation_TypedReasoning quantifies the type-informed theory:
// range bounds and integrality let the checker decide queries that are
// Unknown without them.
func BenchmarkAblation_TypedReasoning(b *testing.B) {
	types := map[string]object.Type{"rating": object.RangeType{Lo: 1, Hi: 10}}
	prem := []expr.Node{expr.MustParse("rating > 2"), expr.MustParse("rating < 4")}
	conc := expr.MustParse("rating = 3")
	b.Run("typed", func(b *testing.B) {
		c := &logic.Checker{Types: types}
		for i := 0; i < b.N; i++ {
			if c.Entails(prem, conc) != logic.Yes {
				b.Fatal("typed reasoning should prove integer pinning")
			}
		}
	})
	b.Run("untyped", func(b *testing.B) {
		c := &logic.Checker{}
		for i := 0; i < b.N; i++ {
			if c.Entails(prem, conc) == logic.Yes {
				b.Fatal("untyped reasoning cannot prove integer pinning")
			}
		}
	})
}

// TestAblationTypedReasoningPrecision demonstrates the precision gap the
// bench relies on.
func TestAblationTypedReasoningPrecision(t *testing.T) {
	prem := []expr.Node{expr.MustParse("rating > 2"), expr.MustParse("rating < 4")}
	conc := expr.MustParse("rating = 3")
	typed := &logic.Checker{Types: map[string]object.Type{"rating": object.RangeType{Lo: 1, Hi: 10}}}
	untyped := &logic.Checker{}
	if got := typed.Entails(prem, conc); got != logic.Yes {
		t.Errorf("typed: %v", got)
	}
	if got := untyped.Entails(prem, conc); got == logic.Yes {
		t.Errorf("untyped should not prove integer pinning: %v", got)
	}
}
