# Targets mirror .github/workflows/ci.yml so local runs and CI are
# identical.

GO ?= go

.PHONY: all build vet fmt fmt-check test race fuzz bench bench-smoke chaos crashtest baseline bench-compare profile serve load

all: build vet fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test -shuffle=on ./...

# Race-test the concurrent pipeline paths (worker-pool derivation and
# conformation, shared entailment cache, query engine).
race:
	$(GO) test -race ./internal/core/... ./internal/logic/... ./internal/view/... ./internal/wire/...
	$(GO) test -race -run Federation .

# Fixed-seed fault-injection suite under the race detector: the chaos
# wrapper's own contract, the engine differentials (post-reconcile state
# byte-identical to a fault-free run) and the wire-level degraded-serving
# tests.
chaos:
	$(GO) test -race -count=1 ./internal/store/chaos/
	$(GO) test -race -count=1 -run 'Chaos|Breaker|PartialCommit|LateRejection|FailAfterCommit' ./internal/view/
	$(GO) test -race -count=1 -run 'Health|Wire|BackgroundReconciler' ./internal/server/
	$(GO) test -race -count=1 -run 'CrashRecovery' .

# Crash-safety suite: WAL scan/replay/truncation contracts, checkpoint
# round trips, kill-and-recover differentials (recovered state
# byte-identical to the acknowledged prefix, warm starts serving plan
# hits with zero solver work) — including under injected disk faults —
# and the wire-level durable-tenant lifecycle.
crashtest:
	$(GO) test -race -count=1 -run 'WAL|Checkpoint|Durable|Replay' ./internal/store/
	$(GO) test -race -count=1 -run 'Durability|WarmStart|CrashRecovery' .
	$(GO) test -race -count=1 -run 'Durable' ./internal/server/

# Short-budget native fuzzing of the query parser, the wire codec and
# the WAL decoder, as in CI. Finds are written to testdata/fuzz —
# commit them.
fuzz:
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=20s -run='^$$' ./internal/view/
	$(GO) test -fuzz=FuzzCodecRoundTrip -fuzztime=20s -run='^$$' ./internal/server/
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=20s -run='^$$' ./internal/store/
	$(GO) test -fuzz=FuzzFrameDecode -fuzztime=20s -run='^$$' ./internal/wire/

# Full benchmark run (slow).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One-iteration smoke of the full-pipeline, serving and mutation
# benchmarks, as in CI.
bench-smoke:
	$(GO) test -bench=E11 -benchtime=1x -run='^$$' .
	$(GO) test -bench=Serve -benchtime=1x -run='^$$' .
	$(GO) test -bench=B8 -benchtime=1x -run='^$$' .
	$(GO) test -bench=B10 -benchtime=1x -run='^$$' .

# Regenerate the machine-readable benchmark baseline for this PR:
# three full runs min-merged per timing metric, so a scheduler or GC
# stall landing in one run's measurement window (the dominant noise on
# a single-core host, especially for one-shot cold timings) cannot
# poison the committed baseline.
baseline:
	$(GO) run ./cmd/interopbench -quick -json BENCH_10.r1.json
	$(GO) run ./cmd/interopbench -quick -json BENCH_10.r2.json
	$(GO) run ./cmd/interopbench -quick -json BENCH_10.r3.json
	$(GO) run ./cmd/benchcompare -merge BENCH_10.json BENCH_10.r1.json BENCH_10.r2.json BENCH_10.r3.json
	rm -f BENCH_10.r1.json BENCH_10.r2.json BENCH_10.r3.json

# Diff the current baseline against the previous PR's and GATE: shared
# timing metrics regressing beyond -max-regress fail (sub-10µs rows are
# noise-floored; E-series pass→fail drift always fails).
bench-compare:
	$(GO) run ./cmd/benchcompare -max-regress 100 BENCH_9.json BENCH_10.json

# Serve the federation: figure1 + personnel tenants, HTTP on :7070 and
# the binary framed transport on :7071, with /metrics and pprof.
# Ctrl-C drains gracefully.
serve:
	$(GO) run ./cmd/interopd -addr :7070 -wire-addr :7071

# Drive a running `make serve` with the B11 wire workload over both
# transports.
load:
	$(GO) run ./cmd/interopbench -only b11 -serve-url http://localhost:7070 -wire-addr localhost:7071

# CPU/heap profiles of the full benchmark suite, so perf work starts
# from a flame graph instead of a guess:
#   make profile
#   go tool pprof -http=:8080 cpu.pprof
profile:
	$(GO) run ./cmd/interopbench -quick -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof; inspect with: go tool pprof cpu.pprof"
