package interopdb

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the whole public facade the way the
// README's quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	lib := MustParseDatabase(FigureOneCSLibrary)
	bs := MustParseDatabase(FigureOneBookseller)
	is := MustParseIntegration(FigureOneIntegration)
	local, remote := Figure1Stores(FixtureOptions{})
	res, err := Integrate(lib, bs, is, local, remote, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, want := range []string{
		"publisher.name = 'ACM' implies rating >= 5",
		"RefereedPubl_Proceedings",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestPublicAPIQueryEngine(t *testing.T) {
	local, remote := Figure1Stores(FixtureOptions{})
	res, err := Integrate(Figure1Library(), Figure1Bookseller(), Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := NewQueryEngine(res)
	// The demo fixture is tiny; disable the planner's cost gate so the
	// paper's unconditioned pruning shows through the public API.
	e.CostGate = false
	rows, stats, err := e.Run(Query{
		Class: "Proceedings",
		Where: MustParseExpr("publisher.name = 'IEEE' and ref? = false"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PrunedEmpty || len(rows) != 0 {
		t.Errorf("expected pruned empty result: %+v", stats)
	}
}

func TestPublicAPIStore(t *testing.T) {
	s := NewStore(Personnel1())
	oid, err := s.Insert("Employee", map[string]Value{
		"ssn": Str("1"), "salary": Real(1000), "trav_reimb": Int(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(oid); !ok {
		t.Fatal("object missing")
	}
	// Constraint enforcement through the facade.
	if _, err := s.Insert("Employee", map[string]Value{
		"ssn": Str("2"), "salary": Real(9999), "trav_reimb": Int(10),
	}); err == nil {
		t.Error("salary cap should be enforced")
	}
}

func TestPublicAPIChecker(t *testing.T) {
	c := &Checker{}
	v := c.Entails(
		[]Expr{MustParseExpr("rating >= 7")},
		MustParseExpr("rating >= 4"))
	if v != Yes {
		t.Errorf("entailment = %v", v)
	}
	if c.Satisfiable(MustParseExpr("x in {1,2}"), MustParseExpr("x in {3}")) != No {
		t.Error("disjoint memberships should be unsatisfiable")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	p := DefaultWorkloadParams()
	p.LocalBooks, p.RemoteBooks = 50, 50
	l, r := BibliographicWorkload(p)
	if l.Count() == 0 || r.Count() == 0 {
		t.Error("empty workload")
	}
	d1, d2 := PersonnelWorkload(PersonnelWorkloadParams{Seed: 1, DB1: 10, DB2: 10, Overlap: 0.5})
	if d1.Count() != 10 || d2.Count() != 10 {
		t.Error("personnel workload sizes")
	}
}

func TestPublicAPISetValues(t *testing.T) {
	s := NewSet(Int(2), Int(1), Int(2))
	if s.Len() != 2 || !s.Contains(Int(1)) {
		t.Errorf("NewSet = %v", s)
	}
}

func TestPublicAPICompileAndBaselines(t *testing.T) {
	spec, err := Compile(Figure1Library(), Figure1Bookseller(), Figure1Integration())
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.PropEqs) != 7 {
		t.Errorf("propeqs = %d", len(spec.PropEqs))
	}
	local, remote := Figure1Stores(FixtureOptions{})
	res, err := Integrate(Figure1Library(), Figure1Bookseller(), Figure1Integration(), local, remote, 1)
	if err != nil {
		t.Fatal(err)
	}
	cb := ClassBasedClassification(res, []ClassCorrespondence{{LocalClass: "RefereedPubl", RemoteClass: "Proceedings"}})
	q := CompareClassification(res, cb, []string{"RefereedPubl"})
	if q.Precision() >= 1 {
		t.Errorf("class-based precision = %v", q.Precision())
	}
	if _, total := UnionAllFalseRejects(res, "Publication"); total == 0 {
		t.Error("no states examined")
	}
}

func TestPublicAPIParseQuery(t *testing.T) {
	q, err := ParseQuery("select title from Item where shopprice < 100")
	if err != nil {
		t.Fatal(err)
	}
	if q.Class != "Item" || len(q.Select) != 1 {
		t.Errorf("query = %+v", q)
	}
	if _, err := ParseQuery("garbage"); err == nil {
		t.Error("bad query should fail")
	}
}

func TestPublicAPISpecRewriting(t *testing.T) {
	s := Figure1Integration()
	printed := s.Print()
	if _, err := ParseIntegration(printed); err != nil {
		t.Fatalf("printed spec must reparse: %v", err)
	}
	fixed, err := s.ReplaceRule("r3", "rule r3: Sim(R:Proceedings, RefereedPubl) <= R.ref? = true and R.rating >= 4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(Figure1Library(), Figure1Bookseller(), fixed); err != nil {
		t.Fatalf("rewritten spec must compile: %v", err)
	}
}

func TestPublicAPIConflictConstants(t *testing.T) {
	local, remote := Figure1Stores(FixtureOptions{})
	res, err := Integrate(Figure1Library(), Figure1Bookseller(), Figure1Integration(), local, remote, 1)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, c := range res.Derivation.Conflicts {
		kinds[c.Kind.String()] = true
		for _, s := range c.Suggestions {
			_ = s.Kind.String()
		}
	}
	if !kinds[ConflictStrictSim.String()] {
		t.Errorf("expected strict-sim conflicts in the original spec: %v", kinds)
	}
}

// TestPublicAPIMutationLifecycle exercises the public mutation surface:
// delta-restricted validation with repairs, batched shipping, and the
// updated view being served.
func TestPublicAPIMutationLifecycle(t *testing.T) {
	local, remote := Figure1Stores(FixtureOptions{})
	res, err := Integrate(Figure1Library(), Figure1Bookseller(), Figure1IntegrationRepaired(), local, remote, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := NewQueryEngine(res)

	// Find the IEEE-published VLDB proceedings.
	var id int
	for _, g := range res.View.Extent("Proceedings") {
		if v, ok := g.Get("isbn"); ok && v.Equal(Str("vldb96")) {
			id = g.ID
		}
	}
	if id == 0 {
		t.Fatal("vldb96 not found")
	}

	// A doomed update is rejected with a repair proposal.
	rejs, stats, err := e.ValidateUpdate("Proceedings", id, map[string]Value{"ref?": Bool(false)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 1 || len(rejs[0].Repairs) == 0 {
		t.Fatalf("rejections = %v, want one with repairs", rejs)
	}
	if stats.PairsChecked == 0 {
		t.Error("validation did no work")
	}

	// A clean batch ships and is served.
	err = e.ShipTx(remote, []Mutation{
		{Kind: MutInsert, Class: "Item", Attrs: map[string]Value{
			"title": Str("API batch"), "isbn": Str("api-batch-1"),
			"publisher": Ref{DB: "Bookseller", OID: 3},
			"shopprice": Real(20), "libprice": Real(15),
		}},
		{Kind: MutUpdate, Class: "Proceedings", ID: id, Attrs: map[string]Value{"rating": Int(9)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := e.Run(Query{Class: "Item", Where: MustParseExpr("isbn = 'api-batch-1'")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("batched insert not served: %v", rows)
	}
	if viols, _ := e.CheckAll(); len(viols) != 0 {
		t.Errorf("CheckAll after batch: %v", viols)
	}
}
