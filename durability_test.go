package interopdb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"
	"testing"

	"interopdb/internal/store"
	"interopdb/internal/store/chaos"
)

// bootFigure1Durable performs the documented boot protocol over the
// three-member Figure 1 federation: open the data directory, build and
// seed the member stores exactly as a cold boot would, replay
// `checkpoint + WAL tail` into them, attach, and Finish.
func bootFigure1Durable(t *testing.T, dir string, opts DurabilityOptions) (*Federation, *Durability, RecoveryInfo) {
	t.Helper()
	dur, err := OpenDurability(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	local, remote := Figure1Stores(FixtureOptions{})
	arch := ArchiveStore(FixtureOptions{})
	if err := dur.RestoreStores(local, remote, arch); err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(1, PipelineOptions{Memo: dur.Memo()})
	if err := fed.Attach(Figure1Library(), local, nil); err != nil {
		t.Fatal(err)
	}
	if err := fed.Attach(Figure1Bookseller(), remote, Figure1IntegrationRepaired()); err != nil {
		t.Fatal(err)
	}
	if err := fed.Attach(Figure1UnivArchive(), arch, Figure1ArchiveIntegration()); err != nil {
		t.Fatal(err)
	}
	info, err := dur.Finish(context.Background(), fed)
	if err != nil {
		t.Fatal(err)
	}
	return fed, dur, info
}

// durabilityQueries is the read workload whose plan shapes the
// checkpoint persists and a warm start re-plans.
func durabilityQueries() []Query {
	return []Query{
		{Class: "Proceedings", Where: MustParseExpr("rating >= 7")},
		{Class: "Item", Where: MustParseExpr("shopprice <= 20")},
		{Class: "Record", Where: MustParseExpr("pages >= 100")},
	}
}

// shipRecord ships one archive insert through the routed path.
func shipRecord(t *testing.T, fed *Federation, i int) error {
	t.Helper()
	return fed.Engine().Ship(context.Background(), []Mutation{{
		Kind: MutInsert, Class: "Record", Attrs: map[string]Value{
			"title": Str(fmt.Sprintf("Archived Volume %d", i)), "isbn": Str(fmt.Sprintf("wal%d", i)),
			"keeper": Str("Annex"), "price": Real(float64(10 + i)), "pages": Int(200 + i),
		},
	}})
}

// shipWorkload runs the standard durable write workload: four archive
// inserts plus one cross-member merged-object update (its effects fan
// to all three member stores, exercising the intent/resolve records).
func shipWorkload(t *testing.T, fed *Federation) {
	t.Helper()
	for i := 0; i < 4; i++ {
		if err := shipRecord(t, fed, i); err != nil {
			t.Fatalf("ship insert %d: %v", i, err)
		}
	}
	e := fed.Engine()
	vldb := findVLDB(t, fed)
	err := e.Ship(context.Background(), []Mutation{{
		Kind: MutUpdate, Class: "Publication", ID: vldb,
		Attrs: map[string]Value{"title": Str("Proceedings of the 22nd VLDB Conference (durable printing)")},
	}})
	if err != nil {
		t.Fatalf("ship cross-member update: %v", err)
	}
}

// findVLDB locates the three-way merged vldb96 object's view ID.
func findVLDB(t *testing.T, fed *Federation) int {
	t.Helper()
	for _, g := range fed.Result().View.Objects {
		if isbn, ok := g.Get("isbn"); ok && isbn.String() == "'vldb96'" && g.Classes["Record"] && g.Classes["Item"] {
			return g.ID
		}
	}
	t.Fatal("vldb96 merged object not found")
	return 0
}

// memberSnapshots serializes every member store's full state (extents,
// insertion order, OID counter) — the byte-identity oracle.
func memberSnapshots(t *testing.T, fed *Federation, dropOIDCounter bool) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range fed.Members() {
		m, ok := fed.Member(name)
		if !ok {
			t.Fatalf("member %s missing", name)
		}
		mc, err := store.SnapshotStore(m.Store)
		if err != nil {
			t.Fatalf("snapshot %s: %v", name, err)
		}
		if dropOIDCounter {
			// Aborted transactions burn OIDs in the live process that a
			// replay (which only sees durable commits) never allocates.
			mc.NextOID = 0
		}
		b, err := json.Marshal(mc)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = string(b)
	}
	return out
}

func runAll(t *testing.T, fed *Federation, qs []Query) [][]Row {
	t.Helper()
	var out [][]Row
	for _, q := range qs {
		rows, _, err := fed.Engine().Run(q)
		if err != nil {
			t.Fatalf("Run(%s): %v", q.Class, err)
		}
		out = append(out, rows)
	}
	return out
}

// canonRows renders each query's rows as a sorted multiset. Row VALUES
// must survive a restart byte-for-byte; serving ORDER is extent-
// construction order, which legitimately differs between a view grown
// incrementally by Ship and one re-integrated from the same recovered
// member state (base-class extents precede subclass extents there).
func canonRows(rss [][]Row) [][]string {
	out := make([][]string, len(rss))
	for i, rs := range rss {
		ss := make([]string, len(rs))
		for j, r := range rs {
			ss[j] = fmt.Sprintf("%v", r)
		}
		sort.Strings(ss)
		out[i] = ss
	}
	return out
}

// TestDurabilityColdStart pins the first-boot path: an empty data
// directory is a cold start, Finish writes the initial checkpoint, and
// a second boot with no intervening writes restores from it with an
// empty WAL tail.
func TestDurabilityColdStart(t *testing.T) {
	dir := t.TempDir()
	fed, dur, info := bootFigure1Durable(t, dir, DurabilityOptions{})
	if !info.ColdStart {
		t.Fatal("first boot not reported as cold start")
	}
	if info.Replay.RestoredMembers != 0 || info.Replay.ReplayedCommits != 0 {
		t.Fatalf("cold start replayed state: %+v", info.Replay)
	}
	if err := dur.Shutdown(fed); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	_, dur2, info2 := bootFigure1Durable(t, dir, DurabilityOptions{})
	defer dur2.Close()
	if info2.ColdStart {
		t.Fatal("second boot reported cold start")
	}
	if info2.Replay.RestoredMembers != 3 {
		t.Fatalf("restored %d members, want 3", info2.Replay.RestoredMembers)
	}
	if info2.Replay.ReplayedCommits != 0 {
		t.Fatalf("clean shutdown left %d commits to replay", info2.Replay.ReplayedCommits)
	}
	if !info2.DerivationVerified {
		t.Fatal("re-derived constraint set was not verified against the checkpoint")
	}
}

// TestWarmStartEquivalence is the headline recovery guarantee: after a
// workload and a graceful drain, a restarted node replays nothing,
// verifies its re-derived constraints, imports the memo, re-plans the
// persisted shapes — and its first client query is a plan-cache hit
// that issues zero solver queries, returning rows byte-identical to the
// pre-restart engine's.
func TestWarmStartEquivalence(t *testing.T) {
	dir := t.TempDir()
	qs := durabilityQueries()

	fed1, dur1, _ := bootFigure1Durable(t, dir, DurabilityOptions{})
	runAll(t, fed1, qs) // populate the plan cache
	shipWorkload(t, fed1)
	want := runAll(t, fed1, qs)
	wantSnaps := memberSnapshots(t, fed1, false)
	if err := dur1.Shutdown(fed1); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	fed2, dur2, info := bootFigure1Durable(t, dir, DurabilityOptions{})
	defer dur2.Close()
	if info.Replay.ReplayedCommits != 0 {
		t.Fatalf("graceful drain left %d commits to replay", info.Replay.ReplayedCommits)
	}
	if info.Replay.RestoredMembers != 3 {
		t.Fatalf("restored %d members, want 3", info.Replay.RestoredMembers)
	}
	if !info.DerivationVerified {
		t.Fatal("derivation not verified")
	}
	if info.MemoEntries == 0 {
		t.Fatal("no memo entries imported")
	}
	if info.PlansWarmed < len(qs) {
		t.Fatalf("warmed %d plan shapes, want >= %d", info.PlansWarmed, len(qs))
	}

	// The recovered member stores are byte-identical to the pre-restart
	// ones.
	if got := memberSnapshots(t, fed2, false); !reflect.DeepEqual(got, wantSnaps) {
		for name := range wantSnaps {
			if got[name] != wantSnaps[name] {
				t.Errorf("member %s state diverged after warm start:\n pre: %s\npost: %s", name, wantSnaps[name], got[name])
			}
		}
		t.FailNow()
	}

	// First post-restart queries: plan hits, zero fresh solver work.
	e := fed2.Engine()
	before := e.CacheStats()
	got := runAll(t, fed2, qs)
	after := e.CacheStats()
	if hits := after.PlanHits - before.PlanHits; hits != int64(len(qs)) {
		t.Fatalf("first post-restart queries: %d plan hits, want %d", hits, len(qs))
	}
	if misses := after.PlanMisses - before.PlanMisses; misses != 0 {
		t.Fatalf("first post-restart queries: %d plan misses, want 0", misses)
	}
	if solver := after.SolverQueries - before.SolverQueries; solver != 0 {
		t.Fatalf("first post-restart queries issued %d solver queries, want 0", solver)
	}
	if !reflect.DeepEqual(canonRows(got), canonRows(want)) {
		t.Fatal("post-restart query rows diverge from pre-restart rows")
	}
}

// TestCrashRecoveryReplaysTail kills the node without a drain (the WAL
// tail holds every acknowledged batch past the boot checkpoint) and
// asserts the restarted node replays to byte-identical member state.
func TestCrashRecoveryReplaysTail(t *testing.T) {
	dir := t.TempDir()
	fed1, _, _ := bootFigure1Durable(t, dir, DurabilityOptions{})
	shipWorkload(t, fed1)
	want := memberSnapshots(t, fed1, false)
	wantRows := runAll(t, fed1, durabilityQueries())
	// Crash: no Shutdown, no Close — the handle is abandoned with every
	// acknowledged append already fsynced.

	fed2, dur2, info := bootFigure1Durable(t, dir, DurabilityOptions{})
	defer dur2.Close()
	if info.Replay.ReplayedCommits == 0 {
		t.Fatal("crash recovery replayed no commits")
	}
	if info.TailDamage != nil {
		t.Fatalf("unexpected tail damage: %+v", info.TailDamage)
	}
	if got := memberSnapshots(t, fed2, false); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered member state diverges from crashed node's")
	}
	if got := runAll(t, fed2, durabilityQueries()); !reflect.DeepEqual(canonRows(got), canonRows(wantRows)) {
		t.Fatal("recovered query rows diverge from crashed node's")
	}
	// The recovered node keeps serving durable writes.
	if err := shipRecord(t, fed2, 99); err != nil {
		t.Fatalf("post-recovery ship: %v", err)
	}
}

// TestCrashRecoveryDiskFaults drives the WAL through the chaos disk
// wrapper: an injected write fault seals the log mid-workload (the
// failed batch is never acknowledged), and the restarted node recovers
// exactly the acknowledged prefix.
func TestCrashRecoveryDiskFaults(t *testing.T) {
	for _, mode := range []struct {
		name  string
		fault chaos.DiskFault
	}{
		{"write-error", chaos.DiskWriteError},
		{"short-write", chaos.DiskShortWrite},
		{"sync-error", chaos.DiskSyncError},
	} {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			fed1, dur1, _ := bootFigure1Durable(t, dir, DurabilityOptions{})
			shipWorkload(t, fed1)
			ackedState := memberSnapshots(t, fed1, false)

			// Re-arm the SAME directory with a fault scheduled a few
			// appends out, then write until the log seals.
			if err := dur1.Close(); err != nil {
				t.Fatal(err)
			}
			wrap, _ := chaos.WrapDisk(chaos.DiskOptions{Seed: 1, Schedule: map[int]chaos.DiskFault{2: mode.fault}})
			fed2, dur2, _ := bootFigure1Durable(t, dir, DurabilityOptions{WrapWAL: wrap})
			var failedAt = -1
			for i := 10; i < 20; i++ {
				if err := shipRecord(t, fed2, i); err != nil {
					failedAt = i
					break
				}
				ackedState = memberSnapshots(t, fed2, false)
			}
			if failedAt < 0 {
				t.Fatal("scheduled disk fault never surfaced as a ship failure")
			}
			if dur2.WAL().Sealed() == nil {
				t.Fatal("log not sealed after disk fault")
			}
			// Sealed log: later writes fail fast, no ack can lie.
			if err := shipRecord(t, fed2, 50); err == nil {
				t.Fatal("ship succeeded on a sealed log")
			}

			fed3, dur3, info := bootFigure1Durable(t, dir, DurabilityOptions{})
			defer dur3.Close()
			// Acknowledged batches survive; the failed batch does not.
			got := memberSnapshots(t, fed3, true)
			wantAcked := map[string]string{}
			for name, s := range ackedState {
				var mc store.MemberCheckpoint
				if err := json.Unmarshal([]byte(s), &mc); err != nil {
					t.Fatal(err)
				}
				mc.NextOID = 0
				b, _ := json.Marshal(mc)
				wantAcked[name] = string(b)
			}
			if !reflect.DeepEqual(got, wantAcked) {
				t.Fatalf("recovered state diverges from acknowledged prefix (replay %+v)", info.Replay)
			}
			rows, _, err := fed3.Engine().Run(Query{Class: "Record", Where: MustParseExpr(fmt.Sprintf("isbn = 'wal%d'", failedAt))})
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 0 {
				t.Fatalf("unacknowledged batch %d visible after recovery", failedAt)
			}
		})
	}
}

// TestCrashRecoverySilentCorruption flips a byte inside an appended
// frame while reporting success — undetectable until recovery's CRC
// scan, which must cut the tail at the corruption and report damage,
// never silently skip past it.
func TestCrashRecoverySilentCorruption(t *testing.T) {
	dir := t.TempDir()
	fed1, dur1, _ := bootFigure1Durable(t, dir, DurabilityOptions{})
	shipWorkload(t, fed1)
	if err := dur1.Close(); err != nil {
		t.Fatal(err)
	}

	wrap, diskFile := chaos.WrapDisk(chaos.DiskOptions{Seed: 3, Schedule: map[int]chaos.DiskFault{1: chaos.DiskCorrupt}})
	fed2, dur2, _ := bootFigure1Durable(t, dir, DurabilityOptions{WrapWAL: wrap})
	for i := 20; i < 23; i++ {
		if err := shipRecord(t, fed2, i); err != nil {
			t.Fatalf("ship %d: silent corruption must not fail the write: %v", i, err)
		}
	}
	if diskFile().Stats().Corruptions == 0 {
		t.Fatal("corruption fault never fired")
	}
	if err := dur2.Close(); err != nil {
		t.Fatal(err)
	}

	dur3, err := OpenDurability(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dur3.Close()
	if dur3.Info().TailDamage == nil {
		t.Fatal("recovery did not report the corrupted tail")
	}
}

// TestDurabilityWrongDirectory pins the guard against booting over a
// foreign federation's data: the persisted derivation must match the
// re-derived one.
func TestDurabilityWrongDirectory(t *testing.T) {
	dir := t.TempDir()
	fed1, dur1, _ := bootFigure1Durable(t, dir, DurabilityOptions{})
	if err := dur1.Shutdown(fed1); err != nil {
		t.Fatal(err)
	}

	// Boot a DIFFERENT federation (personnel) over the same directory.
	dur2, err := OpenDurability(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dur2.Close()
	db1, db2 := PersonnelStores()
	// The checkpoint names bibliographic members; replay refuses.
	if err := dur2.RestoreStores(db1, db2); err == nil {
		t.Fatal("replay accepted stores from a different federation")
	}
	// And even with replay skipped, Finish refuses the derivation.
	fed := NewFederation(1, PipelineOptions{Memo: dur2.Memo()})
	if err := fed.Attach(Personnel1(), db1, nil); err != nil {
		t.Fatal(err)
	}
	if err := fed.Attach(Personnel2(), db2, PersonnelIntegration()); err != nil {
		t.Fatal(err)
	}
	if _, err := dur2.Finish(context.Background(), fed); err == nil {
		t.Fatal("Finish verified a foreign derivation")
	}
}

// TestDurabilityDamagedCheckpoint pins the hard-error path: the
// checkpoint is checksummed and atomically replaced, so damage means
// storage corruption and the boot must refuse rather than serve from a
// half-read snapshot.
func TestDurabilityDamagedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fed1, dur1, _ := bootFigure1Durable(t, dir, DurabilityOptions{})
	if err := dur1.Shutdown(fed1); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, dir+"/"+checkpointFileName)
	if _, err := OpenDurability(dir, DurabilityOptions{}); err == nil {
		t.Fatal("OpenDurability accepted a damaged checkpoint")
	} else if errors.Is(err, store.ErrNoCheckpoint) {
		t.Fatal("damage misreported as missing checkpoint")
	}
}

// corruptFile flips one byte in the middle of a file.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
